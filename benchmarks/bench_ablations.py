"""EXP-A2 / design ablations.

* standard-DPP normalization vs the tailored k-DPP (§IV-B2: the paper
  reports the standard normalizer is markedly worse);
* pre-learned Eq. 3 kernel vs the closed-form category-Jaccard kernel
  (how much of the diversity gain requires *learning* K).
"""

from bench_helpers import bench_scale

from repro.experiments import ablation_standard_dpp, prepare_dataset, run_cell
from repro.experiments.common import SCALES


def test_standard_dpp_normalization_ablation(benchmark):
    kdpp_cell, standard_cell, text = benchmark.pedantic(
        lambda: ablation_standard_dpp(scale=bench_scale()), rounds=1, iterations=1
    )
    print("\n" + text)
    # Loose shape assertion: the k-DPP normalizer should not lose badly.
    assert kdpp_cell.metrics["Nd@20"] >= 0.9 * standard_cell.metrics["Nd@20"]


def test_kernel_source_ablation(benchmark):
    scale = SCALES[bench_scale()]

    def run():
        learned = prepare_dataset("ml-like", scale, kernel_source="learned")
        category = prepare_dataset("ml-like", scale, kernel_source="category")
        cell_learned = run_cell("mf", "PS", learned)
        cell_category = run_cell("mf", "PS", category)
        return cell_learned, cell_category

    cell_learned, cell_category = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nkernel-source ablation (ml-like, MF, PS):\n"
        f"  learned  (Eq. 3): Nd@10={cell_learned.metrics['Nd@10']:.4f} "
        f"CC@10={cell_learned.metrics['CC@10']:.4f} F@10={cell_learned.metrics['F@10']:.4f}\n"
        f"  category (ref)  : Nd@10={cell_category.metrics['Nd@10']:.4f} "
        f"CC@10={cell_category.metrics['CC@10']:.4f} F@10={cell_category.metrics['F@10']:.4f}"
    )
    assert cell_learned.metrics["F@10"] > 0
    assert cell_category.metrics["F@10"] > 0
