"""Steps/sec of the fused batched LkP path vs the per-instance reference.

Two entry points:

* ``pytest benchmarks/bench_batched_lkp.py`` — pytest-benchmark timings of
  one full optimization step per backend, plus a loose sanity assertion
  that the batched path actually wins (the hard >= 3x claim is checked by
  the standalone run, not in CI where machines are noisy).
* ``python benchmarks/bench_batched_lkp.py [--output BENCH_batched_lkp.json]``
  — times both backends at the paper-scale batch size 64, prints a table,
  and writes the JSON baseline committed at the repo root so future PRs
  can track the perf trajectory.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the workload
to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.autodiff import optim
from repro.data import GroundSetInstance
from repro.losses import LkPCriterion
from repro.models import MFRecommender


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _normalized_kernel(rng: np.random.Generator, num_items: int) -> np.ndarray:
    x = rng.normal(size=(num_items, num_items))
    kernel = x @ x.T + np.eye(num_items)
    diag = np.sqrt(np.diagonal(kernel))
    return kernel / np.outer(diag, diag)


def make_workload(
    batch_size: int = 64,
    num_items: int = 500,
    num_users: int = 32,
    k: int = 5,
    n: int = 5,
    dim: int = 32,
    use_negative_set: bool = True,
    seed: int = 0,
):
    """A Table-3-style MF + LkP-NPS training step at the given batch size."""
    rng = np.random.default_rng(seed)
    kernel = _normalized_kernel(rng, num_items)
    batch = []
    for b in range(batch_size):
        items = rng.choice(num_items, size=k + n, replace=False)
        batch.append(
            GroundSetInstance(
                user=b % num_users, targets=items[:k], negatives=items[k:]
            )
        )
    model = MFRecommender(num_users, num_items, dim=dim, rng=1)
    criterion = LkPCriterion(
        k=k, n=n, diversity_kernel=kernel, use_negative_set=use_negative_set
    )
    optimizer = optim.Adam(model.parameters(), lr=0.01)
    return model, criterion, optimizer, batch


def one_step(model, criterion, optimizer, batch, backend: str) -> float:
    """One full optimization step: forward, backward, Adam update."""
    criterion.backend = backend
    representations = model.representations()
    loss = criterion.batch_loss(model, representations, batch)
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


def steps_per_second(backend: str, repeats: int, **workload_kwargs) -> float:
    model, criterion, optimizer, batch = make_workload(**workload_kwargs)
    one_step(model, criterion, optimizer, batch, backend)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        one_step(model, criterion, optimizer, batch, backend)
    return repeats / (time.perf_counter() - start)


# ----------------------------------------------------------------------
# pytest-benchmark targets
# ----------------------------------------------------------------------
def _pytest_workload_kwargs():
    if _smoke():
        return dict(batch_size=8, num_items=80, dim=8)
    return dict(batch_size=64, num_items=300, dim=16)


def test_bench_lkp_step_reference(benchmark):
    model, criterion, optimizer, batch = make_workload(**_pytest_workload_kwargs())
    value = benchmark(
        lambda: one_step(model, criterion, optimizer, batch, "reference")
    )
    assert np.isfinite(value)


def test_bench_lkp_step_batched(benchmark):
    model, criterion, optimizer, batch = make_workload(**_pytest_workload_kwargs())
    value = benchmark(
        lambda: one_step(model, criterion, optimizer, batch, "batched")
    )
    assert np.isfinite(value)


def test_batched_step_is_faster():
    """Loose CI guard: the fused path must beat the loop even when small.

    Smoke mode only checks both paths run to completion — a 3-repeat
    timing window on a shared runner is scheduler noise, not signal.
    Full mode takes the best of three trials per backend before
    asserting, so one GC pause cannot flip the verdict.
    """
    kwargs = _pytest_workload_kwargs()
    if _smoke():
        reference = steps_per_second("reference", 2, **kwargs)
        batched = steps_per_second("batched", 2, **kwargs)
        assert reference > 0 and batched > 0
        return
    reference = max(steps_per_second("reference", 10, **kwargs) for _ in range(3))
    batched = max(steps_per_second("batched", 10, **kwargs) for _ in range(3))
    assert batched > 1.5 * reference, (
        f"batched path too slow: {batched:.1f} vs {reference:.1f} steps/s"
    )


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    if _smoke():
        sizes, repeats = (8,), args.repeats or 3
        kwargs = dict(num_items=80, dim=8)
    else:
        sizes, repeats = (16, 64, 128), args.repeats or 20
        kwargs = dict(num_items=500, dim=32)

    results = {
        "workload": "MF + LkP-NPS (k=5, n=5) full optimization step",
        "settings": {**kwargs, "repeats": repeats},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "batch_sizes": {},
    }
    header = f"{'batch':>6} {'reference':>12} {'batched':>12} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for batch_size in sizes:
        reference = steps_per_second(
            "reference", repeats, batch_size=batch_size, **kwargs
        )
        batched = steps_per_second(
            "batched", repeats, batch_size=batch_size, **kwargs
        )
        speedup = batched / reference
        results["batch_sizes"][str(batch_size)] = {
            "reference_steps_per_sec": round(reference, 2),
            "batched_steps_per_sec": round(batched, 2),
            "speedup": round(speedup, 2),
        }
        print(
            f"{batch_size:>6} {reference:>10.2f}/s {batched:>10.2f}/s "
            f"{speedup:>8.2f}x"
        )
    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
