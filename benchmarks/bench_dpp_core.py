"""EXP-A3 + micro-benchmarks of the DPP machinery itself.

These are classic pytest-benchmark timing targets (many rounds), covering
the primitives whose cost dominates LkP training: the differentiable
normalizer, the exact sampler, greedy MAP, and the analytic-vs-autodiff
gradient agreement check.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.dpp import (
    KDPP,
    differentiable_log_esp,
    elementary_symmetric_polynomials,
    greedy_map,
)
from repro.losses import LkPCriterion, lkp_analytic_gradients
from repro.models import MFRecommender
from repro.data import GroundSetInstance


def _psd(seed, n, ridge=0.3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n))
    return x @ x.T + ridge * np.eye(n)


def test_bench_algorithm1_esp(benchmark):
    lam = np.abs(np.random.default_rng(0).normal(size=10)) + 0.1
    result = benchmark(lambda: elementary_symmetric_polynomials(lam, 5))
    assert result > 0


def test_bench_differentiable_normalizer_forward_backward(benchmark):
    kernel = _psd(1, 10)

    def run():
        t = Tensor(kernel, requires_grad=True)
        out = differentiable_log_esp(t, 5)
        out.backward()
        return out.item()

    value = benchmark(run)
    assert np.isfinite(value)


def test_bench_kdpp_sampling(benchmark):
    dpp = KDPP(_psd(2, 10), 5)
    rng = np.random.default_rng(3)
    sample = benchmark(lambda: dpp.sample(rng))
    assert len(sample) == 5


def test_bench_greedy_map(benchmark):
    kernel = _psd(4, 200, ridge=1.0)
    chosen = benchmark(lambda: greedy_map(kernel, 10))
    assert len(chosen) == 10


def test_bench_lkp_instance_loss(benchmark):
    model = MFRecommender(4, 60, dim=16, rng=0)
    kernel = _psd(5, 60, ridge=1.0)
    diag = np.sqrt(np.diagonal(kernel))
    kernel = kernel / np.outer(diag, diag)
    criterion = LkPCriterion(k=5, n=5, diversity_kernel=kernel, use_negative_set=True)
    instance = GroundSetInstance(
        user=0, targets=np.arange(5), negatives=np.arange(5, 10)
    )

    def run():
        model.zero_grad()
        loss = criterion.instance_loss(model, model.representations(), instance)
        loss.backward()
        return loss.item()

    value = benchmark(run)
    assert np.isfinite(value)


def test_bench_analytic_gradients_agree(benchmark):
    """EXP-A3: autodiff and the paper's Eq. 12/14/15 stay in agreement."""
    model = MFRecommender(2, 20, dim=6, rng=1)
    kernel = _psd(6, 20, ridge=1.0)
    diag = np.sqrt(np.diagonal(kernel))
    kernel = kernel / np.outer(diag, diag)
    instance = GroundSetInstance(
        user=0, targets=np.array([0, 1, 2]), negatives=np.array([3, 4, 5])
    )
    criterion = LkPCriterion(k=3, n=3, diversity_kernel=kernel)

    def run():
        model.zero_grad()
        loss = criterion.instance_loss(model, model.representations(), instance)
        loss.backward()
        reference = lkp_analytic_gradients(
            model.user_embedding.weight.data[0],
            model.item_embedding.weight.data[instance.ground_set],
            kernel[np.ix_(instance.ground_set, instance.ground_set)],
            k=3,
        )
        return loss.item(), reference

    loss_value, reference = benchmark(run)
    assert np.isclose(loss_value, reference.loss, rtol=1e-7)
    assert np.allclose(
        model.user_embedding.weight.grad[0], reference.user_grad, rtol=1e-4, atol=1e-8
    )
