"""EXP-F2 — Figure 2: LkP performance and epochs-to-best across k."""

from bench_helpers import bench_scale

from repro.experiments import fig2_k_sweep


def test_fig2_k_sweep_ps(benchmark):
    report = benchmark.pedantic(
        lambda: fig2_k_sweep(variant="PS", scale=bench_scale(), ks=(2, 3, 4, 5, 6)),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    assert [p.parameter for p in report.points] == [2, 3, 4, 5, 6]
    for point in report.points:
        assert point.metrics["Nd@5"] >= 0
        assert point.epochs_to_best >= 1


def test_fig2_k_sweep_nps(benchmark):
    report = benchmark.pedantic(
        lambda: fig2_k_sweep(variant="NPS", scale=bench_scale(), ks=(2, 4, 6)),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    assert len(report.points) == 3
