"""EXP-F3 — Figure 3: LkP-PS across negative-sample counts n (k = 5)."""

from bench_helpers import bench_scale

from repro.experiments import fig3_n_sweep


def test_fig3_n_sweep(benchmark):
    report = benchmark.pedantic(
        lambda: fig3_n_sweep(scale=bench_scale(), ns=(1, 2, 3, 4, 5, 6)),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    assert [p.parameter for p in report.points] == [1, 2, 3, 4, 5, 6]
    # Top-5 and Top-20 series both present for every point.
    for point in report.points:
        assert "F@5" in point.metrics and "F@20" in point.metrics
