"""EXP-F4 / EXP-A1 — Figure 4: k-DPP probability evolution by target count,
plus the diversified-vs-monotonous target comparison of §IV-B2."""

import numpy as np
from bench_helpers import bench_scale

from repro.experiments import (
    ablation_diverse_vs_monotonous,
    fig4_probability_evolution,
)


def test_fig4_probability_evolution(benchmark):
    report = benchmark.pedantic(
        lambda: fig4_probability_evolution(variant="PS", scale=bench_scale()),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    epochs = sorted(report.snapshots)
    assert epochs[0] == 0
    first = report.snapshots[epochs[0]]
    last = report.snapshots[epochs[-1]]
    # Before training every group sits near uniform...
    assert np.all(
        np.abs(first.mean_probability - first.uniform) < 0.5 * first.uniform
    )
    # ...after training the full-target group dominates and the gap to the
    # zero-target group has widened (the paper's Figure 4 trend).
    assert last.mean_probability[-1] > 10 * last.uniform
    assert (
        last.mean_probability[-1] - last.mean_probability[0]
        > first.mean_probability[-1] - first.mean_probability[0]
    )


def test_diverse_vs_monotonous_targets(benchmark):
    report, text = benchmark.pedantic(
        lambda: ablation_diverse_vs_monotonous(scale=bench_scale()),
        rounds=1,
        iterations=1,
    )
    print("\n" + text)
    assert report.diverse_count + report.monotonous_count > 0
