"""EXP-F5 — Figure 5: the per-user case study (BPR vs S2SRank vs LkP)."""

from bench_helpers import bench_scale

from repro.experiments import run_case_study


def test_fig5_case_study(benchmark):
    report = benchmark.pedantic(
        lambda: run_case_study(scale=bench_scale()), rounds=1, iterations=1
    )
    print("\n" + report.text)
    assert set(report.top5) == {"BPR", "S2SRank", "LkP-PS"}
    for entries in report.top5.values():
        assert len(entries) == 5
    # Subset analysis covers all C(5, 3) = 10 subsets, each with a
    # category-breadth annotation.
    assert len(report.subset_probabilities) == 10
    probabilities = [p for _, _, p in report.subset_probabilities]
    assert abs(sum(probabilities) - 1.0) < 1e-6
