"""Product-health benchmark: audit overhead and canary fidelity.

PR 9's auditing must be cheap when on and decisive when it matters:

* **Overhead** — a closed-loop throughput run (submit a burst, wait for
  every future, best of 3) at ``audit_rate=0`` (the default fast path)
  vs ``audit_rate=1`` (every slate's quality mass, ILAD and
  log-probability computed post-serve).  The CI-guarded contract: full
  auditing keeps at least **90% of the unaudited req/s**.
* **Canary fidelity** — the same deterministic publish exercised twice
  (manual clock, inline dispatch).  A *corrupted* retrain — factor rows
  collapsed toward one direction, the diversity catastrophe a k-DPP
  stack exists to prevent — must trip ``canary_regression`` (ILAD
  collapse) and pull ``runtime.health()`` off ``healthy``; a *clean*
  retrain under identical load must do neither.  False negatives ship
  broken factors, false positives train teams to ignore the pager.

Recorded per run: req/s for both audit rates, the overhead ratio,
audit aggregates per catalog version, and both canary verdicts.

Entry points:

* ``pytest benchmarks/bench_health.py`` — the CI guards above.
* ``python benchmarks/bench_health.py [--output ...]`` — the JSON
  baseline writer behind ``BENCH_health.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.serving import (
    HEALTHY,
    ItemCatalog,
    Request,
    ServingConfig,
    ServingRuntime,
)
from repro.utils.timing import ManualClock


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(
            num_items=2048, rank=16, k=5, num_users=16, max_batch=16,
            burst=200, trials=5, canary_traffic=48, canary_min_audits=16,
        )
    return dict(
        num_items=20_000, rank=32, k=10, num_users=64, max_batch=32,
        burst=1000, trials=3, canary_traffic=128, canary_min_audits=64,
    )


def make_world(settings, seed: int = 0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(settings["num_items"], settings["rank"]))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    quality = np.exp(
        rng.normal(scale=0.5, size=(settings["num_users"], settings["num_items"]))
    )
    return factors, quality


def clean_retrain(settings, seed: int = 1) -> np.ndarray:
    """A healthy retrain: same distribution, different draw."""
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(settings["num_items"], settings["rank"]))
    return factors / np.linalg.norm(factors, axis=1, keepdims=True)


def corrupted_retrain(settings, seed: int = 2) -> np.ndarray:
    """A broken retrain: every row collapses toward one direction, so
    any slate's intra-list distance craters — numerically servable
    (the noise keeps the spectrum full-rank) but a product disaster."""
    rng = np.random.default_rng(seed)
    shape = (settings["num_items"], settings["rank"])
    direction = np.ones(settings["rank"]) / np.sqrt(settings["rank"])
    factors = np.tile(direction, (settings["num_items"], 1))
    factors += 0.02 * rng.normal(size=shape)
    return factors / np.linalg.norm(factors, axis=1, keepdims=True)


def _burst_requests(settings, quality, count: int) -> list[Request]:
    return [
        Request(
            quality=quality[i % quality.shape[0]],
            k=settings["k"],
            mode="sample",
            seed=i,
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Closed-loop throughput at a given audit rate
# ----------------------------------------------------------------------
def run_throughput(settings, factors, quality, audit_rate: float) -> dict:
    """Best-of-``trials`` closed-loop req/s: submit a burst, await all."""
    config = ServingConfig(
        workers=1,
        max_batch=settings["max_batch"],
        max_wait=0.001,
        audit_rate=audit_rate,
    )
    requests = _burst_requests(settings, quality, settings["burst"])
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        # Warm spectra / allocator outside every timed window.
        runtime.serve_now(requests[: settings["max_batch"]])
        best = float("inf")
        for _ in range(settings["trials"]):
            begin = time.perf_counter()
            futures = runtime.submit_many(requests)
            for future in futures:
                future.result()
            best = min(best, time.perf_counter() - begin)
        audited = runtime.auditor.audited
    return {
        "audit_rate": audit_rate,
        "req_per_s": settings["burst"] / best,
        "best_s": best,
        "audited": audited,
    }


def run_overhead(settings, factors, quality) -> dict:
    baseline = run_throughput(settings, factors, quality, audit_rate=0.0)
    audited = run_throughput(settings, factors, quality, audit_rate=1.0)
    return {
        "baseline": baseline,
        "audited": audited,
        "throughput_ratio": audited["req_per_s"] / baseline["req_per_s"],
    }


# ----------------------------------------------------------------------
# Canary fidelity: corrupted vs clean publish, identical load
# ----------------------------------------------------------------------
def run_publish_canary(settings, factors, quality, retrained) -> dict:
    """Serve, publish ``retrained``, serve again; report the verdict.

    Deterministic on purpose (manual clock, inline dispatch, seeded
    sampling): the corrupted/clean contrast must be a property of the
    factors, never of scheduling noise.
    """
    config = ServingConfig(
        workers=0,
        clock=ManualClock(),
        max_batch=settings["max_batch"],
        audit_rate=1.0,
        canary_min_audits=settings["canary_min_audits"],
    )
    traffic = _burst_requests(settings, quality, settings["canary_traffic"])
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        for phase in ("baseline", "candidate"):
            if phase == "candidate":
                runtime.publish(retrained)
            futures = runtime.submit_many(traffic)
            runtime.flush()
            for future in futures:
                future.result()
        report = runtime.last_canary
        health = runtime.health()
        kinds = [e["kind"] for e in runtime.telemetry().event_log.snapshot()]
        baseline_view = runtime.auditor.aggregate(0)
        candidate_view = runtime.auditor.aggregate(1)
    return {
        "regression_events": kinds.count("canary_regression"),
        "health": health.status,
        "health_reasons": list(health.reasons),
        "canary": None if report is None else report.to_dict(),
        "baseline_ilad": baseline_view["ilad"],
        "candidate_ilad": candidate_view["ilad"],
        "baseline_quality_mass": baseline_view["quality_mass"],
        "candidate_quality_mass": candidate_view["quality_mass"],
    }


def run_canary_fidelity(settings, factors, quality) -> dict:
    corrupted = run_publish_canary(
        settings, factors, quality, corrupted_retrain(settings)
    )
    clean = run_publish_canary(
        settings, factors, quality, clean_retrain(settings)
    )
    return {"corrupted": corrupted, "clean": clean}


# ----------------------------------------------------------------------
# pytest targets: the CI guards
# ----------------------------------------------------------------------
def test_full_auditing_overhead_stays_under_ten_percent():
    """CI guard: audit_rate=1 keeps ≥90% of the unaudited throughput."""
    settings = _settings()
    factors, quality = make_world(settings)
    overhead = run_overhead(settings, factors, quality)
    assert overhead["audited"]["audited"] >= settings["burst"]
    assert overhead["baseline"]["audited"] == 0
    assert overhead["throughput_ratio"] >= 0.9, (
        f"auditing overhead exceeded 10%: "
        f"{overhead['baseline']['req_per_s']:.0f} req/s unaudited vs "
        f"{overhead['audited']['req_per_s']:.0f} audited "
        f"(ratio {overhead['throughput_ratio']:.3f})"
    )


def test_corrupted_publish_trips_canary_and_clean_does_not():
    """CI guard: collapsed factors page, a healthy retrain stays quiet."""
    settings = _settings()
    factors, quality = make_world(settings)
    fidelity = run_canary_fidelity(settings, factors, quality)
    corrupted, clean = fidelity["corrupted"], fidelity["clean"]
    assert corrupted["regression_events"] >= 1, (
        f"corrupted publish never tripped canary_regression: {corrupted}"
    )
    assert not corrupted["canary"]["passed"]
    assert "ilad" in corrupted["canary"]["regressions"]
    assert corrupted["health"] != HEALTHY, (
        f"health stayed {corrupted['health']} through an ILAD collapse"
    )
    # the collapse is real, not a tolerance artifact
    assert corrupted["candidate_ilad"] < 0.5 * corrupted["baseline_ilad"]
    assert clean["regression_events"] == 0, (
        f"clean republish false-paged: {clean}"
    )
    assert clean["canary"]["passed"]
    assert clean["health"] == HEALTHY, f"clean publish left health {clean}"


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()
    factors, quality = make_world(settings)

    results = {
        "workload": (
            "product health: closed-loop audit overhead (audit_rate 0 "
            "vs 1) and corrupted-vs-clean publish canary fidelity"
        ),
        "settings": dict(settings),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print(f"== audit overhead (burst={settings['burst']}, best of "
          f"{settings['trials']}) ==")
    overhead = run_overhead(settings, factors, quality)
    results["overhead"] = {
        "baseline_req_per_s": round(overhead["baseline"]["req_per_s"], 1),
        "audited_req_per_s": round(overhead["audited"]["req_per_s"], 1),
        "throughput_ratio": round(overhead["throughput_ratio"], 4),
        "audited_responses": overhead["audited"]["audited"],
    }
    print(
        f"  unaudited: {overhead['baseline']['req_per_s']:>8.0f} req/s\n"
        f"    audited: {overhead['audited']['req_per_s']:>8.0f} req/s "
        f"(ratio {overhead['throughput_ratio']:.3f}, "
        f"{overhead['audited']['audited']} slates audited)"
    )

    print(f"\n== publish canary fidelity "
          f"(traffic={settings['canary_traffic']}/version, "
          f"min_audits={settings['canary_min_audits']}) ==")
    fidelity = run_canary_fidelity(settings, factors, quality)
    results["canary"] = {
        scenario: {
            "regression_events": view["regression_events"],
            "health": view["health"],
            "passed": view["canary"]["passed"],
            "regressions": view["canary"]["regressions"],
            "baseline_ilad": round(view["baseline_ilad"], 4),
            "candidate_ilad": round(view["candidate_ilad"], 4),
        }
        for scenario, view in fidelity.items()
    }
    for scenario, view in results["canary"].items():
        print(
            f"  {scenario:>9}: canary "
            f"{'PASS' if view['passed'] else 'REGRESSED ' + str(view['regressions'])}"
            f", health={view['health']}, "
            f"ilad {view['baseline_ilad']} -> {view['candidate_ilad']}"
        )

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
