"""Shared helpers for the benchmark suite.

Every paper table/figure has a bench module that regenerates it at the
``quick`` experiment scale (seconds-to-minutes per table) and prints the
same rows the paper reports.  Set ``REPRO_BENCH_DATASETS`` to a
comma-separated list (e.g. ``beauty-like,ml-like,anime-like``) to widen
the sweep, and ``REPRO_BENCH_SCALE`` to ``small``/``full`` for the
higher-fidelity runs recorded in EXPERIMENTS.md.
"""

import os

DEFAULT_DATASETS = ("beauty-like",)


def bench_datasets() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_DATASETS", "")
    if not raw:
        return DEFAULT_DATASETS
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")
