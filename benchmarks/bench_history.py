"""Bench-regression sentinel: headline metrics, history, and a gate.

Every committed ``BENCH_*.json`` baseline carries a handful of
*headline* metrics — the numbers that page a human when they move
(speedups, overhead ratios, recall, coverage).  This tool maintains
``BENCH_HISTORY.jsonl``, one machine-fingerprinted JSON line per
recorded bench run, and gates changes against it:

* ``--record`` — extract the headline metrics from every
  ``BENCH_*.json`` in the bench dir and append one history line per
  bench (fingerprint: python / platform / machine / cpu count).
* ``--check`` — compare each bench's current headlines against the
  most recent history line with the **same fingerprint** and exit
  nonzero when any metric regressed past its noise tolerance.  Benches
  with no same-machine baseline are skipped (cross-machine numbers are
  not comparable — a laptop's speedup is not a CI runner's), so the
  gate only ever fires on like-for-like regressions.

Noise-aware thresholds: each headline declares a direction (higher- or
lower-is-better) and a relative tolerance sized to its observed
run-to-run jitter — 10% for closed-loop throughput ratios, up to 50%
for saturation-dependent tail ratios.  A current value worse than
``baseline × (1 ∓ tolerance)`` is a regression; a headline that
*disappears* from a bench file is always a regression (a silently
dropped metric is the failure mode this gate exists for).

Entry points:

* ``python benchmarks/bench_history.py --check`` — the CI gate.
* ``python benchmarks/bench_history.py --record`` — append baselines
  after regenerating ``BENCH_*.json`` on a quiet machine.
* ``pytest benchmarks/bench_history.py`` — the committed baselines
  pass their own gate, and a synthetically degraded copy fails it.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_NAME = "BENCH_HISTORY.jsonl"

#: bench name → list of (dotted json path, direction, relative tolerance).
#: Direction "higher": regression when current < baseline * (1 - tol);
#: "lower": regression when current > baseline * (1 + tol).  Tolerances
#: are sized to each metric's observed run-to-run noise, not its
#: importance — a 5% throughput drop is real, an 11× vs 9× p99 ratio
#: under saturation is weather.
HEADLINES: dict[str, list[tuple[str, str, float]]] = {
    "batched_lkp": [
        ("batch_sizes.128.speedup", "higher", 0.30),
    ],
    "health": [
        ("overhead.throughput_ratio", "higher", 0.10),
        ("canary.corrupted.regression_events", "higher", 0.0),
    ],
    "observability": [
        ("overhead.throughput_ratio", "higher", 0.10),
        ("coverage.min_coverage", "higher", 0.05),
    ],
    "overload": [
        ("overload.p99_ratio_off_over_on", "higher", 0.50),
        ("overload.ladder_on.unhandled", "lower", 0.0),
    ],
    "retrieval": [
        ("funnel_timing.200000.speedup", "higher", 0.40),
        ("recall_and_ndcg.quantile.recall_at_funnel", "higher", 0.02),
        ("funnel_cache.speedup", "higher", 0.40),
    ],
    "runtime": [
        ("admission.speedup", "higher", 0.30),
        ("retrieval_admission.speedup", "higher", 0.30),
        ("sharded_vs_monolithic.speedup", "higher", 0.40),
    ],
    "serving": [
        ("sizes.10000.speedup_build_sample", "higher", 0.60),
    ],
    "serving_engine": [
        ("batches.64.sample.speedup", "higher", 0.30),
        ("batches.64.map.speedup", "higher", 0.30),
    ],
    "session": [
        ("session_throughput.conditioning_overhead", "lower", 0.30),
        ("alpha_sweep.0.25.ndcg", "higher", 0.02),
    ],
    "profiling": [
        ("overhead.throughput_ratio", "higher", 0.10),
        ("attribution.attribution_coverage", "higher", 0.05),
        ("knee.relative_error", "lower", 1.0),
    ],
}


def fingerprint() -> dict:
    """The machine identity history lines are keyed by: results are
    only comparable between runs on the same interpreter + hardware."""
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _lookup(blob: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts; None when any hop is absent.

    Greedy-longest key match at each hop, because bench files key
    sections by floats (``window_sweep."0.001"``) whose dots collide
    with the path separator.
    """
    node = blob
    parts = dotted.split(".")
    index = 0
    while index < len(parts):
        if not isinstance(node, dict):
            return None
        found = None
        for take in range(len(parts) - index, 0, -1):
            candidate = ".".join(parts[index : index + take])
            if candidate in node:
                found = candidate
                node = node[candidate]
                index += take
                break
        if found is None:
            return None
    return node if isinstance(node, (int, float)) else None


def bench_name(path: Path) -> str:
    return path.stem.removeprefix("BENCH_")


def load_headlines(bench_dir: Path) -> dict[str, dict[str, float]]:
    """bench name → {dotted path: value} for every known BENCH file."""
    out: dict[str, dict[str, float]] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        name = bench_name(path)
        spec = HEADLINES.get(name)
        if spec is None:
            continue
        blob = json.loads(path.read_text())
        values = {}
        for dotted, _direction, _tol in spec:
            value = _lookup(blob, dotted)
            if value is not None:
                values[dotted] = float(value)
        out[name] = values
    return out


# ----------------------------------------------------------------------
# Record
# ----------------------------------------------------------------------
def record(bench_dir: Path, history_path: Path) -> int:
    """Append one fingerprinted history line per bench; returns count."""
    stamp = {"recorded_unix": round(time.time(), 1), "fingerprint": fingerprint()}
    lines = []
    for name, values in load_headlines(bench_dir).items():
        if values:
            lines.append(json.dumps({"bench": name, **stamp, "headlines": values}))
    if lines:
        with history_path.open("a") as handle:
            for line in lines:
                handle.write(line + "\n")
    return len(lines)


def read_history(history_path: Path) -> list[dict]:
    if not history_path.exists():
        return []
    entries = []
    for line in history_path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


# ----------------------------------------------------------------------
# Check
# ----------------------------------------------------------------------
def check(bench_dir: Path, history_path: Path) -> tuple[list[str], list[str]]:
    """(regressions, notes): regressions nonempty → the gate fails."""
    current = load_headlines(bench_dir)
    history = read_history(history_path)
    own = fingerprint()
    regressions: list[str] = []
    notes: list[str] = []
    for name, values in current.items():
        baselines = [
            entry
            for entry in history
            if entry.get("bench") == name and entry.get("fingerprint") == own
        ]
        if not baselines:
            notes.append(f"{name}: no same-machine baseline, skipped")
            continue
        baseline = baselines[-1]["headlines"]
        for dotted, direction, tol in HEADLINES[name]:
            base = baseline.get(dotted)
            if base is None:
                continue  # metric was never recorded for this machine
            now = values.get(dotted)
            if now is None:
                regressions.append(
                    f"{name}: headline {dotted} disappeared "
                    f"(baseline {base:g})"
                )
                continue
            if direction == "higher":
                floor = base * (1.0 - tol)
                if now < floor:
                    regressions.append(
                        f"{name}: {dotted} regressed {base:g} → {now:g} "
                        f"(floor {floor:g}, tol {tol:.0%})"
                    )
            else:
                ceiling = base * (1.0 + tol)
                if now > ceiling:
                    regressions.append(
                        f"{name}: {dotted} regressed {base:g} → {now:g} "
                        f"(ceiling {ceiling:g}, tol {tol:.0%})"
                    )
    return regressions, notes


# ----------------------------------------------------------------------
# pytest targets: the sentinel guards itself
# ----------------------------------------------------------------------
def test_committed_baselines_pass_the_gate():
    """The repo's own BENCH files must never trip the committed
    history (same-machine lines compare equal; others are skipped)."""
    regressions, _notes = check(REPO_ROOT, REPO_ROOT / HISTORY_NAME)
    assert not regressions, f"committed baselines regressed: {regressions}"


def test_synthetic_regression_fails_the_gate(tmp_path):
    """Degrading one headline past tolerance must fail the check —
    recorded and checked in a scratch dir so the real history is
    untouched."""
    source = REPO_ROOT / "BENCH_profiling.json"
    blob = json.loads(source.read_text())
    scratch = tmp_path / "BENCH_profiling.json"
    scratch.write_text(json.dumps(blob))
    history = tmp_path / HISTORY_NAME
    assert record(tmp_path, history) == 1
    regressions, _ = check(tmp_path, history)
    assert not regressions, f"identical rerun must pass: {regressions}"

    # throughput_ratio has 10% tolerance: a 50% drop is a regression
    blob["overhead"]["throughput_ratio"] *= 0.5
    scratch.write_text(json.dumps(blob))
    regressions, _ = check(tmp_path, history)
    assert any("throughput_ratio" in r for r in regressions), regressions

    # and a disappeared headline is flagged even when values are fine
    blob["overhead"]["throughput_ratio"] = None
    scratch.write_text(json.dumps(blob))
    regressions, _ = check(tmp_path, history)
    assert any("disappeared" in r for r in regressions), regressions


def test_cross_machine_baselines_are_skipped(tmp_path):
    """History from another fingerprint must never gate this one."""
    scratch = tmp_path / "BENCH_profiling.json"
    blob = json.loads((REPO_ROOT / "BENCH_profiling.json").read_text())
    blob["overhead"]["throughput_ratio"] = 0.01  # terrible — but foreign
    scratch.write_text(json.dumps(blob))
    history = tmp_path / HISTORY_NAME
    foreign = {
        "bench": "profiling",
        "recorded_unix": 0,
        "fingerprint": {"python": "0.0.0", "platform": "nowhere",
                        "machine": "imaginary", "cpu_count": 0},
        "headlines": {"overhead.throughput_ratio": 1.0},
    }
    history.write_text(json.dumps(foreign) + "\n")
    regressions, notes = check(tmp_path, history)
    assert not regressions, regressions
    assert any("no same-machine baseline" in n for n in notes), notes


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", action="store_true",
        help="append current headline metrics to the history",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate current BENCH files against the history (default)",
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=REPO_ROOT,
        help="directory holding BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--history", type=Path, default=None,
        help=f"history file (default: <bench-dir>/{HISTORY_NAME})",
    )
    args = parser.parse_args(argv)
    history_path = args.history or args.bench_dir / HISTORY_NAME

    status = 0
    if args.record:
        count = record(args.bench_dir, history_path)
        print(f"recorded {count} bench baselines to {history_path}")
    if args.check or not args.record:
        regressions, notes = check(args.bench_dir, history_path)
        for note in notes:
            print(f"  note: {note}")
        if regressions:
            for line in regressions:
                print(f"REGRESSION {line}")
            status = 1
        else:
            print(f"bench gate clean ({history_path})")
    return status


if __name__ == "__main__":
    sys.exit(main())
