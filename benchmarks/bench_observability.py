"""Observability benchmark: tracing overhead and trace coverage.

PR 8's telemetry must be effectively free when off and cheap when on:

* **Overhead** — a closed-loop throughput run (submit a burst, wait for
  every future, best of 3) at ``trace_rate=0`` (the default fast path)
  vs ``trace_rate=1`` (every request traced, every batch phase
  span-recorded).  The CI-guarded contract: full tracing keeps at least
  **90% of the untraced req/s** (<10% overhead).
* **Coverage** — under saturation (a burst far above ``queue_cap`` with
  one worker) a degraded response must carry a ``Response.trace`` whose
  top-level spans explain **≥95% of its end-to-end latency** and whose
  annotations name the degradation-ladder rung it was served at — the
  "where did the milliseconds go" question the trace exists to answer.

Recorded per run: req/s for both rates, the overhead ratio, per-stage
mean seconds from the ``serving_stage_seconds`` histogram, and the
worst observed trace coverage among degraded responses.

Entry points:

* ``pytest benchmarks/bench_observability.py`` — the CI guards above.
* ``python benchmarks/bench_observability.py [--output ...]`` — the
  JSON baseline writer behind ``BENCH_observability.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.serving import (
    ItemCatalog,
    Request,
    ServingConfig,
    ServingRuntime,
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(
            num_items=2048, rank=16, k=5, num_users=16, max_batch=16,
            burst=200, trials=3, queue_cap=8, saturation_burst=120,
        )
    return dict(
        num_items=20_000, rank=32, k=10, num_users=64, max_batch=32,
        burst=1000, trials=3, queue_cap=16, saturation_burst=400,
    )


def make_world(settings, seed: int = 0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(settings["num_items"], settings["rank"]))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    quality = np.exp(
        rng.normal(scale=0.5, size=(settings["num_users"], settings["num_items"]))
    )
    return factors, quality


def _burst_requests(settings, quality, count: int) -> list[Request]:
    return [
        Request(
            quality=quality[i % quality.shape[0]],
            k=settings["k"],
            mode="sample",
            seed=i,
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Closed-loop throughput at a given trace rate
# ----------------------------------------------------------------------
def run_throughput(settings, factors, quality, trace_rate: float) -> dict:
    """Best-of-``trials`` closed-loop req/s: submit a burst, await all."""
    config = ServingConfig(
        workers=1,
        max_batch=settings["max_batch"],
        max_wait=0.001,
        trace_rate=trace_rate,
    )
    requests = _burst_requests(settings, quality, settings["burst"])
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        # Warm spectra / allocator outside every timed window.
        runtime.serve_now(requests[: settings["max_batch"]])
        best = float("inf")
        for _ in range(settings["trials"]):
            begin = time.perf_counter()
            futures = runtime.submit_many(requests)
            for future in futures:
                future.result()
            best = min(best, time.perf_counter() - begin)
        stage_means = {}
        if trace_rate > 0:
            histogram = runtime.telemetry().registry.get("serving_stage_seconds")
            if histogram is not None:
                for series in histogram.snapshot()["series"]:
                    if series["count"]:
                        stage_means[series["labels"]["stage"]] = (
                            series["sum"] / series["count"]
                        )
    return {
        "trace_rate": trace_rate,
        "req_per_s": settings["burst"] / best,
        "best_s": best,
        "stage_mean_s": stage_means,
    }


def run_overhead(settings, factors, quality) -> dict:
    baseline = run_throughput(settings, factors, quality, trace_rate=0.0)
    traced = run_throughput(settings, factors, quality, trace_rate=1.0)
    return {
        "baseline": baseline,
        "traced": traced,
        "throughput_ratio": traced["req_per_s"] / baseline["req_per_s"],
    }


# ----------------------------------------------------------------------
# Trace coverage under saturation
# ----------------------------------------------------------------------
def run_coverage(settings, factors, quality) -> dict:
    """Saturate one worker behind a small queue cap; audit every traced
    degraded response's span coverage against its own e2e duration."""
    config = ServingConfig(
        workers=1,
        max_batch=settings["max_batch"],
        max_wait=0.001,
        queue_cap=settings["queue_cap"],
        overload_policy="degrade",
        trace_rate=1.0,
    )
    requests = _burst_requests(settings, quality, settings["saturation_burst"])
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        runtime.serve_now(requests[: settings["max_batch"]])
        futures = runtime.submit_many(requests)
        responses = [future.result() for future in futures]
    degraded = [r for r in responses if r.degraded]
    coverages = [r.trace.coverage() for r in degraded if r.trace is not None]
    rungs = sorted(
        {r.trace.annotations.get("served_mode") for r in degraded if r.trace}
    )
    return {
        "requests": len(responses),
        "degraded": len(degraded),
        "traced_degraded": len(coverages),
        "min_coverage": min(coverages) if coverages else None,
        "mean_coverage": (
            sum(coverages) / len(coverages) if coverages else None
        ),
        "degraded_rungs": [rung for rung in rungs if rung],
        "event_log": runtime.telemetry().event_log.stats(),
    }


# ----------------------------------------------------------------------
# pytest targets: the CI guards
# ----------------------------------------------------------------------
def test_full_tracing_overhead_stays_under_ten_percent():
    """CI guard: trace_rate=1 keeps ≥90% of the untraced throughput."""
    settings = _settings()
    factors, quality = make_world(settings)
    overhead = run_overhead(settings, factors, quality)
    assert overhead["throughput_ratio"] >= 0.9, (
        f"tracing overhead exceeded 10%: "
        f"{overhead['baseline']['req_per_s']:.0f} req/s untraced vs "
        f"{overhead['traced']['req_per_s']:.0f} traced "
        f"(ratio {overhead['throughput_ratio']:.3f})"
    )
    # the traced run actually recorded engine stages
    assert "eigh" in overhead["traced"]["stage_mean_s"]


def test_degraded_traces_cover_e2e_latency_and_name_the_rung():
    """CI guard: under saturation every traced degraded response
    explains ≥95% of its own latency and names its ladder rung."""
    settings = _settings()
    factors, quality = make_world(settings)
    coverage = run_coverage(settings, factors, quality)
    assert coverage["degraded"] > 0, (
        f"saturation never degraded a request: {coverage}"
    )
    assert coverage["traced_degraded"] == coverage["degraded"]
    assert coverage["min_coverage"] >= 0.95, (
        f"trace left >5% of a degraded request's latency unexplained: "
        f"{coverage}"
    )
    assert coverage["degraded_rungs"], f"no rung annotations: {coverage}"
    # the event log saw the degradations the responses report
    assert coverage["event_log"]["recorded"] > 0


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()
    factors, quality = make_world(settings)

    results = {
        "workload": (
            "serving telemetry: closed-loop tracing overhead "
            "(trace_rate 0 vs 1) and degraded-trace span coverage "
            "under saturation"
        ),
        "settings": dict(settings),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print(f"== tracing overhead (burst={settings['burst']}, best of "
          f"{settings['trials']}) ==")
    overhead = run_overhead(settings, factors, quality)
    results["overhead"] = {
        "baseline_req_per_s": round(overhead["baseline"]["req_per_s"], 1),
        "traced_req_per_s": round(overhead["traced"]["req_per_s"], 1),
        "throughput_ratio": round(overhead["throughput_ratio"], 4),
        "stage_mean_ms": {
            stage: round(seconds * 1e3, 4)
            for stage, seconds in sorted(
                overhead["traced"]["stage_mean_s"].items()
            )
        },
    }
    print(
        f"   untraced: {overhead['baseline']['req_per_s']:>8.0f} req/s\n"
        f"     traced: {overhead['traced']['req_per_s']:>8.0f} req/s "
        f"(ratio {overhead['throughput_ratio']:.3f})"
    )
    for stage, milliseconds in results["overhead"]["stage_mean_ms"].items():
        print(f"{stage:>11}: {milliseconds:>8.3f} ms/batch")

    print(f"\n== trace coverage under saturation "
          f"(burst={settings['saturation_burst']}, "
          f"cap={settings['queue_cap']}) ==")
    coverage = run_coverage(settings, factors, quality)
    results["coverage"] = {
        key: (round(value, 4) if isinstance(value, float) else value)
        for key, value in coverage.items()
    }
    print(
        f"   degraded {coverage['degraded']}/{coverage['requests']} "
        f"(rungs: {', '.join(coverage['degraded_rungs'])})\n"
        f"   span coverage min {coverage['min_coverage']:.3f} / "
        f"mean {coverage['mean_coverage']:.3f}"
    )

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
