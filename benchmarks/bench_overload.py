"""Overload benchmark: the degradation ladder under ~2x saturation.

``benchmarks/bench_runtime.py`` measures the runtime *below* capacity;
this benchmark measures what happens when offered load exceeds it — the
regime PR 7's resilience layer exists for.  A paced injector measures
the engine's batched per-request capacity, then submits requests
**open-loop at ~2x that rate** (a closed loop cannot oversaturate: its
clients block on their own futures) against two runtimes:

* **ladder on** — ``queue_cap`` + ``overload_policy="degrade"`` and a
  per-request ``deadline``: admissions past the cap walk the
  degradation ladder (``sample → map → topk-rerank → quality-topk``),
  requests whose budget ran out are failed with the structured
  ``DeadlineExceeded`` instead of being served late;
* **ladder off** — no cap, no deadlines: the PR 6 behavior, where the
  queue grows without bound for as long as the overload lasts and every
  request is eventually served exactly, arbitrarily late.

Recorded per run: resolution-latency percentiles (submit → future
resolved, shed requests included — a fast structured failure *is* the
product under overload), served/degraded/shed counts, the peak queue
depth, and ``unhandled`` — futures that resolved with anything other
than a ``Response`` or a ``ServingError``.  The CI-guarded contract:

* ladder on sheds or degrades (the overload is real) with **zero
  unhandled errors**, and its p99 and peak queue depth stay **below**
  the ladder-off run's (bounded latency vs unbounded queue growth);
* ladder off serves every request exactly (``degraded == 0``) — the
  ladder never activates on an unconfigured runtime.

Entry points:

* ``pytest benchmarks/bench_overload.py`` — the CI guard above.
* ``python benchmarks/bench_overload.py [--output ...]`` — the JSON
  baseline writer behind ``BENCH_overload.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.serving import (
    ItemCatalog,
    Request,
    ServingConfig,
    ServingError,
    ServingRuntime,
)
from repro.utils.timing import latency_percentiles


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(
            num_items=2048, rank=16, k=5, num_users=16, max_batch=16,
            total_requests=600, overload_factor=2.0, queue_cap=16,
            deadline_ms=50.0,
        )
    return dict(
        num_items=20_000, rank=32, k=10, num_users=64, max_batch=32,
        total_requests=1500, overload_factor=2.0, queue_cap=64,
        deadline_ms=150.0,
    )


def make_world(settings, seed: int = 0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(settings["num_items"], settings["rank"]))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    quality = np.exp(
        rng.normal(scale=0.5, size=(settings["num_users"], settings["num_items"]))
    )
    return factors, quality


def _calibrate(runtime: ServingRuntime, quality: np.ndarray, settings) -> float:
    """Batched per-request engine cost (seconds) — the capacity unit.

    A saturated worker drains full batches, so full-batch serving *is*
    the service rate the injector needs to beat.
    """
    batch = [
        Request(
            quality=quality[b % quality.shape[0]],
            k=settings["k"],
            mode="sample",
            seed=7000 + b,
        )
        for b in range(settings["max_batch"])
    ]
    runtime.serve_now(batch)  # warm caches/spectra outside the timed region
    times = []
    for _ in range(3):
        begin = time.perf_counter()
        runtime.serve_now(batch)
        times.append(time.perf_counter() - begin)
    return min(times) / len(batch)


# ----------------------------------------------------------------------
# One overload run
# ----------------------------------------------------------------------
def run_overload(settings, factors, quality, ladder: bool) -> dict:
    """Paced open-loop injection at ``overload_factor``x capacity."""
    config = ServingConfig(
        workers=1,
        max_batch=settings["max_batch"],
        max_wait=0.001,
        queue_cap=settings["queue_cap"] if ladder else None,
        overload_policy="degrade",
    )
    deadline_s = settings["deadline_ms"] / 1e3 if ladder else None
    latencies: list[float] = []
    futures = []
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        per_request = _calibrate(runtime, quality, settings)
        interval = per_request / settings["overload_factor"]
        begin = time.perf_counter()
        for i in range(settings["total_requests"]):
            lag = begin + i * interval - time.perf_counter()
            if lag > 0:
                time.sleep(lag)
            request = Request(
                quality=quality[i % quality.shape[0]],
                k=settings["k"],
                mode="sample",
                seed=i,
                deadline=(
                    time.monotonic() + deadline_s if deadline_s is not None else None
                ),
            )
            submitted = time.perf_counter()
            future = runtime.submit(request)
            future.add_done_callback(
                lambda f, t0=submitted: latencies.append(time.perf_counter() - t0)
            )
            futures.append(future)
        injection_s = time.perf_counter() - begin
        runtime.close()  # drain=True: the backlog is served before stats
        total_s = time.perf_counter() - begin
        stats = runtime.stats

    served = degraded = shed = unhandled = 0
    shed_by_type: dict[str, int] = {}
    for future in futures:
        error = future.exception()
        if error is None:
            served += 1
            if future.result().degraded:
                degraded += 1
        elif isinstance(error, ServingError):
            shed += 1
            name = type(error).__name__
            shed_by_type[name] = shed_by_type.get(name, 0) + 1
        else:  # anything unstructured escaping under overload is a bug
            unhandled += 1
    quantiles = latency_percentiles(latencies, (50.0, 99.0))
    return {
        "ladder": ladder,
        "offered_per_s": settings["total_requests"] / injection_s,
        "per_request_capacity_ms": per_request * 1e3,
        "injection_s": injection_s,
        "total_s": total_s,
        "p50_ms": quantiles["p50"] * 1e3,
        "p99_ms": quantiles["p99"] * 1e3,
        "served": served,
        "degraded": degraded,
        "shed": shed,
        "shed_by_type": shed_by_type,
        "unhandled": unhandled,
        "max_queue_depth": stats["max_queue_depth"],
        "degraded_admissions": stats["degraded_admissions"],
        "quality_topk_served": stats["resilience"]["quality_topk_served"],
        "deadline_exceeded": stats["resilience"]["deadline_exceeded"],
    }


def run_comparison(settings) -> dict:
    factors, quality = make_world(settings)
    with_ladder = run_overload(settings, factors, quality, ladder=True)
    without = run_overload(settings, factors, quality, ladder=False)
    return {
        "ladder_on": with_ladder,
        "ladder_off": without,
        "p99_ratio_off_over_on": without["p99_ms"] / with_ladder["p99_ms"],
        "depth_ratio_off_over_on": (
            without["max_queue_depth"] / max(with_ladder["max_queue_depth"], 1)
        ),
    }


# ----------------------------------------------------------------------
# pytest target and CI guard
# ----------------------------------------------------------------------
def test_ladder_bounds_p99_and_sheds_cleanly_at_2x_saturation():
    """CI guard: at ~2x offered saturation the ladder must activate,
    shed only structured errors, and keep both p99 and peak queue depth
    below the unbounded (ladder-off) run's."""
    comparison = run_comparison(_settings())
    on, off = comparison["ladder_on"], comparison["ladder_off"]
    # The overload was real and the ladder answered it.
    assert on["degraded"] + on["shed"] > 0, f"ladder never activated: {on}"
    # Nothing unstructured escaped — shed requests fail with the taxonomy.
    assert on["unhandled"] == 0, f"unhandled errors under overload: {on}"
    assert off["unhandled"] == 0, f"unhandled errors in the baseline: {off}"
    # Off: every request eventually served exactly — the ladder is
    # genuinely opt-in — at the price of unbounded queue growth.
    assert off["degraded"] == 0 and off["shed"] == 0
    assert off["served"] == _settings()["total_requests"]
    # Bounded tail vs unbounded backlog.
    assert on["p99_ms"] < off["p99_ms"], (
        f"ladder did not bound p99: on {on['p99_ms']:.1f} ms "
        f"vs off {off['p99_ms']:.1f} ms"
    )
    assert on["max_queue_depth"] < off["max_queue_depth"], (
        f"ladder did not bound the queue: on depth {on['max_queue_depth']} "
        f"vs off {off['max_queue_depth']}"
    )


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()

    results = {
        "workload": (
            "overload safety: paced open-loop injection at ~2x engine "
            "capacity, degradation ladder + deadlines vs unbounded queue"
        ),
        "settings": dict(settings),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print(f"== overload at ~{settings['overload_factor']:g}x capacity "
          f"(N={settings['total_requests']}) ==")
    comparison = run_comparison(settings)
    results["overload"] = {
        key: (
            {
                inner: (value if isinstance(value, (dict, bool)) else round(value, 6))
                for inner, value in entry.items()
            }
            if isinstance(entry, dict)
            else round(entry, 3)
        )
        for key, entry in comparison.items()
    }
    for label in ("ladder_on", "ladder_off"):
        entry = comparison[label]
        print(
            f"{label:>11}: p50 {entry['p50_ms']:>7.1f} / "
            f"p99 {entry['p99_ms']:>8.1f} ms  "
            f"served {entry['served']} (degraded {entry['degraded']}), "
            f"shed {entry['shed']}, unhandled {entry['unhandled']}, "
            f"peak queue {entry['max_queue_depth']}"
        )
    print(
        f"{'contrast':>11}: p99 off/on "
        f"{comparison['p99_ratio_off_over_on']:.1f}x, peak-queue off/on "
        f"{comparison['depth_ratio_off_over_on']:.1f}x"
    )

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
