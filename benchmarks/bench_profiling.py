"""Profiling benchmark: sampler overhead, stage attribution, headroom.

PR 10's introspection layer has three CI-guarded contracts:

* **Overhead** — a closed-loop throughput run (submit a burst, wait for
  every future, best of 3) at ``profile_hz=0`` (the default: no
  registry, no sampler thread, bit-identical to PR 9) vs
  ``profile_hz=100``.  Continuous profiling keeps at least **95% of the
  unprofiled req/s**.
* **Attribution** — after a profiled run, at least **80%** of the
  samples that landed inside engine work carry a stage finer than the
  coarse ``engine`` window (``dual_build`` / ``eigh`` / ``selection``
  / …), so the per-stage self-time table actually explains where the
  CPU went.
* **Headroom** — the :class:`~repro.serving.profiling.CapacityModel`
  saturation estimate (affine batch-cost fit over every engine batch)
  lands within **±30%** of the measured closed-loop knee — the req/s a
  saturating burst actually sustains on the same worker.

Recorded per run: req/s at both rates, the overhead ratio, sampler tick
and attribution counts, per-stage self seconds, the headroom report the
knee was checked against, and the runtime footprint (tracked bytes /
RSS) after the profiled run.

Entry points:

* ``pytest benchmarks/bench_profiling.py`` — the CI guards above.
* ``python benchmarks/bench_profiling.py [--output ...]`` — the JSON
  baseline writer behind ``BENCH_profiling.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.serving import (
    ItemCatalog,
    Request,
    ServingConfig,
    ServingRuntime,
)

PROFILE_HZ = 100.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        # Engine batches must dominate scheduler overhead even at smoke
        # scale or the knee check measures the scheduler, not the model
        # — hence more items/rank than the other smoke benches.
        return dict(
            num_items=6000, rank=24, k=8, num_users=16, max_batch=16,
            burst=400, trials=7, coverage_hz=400.0, min_stage_samples=20,
        )
    return dict(
        num_items=20_000, rank=32, k=10, num_users=64, max_batch=32,
        burst=1000, trials=5, coverage_hz=200.0, min_stage_samples=50,
    )


def make_world(settings, seed: int = 0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(settings["num_items"], settings["rank"]))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    quality = np.exp(
        rng.normal(scale=0.5, size=(settings["num_users"], settings["num_items"]))
    )
    return factors, quality


def _burst_requests(settings, quality, count: int) -> list[Request]:
    return [
        Request(
            quality=quality[i % quality.shape[0]],
            k=settings["k"],
            mode="sample",
            seed=i,
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Closed-loop throughput at a given profile rate
# ----------------------------------------------------------------------
def _timed_burst(settings, factors, quality, profile_hz: float) -> dict:
    """One fresh runtime, one warmed closed-loop burst; its wall time
    plus (when profiling) the profiler / headroom / footprint stats."""
    config = ServingConfig(
        workers=1,
        max_batch=settings["max_batch"],
        max_wait=0.001,
        profile_hz=profile_hz,
    )
    requests = _burst_requests(settings, quality, settings["burst"])
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        # Warm spectra / allocator outside the timed window.
        runtime.serve_now(requests[: settings["max_batch"]])
        begin = time.perf_counter()
        futures = runtime.submit_many(requests)
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - begin
        result = {
            "profile_hz": profile_hz,
            "seconds": elapsed,
            "headroom": runtime.headroom().to_dict(),
            "footprint_tracked_bytes": runtime.footprint().total_tracked_bytes,
        }
        if runtime.profiler is not None:
            result["profiler"] = runtime.profiler.stats()
    return result


def run_profiled(settings, factors, quality, profile_hz: float) -> dict:
    """Best-of-``trials`` closed-loop req/s over one long-lived runtime
    (the capacity model accumulates every trial's batches)."""
    config = ServingConfig(
        workers=1,
        max_batch=settings["max_batch"],
        max_wait=0.001,
        profile_hz=profile_hz,
    )
    requests = _burst_requests(settings, quality, settings["burst"])
    with ServingRuntime(ItemCatalog(factors), config=config) as runtime:
        runtime.serve_now(requests[: settings["max_batch"]])
        best = float("inf")
        for _ in range(settings["trials"]):
            begin = time.perf_counter()
            futures = runtime.submit_many(requests)
            for future in futures:
                future.result()
            best = min(best, time.perf_counter() - begin)
        result = {
            "profile_hz": profile_hz,
            "req_per_s": settings["burst"] / best,
            "best_s": best,
            "headroom": runtime.headroom().to_dict(),
            "footprint_tracked_bytes": runtime.footprint().total_tracked_bytes,
        }
        if runtime.profiler is not None:
            result["profiler"] = runtime.profiler.stats()
    return result


def run_overhead(settings, factors, quality) -> dict:
    """Interleaved best-of-``trials`` comparison of profile_hz 0 vs
    ``PROFILE_HZ``.

    The legs alternate burst-by-burst (fresh runtime per burst) so
    machine-level drift — CPU clocks, neighbors, thermal throttle —
    hits both bursts of a pair near-identically; the guard metric is
    the **median of the paired per-trial ratios**, which cancels
    sustained rate shifts that a min-of-each-leg comparison (where one
    leg may simply never get a fast window) cannot.  One throwaway
    burst first absorbs process warmup (BLAS thread pools, allocator
    arenas).
    """
    _timed_burst(settings, factors, quality, profile_hz=0.0)
    baseline_s: list[float] = []
    profiled_s: list[float] = []
    profiled_last: dict = {}
    for _ in range(settings["trials"]):
        baseline_s.append(
            _timed_burst(settings, factors, quality, profile_hz=0.0)["seconds"]
        )
        profiled_last = _timed_burst(
            settings, factors, quality, profile_hz=PROFILE_HZ
        )
        profiled_s.append(profiled_last["seconds"])
    burst = settings["burst"]
    paired = sorted(
        base / prof for base, prof in zip(baseline_s, profiled_s)
    )
    return {
        "baseline": {"req_per_s": burst / min(baseline_s), "trial_s": baseline_s},
        "profiled": {
            "req_per_s": burst / min(profiled_s),
            "trial_s": profiled_s,
            "profiler": profiled_last["profiler"],
            "footprint_tracked_bytes": profiled_last[
                "footprint_tracked_bytes"
            ],
        },
        "throughput_ratio": paired[len(paired) // 2],
    }


# ----------------------------------------------------------------------
# Stage attribution at a higher sampling rate
# ----------------------------------------------------------------------
def run_attribution(settings, factors, quality) -> dict:
    """A profiled saturating run at ``coverage_hz`` — high enough that
    even the smoke workload accumulates a meaningful sample count."""
    profiled = run_profiled(
        settings, factors, quality, profile_hz=settings["coverage_hz"]
    )
    stats = profiled["profiler"]
    return {
        "hz": settings["coverage_hz"],
        "ticks": stats["ticks"],
        "stage_samples": stats["stage_samples"],
        "attributed_samples": stats["attributed_samples"],
        "attribution_coverage": stats["attribution_coverage"],
        "stage_self_s": stats["stage_self_seconds"],
        "sampler_overhead_s": stats["sampler_overhead_s"],
    }


# ----------------------------------------------------------------------
# Capacity model vs measured closed-loop knee
# ----------------------------------------------------------------------
def run_knee(settings, factors, quality) -> dict:
    """The unprofiled saturating burst IS the knee — one worker, queue
    never empty — so its wall req/s is the ground truth the capacity
    model's saturation estimate must land within ±30% of."""
    baseline = run_profiled(settings, factors, quality, profile_hz=0.0)
    measured = baseline["req_per_s"]
    predicted = baseline["headroom"]["saturation_req_per_s"]
    return {
        "measured_knee_req_per_s": measured,
        "predicted_saturation_req_per_s": predicted,
        "relative_error": abs(predicted - measured) / measured,
        "batch_cost_fit": baseline["headroom"]["batch_cost_fit"],
        "request_weighted_batch": baseline["headroom"]["request_weighted_batch"],
    }


# ----------------------------------------------------------------------
# pytest targets: the CI guards
# ----------------------------------------------------------------------
def test_profiler_overhead_stays_under_five_percent():
    """CI guard: profile_hz=100 keeps ≥95% of unprofiled throughput.

    Sequential test: the paired-median ratio is itself noisy at ±2–3%
    on busy single-core hosts (every sampler tick preempts the engine
    on the same core), so a miss earns up to two more measurement
    rounds.  A genuine >5% regression sits below the threshold in
    every round; a borderline-true ratio near 0.97 clears almost
    surely.
    """
    settings = _settings()
    factors, quality = make_world(settings)
    ratios = []
    overhead = {}
    for _ in range(3):
        overhead = run_overhead(settings, factors, quality)
        ratios.append(overhead["throughput_ratio"])
        if overhead["throughput_ratio"] >= 0.95:
            break
    assert max(ratios) >= 0.95, (
        f"profiling overhead exceeded 5% in every round: "
        f"{overhead['baseline']['req_per_s']:.0f} req/s unprofiled vs "
        f"{overhead['profiled']['req_per_s']:.0f} profiled "
        f"(paired-median ratios {[round(r, 3) for r in ratios]})"
    )
    # the sampler actually ran during the profiled window
    assert overhead["profiled"]["profiler"]["ticks"] > 0


def test_stage_attribution_covers_engine_samples():
    """CI guard: ≥80% of in-engine samples name a fine stage."""
    settings = _settings()
    factors, quality = make_world(settings)
    attribution = run_attribution(settings, factors, quality)
    assert attribution["stage_samples"] >= settings["min_stage_samples"], (
        f"too few in-stage samples to judge attribution: {attribution}"
    )
    assert attribution["attribution_coverage"] >= 0.80, (
        f"stage attribution below 80%: {attribution}"
    )
    # the self-time table names real engine stages, not just the marker
    fine = set(attribution["stage_self_s"]) - {"engine"}
    assert fine, f"no fine-grained stages recorded: {attribution}"


def test_capacity_model_matches_closed_loop_knee():
    """CI guard: predicted saturation within ±30% of the measured knee."""
    settings = _settings()
    factors, quality = make_world(settings)
    knee = run_knee(settings, factors, quality)
    assert knee["relative_error"] <= 0.30, (
        f"capacity model missed the knee by "
        f"{knee['relative_error']:.1%}: {knee}"
    )


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()
    factors, quality = make_world(settings)

    results = {
        "workload": (
            "performance introspection: sampling-profiler overhead "
            f"(profile_hz 0 vs {PROFILE_HZ:.0f}), stage attribution "
            "coverage, and capacity-model saturation vs the measured "
            "closed-loop knee"
        ),
        "settings": dict(settings),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print(f"== profiler overhead (burst={settings['burst']}, best of "
          f"{settings['trials']}) ==")
    overhead = run_overhead(settings, factors, quality)
    profiled_stats = overhead["profiled"]["profiler"]
    results["overhead"] = {
        "baseline_req_per_s": round(overhead["baseline"]["req_per_s"], 1),
        "profiled_req_per_s": round(overhead["profiled"]["req_per_s"], 1),
        "throughput_ratio": round(overhead["throughput_ratio"], 4),
        "profile_hz": PROFILE_HZ,
        "ticks": profiled_stats["ticks"],
        "sampler_overhead_ms": round(
            profiled_stats["sampler_overhead_s"] * 1e3, 3
        ),
        "footprint_tracked_bytes": overhead["profiled"][
            "footprint_tracked_bytes"
        ],
    }
    print(
        f" unprofiled: {overhead['baseline']['req_per_s']:>8.0f} req/s\n"
        f"   profiled: {overhead['profiled']['req_per_s']:>8.0f} req/s "
        f"(ratio {overhead['throughput_ratio']:.3f}, "
        f"{profiled_stats['ticks']} ticks)"
    )

    print(f"\n== stage attribution (hz={settings['coverage_hz']:.0f}) ==")
    attribution = run_attribution(settings, factors, quality)
    results["attribution"] = {
        "hz": attribution["hz"],
        "stage_samples": attribution["stage_samples"],
        "attributed_samples": attribution["attributed_samples"],
        "attribution_coverage": round(attribution["attribution_coverage"], 4),
        "stage_self_ms": {
            stage: round(seconds * 1e3, 1)
            for stage, seconds in sorted(attribution["stage_self_s"].items())
        },
    }
    print(
        f"   {attribution['attributed_samples']}/"
        f"{attribution['stage_samples']} samples attributed "
        f"({attribution['attribution_coverage']:.3f})"
    )
    for stage, milliseconds in results["attribution"]["stage_self_ms"].items():
        print(f"{stage:>12}: {milliseconds:>8.1f} ms self")

    print("\n== capacity model vs closed-loop knee ==")
    knee = run_knee(settings, factors, quality)
    results["knee"] = {
        "measured_knee_req_per_s": round(knee["measured_knee_req_per_s"], 1),
        "predicted_saturation_req_per_s": round(
            knee["predicted_saturation_req_per_s"], 1
        ),
        "relative_error": round(knee["relative_error"], 4),
        "fixed_ms": round(knee["batch_cost_fit"]["fixed_s"] * 1e3, 3),
        "per_request_ms": round(
            knee["batch_cost_fit"]["per_request_s"] * 1e3, 3
        ),
        "request_weighted_batch": round(knee["request_weighted_batch"], 2),
    }
    print(
        f"   measured {knee['measured_knee_req_per_s']:>8.0f} req/s vs "
        f"predicted {knee['predicted_saturation_req_per_s']:>8.0f} req/s "
        f"(error {knee['relative_error']:.1%})"
    )

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
