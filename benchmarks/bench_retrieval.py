"""Candidate generation: funnel time, recall@funnel, end-to-end NDCG.

PR 4 left serving *funnel-bound*: the exact per-shard quality top-k in
front of the k-DPP costs O(M) per request and caps micro-batched
admission well below the engine's batching win.  This benchmark
measures the ``repro.retrieval`` sources that attack the funnel:

* **funnel timing** — batched ``pools()`` wall time, ExactTopK vs
  QuantileFunnel, across catalog sizes (the CI-guarded number:
  the quantile funnel must beat exact at M >= 5e4);
* **recall@funnel** — fraction of the exact funnel pool an approximate
  source recovers (QuantileFunnel is exact-on-success by construction;
  IVFIndex is genuinely approximate and measured on a structured
  catalog where quality follows factor geometry, its design regime);
* **end-to-end NDCG delta** — quality-gain NDCG of greedy-MAP lists
  served through each source against the exact source's lists, so
  funnel approximation is priced in the paper's serving currency;
* **funnel cache** — repeat-visitor hit rate and the funnel time a
  :class:`~repro.retrieval.cache.FunnelCache` removes.

Entry points:

* ``pytest benchmarks/bench_retrieval.py`` — guards: QuantileFunnel
  beats ExactTopK batch funnel time at M>=5e4, and both approximate
  sources hold recall@funnel >= 0.95.
* ``python benchmarks/bench_retrieval.py [--output ...]`` — the JSON
  baseline writer behind ``BENCH_retrieval.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
non-guarded workloads; the funnel-time guard keeps its M=5e4 catalog
either way (timing a smaller catalog would not test the claim).
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.retrieval import ExactTopK, FunnelCache, IVFIndex, QuantileFunnel
from repro.serving import Request, ServingConfig, ShardedCatalog, ShardedKDPPServer


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(
            funnel_sizes=(50_000,), rank=16, batch=16, width=32, num_shards=8,
            repeats=3, recall_items=8_000, recall_rank=12, recall_batch=12,
            recall_width=24, recall_shards=4, k=8,
        )
    return dict(
        funnel_sizes=(50_000, 100_000, 200_000), rank=32, batch=32, width=32,
        num_shards=8, repeats=5, recall_items=40_000, recall_rank=16,
        recall_batch=24, recall_width=32, recall_shards=8, k=10,
    )


def make_iid_world(num_items: int, rank: int, batch: int, seed: int = 0):
    """Unit-norm factors + iid log-normal quality (funnel-timing load)."""
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(num_items, rank))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    quality = np.exp(rng.normal(scale=0.5, size=(batch, num_items)))
    return factors, quality


def make_clustered_world(
    num_items: int, rank: int, batch: int, clusters: int = 12, seed: int = 1
):
    """Clustered factors with quality following the same geometry
    (``q_u = exp(t · V u)``) — the trained-model regime IVF probing is
    built for."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, rank))
    assignment = rng.integers(0, clusters, size=num_items)
    factors = centers[assignment] + 0.35 * rng.normal(size=(num_items, rank))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    users = centers[rng.integers(0, clusters, size=batch)]
    users += 0.2 * rng.normal(size=(batch, rank))
    quality = np.exp(2.0 * (factors @ users.T).T)
    return factors, quality


# ----------------------------------------------------------------------
# Measurements
# ----------------------------------------------------------------------
def bench_funnel(source, quality, width, snapshot, repeats: int) -> float:
    """Best-of wall time of one batched ``pools()`` call (index builds
    and sketches are warmed outside the timed region, like a service)."""
    source.pools(quality, width, snapshot)  # warm per-version state
    best = np.inf
    for _ in range(max(repeats, 2)):
        start = time.perf_counter()
        source.pools(quality, width, snapshot)
        best = min(best, time.perf_counter() - start)
    return best


def recall_at_funnel(pools: np.ndarray, exact_pools: np.ndarray) -> float:
    per_row = [
        len(set(pools[b].tolist()) & set(exact_pools[b].tolist()))
        / len(set(exact_pools[b].tolist()))
        for b in range(exact_pools.shape[0])
    ]
    return float(np.mean(per_row))


def quality_ndcg(items, quality_row: np.ndarray, k: int) -> float:
    """Quality-gain NDCG@k: DCG of the served list over the ideal DCG of
    the user's top-k quality items (MAP trades some of this for
    diversity by design; the *delta between sources* isolates what the
    funnel approximation costs on top)."""
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    gains = quality_row[np.asarray(items[:k], dtype=np.int64)]
    ideal = np.sort(quality_row)[::-1][:k]
    return float((gains * discounts[: gains.shape[0]]).sum() / (ideal * discounts).sum())


def run_funnel_timing(settings) -> dict:
    """ExactTopK vs QuantileFunnel batched funnel time across sizes."""
    results = {}
    for num_items in settings["funnel_sizes"]:
        factors, quality = make_iid_world(
            num_items, settings["rank"], settings["batch"]
        )
        snapshot = ShardedCatalog(
            factors, num_shards=settings["num_shards"]
        ).snapshot()
        exact, quantile = ExactTopK(), QuantileFunnel()
        exact_s = bench_funnel(
            exact, quality, settings["width"], snapshot, settings["repeats"]
        )
        quantile_s = bench_funnel(
            quantile, quality, settings["width"], snapshot, settings["repeats"]
        )
        # Recall + fallback accounting for exactly ONE batch (the timing
        # loop above accumulated the counter across its repeats).
        before = quantile.stats()["fallback_rows"]
        pools = quantile.pools(quality, settings["width"], snapshot)
        fallback_rows = quantile.stats()["fallback_rows"] - before
        exact_pools = exact.pools(quality, settings["width"], snapshot)
        results[str(num_items)] = {
            "exact_ms": exact_s * 1e3,
            "quantile_ms": quantile_s * 1e3,
            "speedup": exact_s / quantile_s,
            "quantile_recall": recall_at_funnel(pools, exact_pools),
            "quantile_fallback_rows_per_batch": fallback_rows,
        }
    return results


def run_recall_and_ndcg(settings) -> dict:
    """Approximate-source quality on the structured catalog: recall of
    the exact funnel pool, and NDCG delta of the served MAP lists."""
    factors, quality = make_clustered_world(
        settings["recall_items"], settings["recall_rank"], settings["recall_batch"]
    )
    catalog = ShardedCatalog(factors, num_shards=settings["recall_shards"])
    snapshot = catalog.snapshot()
    width, k = settings["recall_width"], settings["k"]
    exact = ExactTopK()
    exact_pools = exact.pools(quality, width, snapshot)
    requests = [
        Request(quality=quality[b], k=k, mode="map")
        for b in range(quality.shape[0])
    ]
    exact_server = ShardedKDPPServer(
        catalog, config=ServingConfig(funnel_width=width, source=exact)
    )
    exact_responses = exact_server.serve(requests)
    exact_ndcg = float(
        np.mean(
            [
                quality_ndcg(response.items, quality[b], k)
                for b, response in enumerate(exact_responses)
            ]
        )
    )
    results = {"exact_ndcg": exact_ndcg}
    for source in (QuantileFunnel(), IVFIndex()):
        pools = source.pools(quality, width, snapshot)
        server = ShardedKDPPServer(
            catalog, config=ServingConfig(funnel_width=width, source=source)
        )
        responses = server.serve(requests)
        ndcg = float(
            np.mean(
                [
                    quality_ndcg(response.items, quality[b], k)
                    for b, response in enumerate(responses)
                ]
            )
        )
        results[source.name] = {
            "recall_at_funnel": recall_at_funnel(pools, exact_pools),
            "ndcg": ndcg,
            "ndcg_delta_vs_exact": exact_ndcg - ndcg,
            "identical_lists": sum(
                left.items == right.items
                for left, right in zip(exact_responses, responses)
            )
            / len(responses),
        }
    return results


def run_funnel_cache(settings) -> dict:
    """Repeat-visitor economics: source funnel time removed by the cache."""
    factors, quality = make_iid_world(
        settings["funnel_sizes"][0], settings["rank"], settings["batch"], seed=5
    )
    catalog = ShardedCatalog(factors, num_shards=settings["num_shards"])
    cache = FunnelCache()
    source = QuantileFunnel()
    server = ShardedKDPPServer(
        catalog,
        config=ServingConfig(
            funnel_width=settings["width"], source=source, funnel_cache=cache
        ),
    )
    requests = [
        Request(quality=quality[b], k=settings["k"], mode="sample", seed=b, user=b)
        for b in range(quality.shape[0])
    ]
    start = time.perf_counter()
    server.serve(requests)
    cold_s = time.perf_counter() - start
    cold_funnel_s = source.stats()["time_s"]
    start = time.perf_counter()
    server.serve(requests)
    warm_s = time.perf_counter() - start
    warm_funnel_s = source.stats()["time_s"] - cold_funnel_s
    return {
        "cold_batch_s": cold_s,
        "warm_batch_s": warm_s,
        "cold_funnel_s": cold_funnel_s,
        "warm_funnel_s": warm_funnel_s,
        "hit_rate": cache.stats()["hits"]
        / (cache.stats()["hits"] + cache.stats()["misses"]),
        "speedup": cold_s / warm_s,
    }


# ----------------------------------------------------------------------
# pytest targets and CI guards
# ----------------------------------------------------------------------
def test_exact_source_matches_inlined_funnel():
    settings = _settings()
    factors, quality = make_iid_world(4096, settings["rank"], 6, seed=9)
    snapshot = ShardedCatalog(factors, num_shards=4).snapshot()
    np.testing.assert_array_equal(
        ExactTopK().pools(quality, 16, snapshot),
        snapshot.shard_topk(quality, 16),
    )


def test_quantile_beats_exact_funnel_at_50k():
    """CI guard: the quantile funnel must out-run the exact funnel on a
    batched M=5e4 catalog (best-of so one GC pause cannot flip it)."""
    settings = _settings()
    num_items = 50_000
    assert num_items in settings["funnel_sizes"]
    factors, quality = make_iid_world(
        num_items, settings["rank"], settings["batch"]
    )
    snapshot = ShardedCatalog(
        factors, num_shards=settings["num_shards"]
    ).snapshot()
    exact_s = bench_funnel(
        ExactTopK(), quality, settings["width"], snapshot, settings["repeats"]
    )
    quantile = QuantileFunnel()
    quantile_s = bench_funnel(
        quantile, quality, settings["width"], snapshot, settings["repeats"]
    )
    assert quantile_s < exact_s, (
        f"quantile funnel not faster at M={num_items}: "
        f"{quantile_s * 1e3:.2f} ms vs exact {exact_s * 1e3:.2f} ms"
    )


def test_quantile_recall_at_funnel():
    """CI guard: recall@funnel >= 0.95 (it is 1.0 on non-fallback cells
    by construction; fallback cells are exact too, so this documents
    the invariant end to end)."""
    settings = _settings()
    factors, quality = make_iid_world(
        50_000, settings["rank"], settings["batch"]
    )
    snapshot = ShardedCatalog(
        factors, num_shards=settings["num_shards"]
    ).snapshot()
    recall = recall_at_funnel(
        QuantileFunnel().pools(quality, settings["width"], snapshot),
        ExactTopK().pools(quality, settings["width"], snapshot),
    )
    assert recall >= 0.95, f"quantile recall@funnel {recall:.3f} < 0.95"


def test_ivf_recall_at_funnel():
    """CI guard: IVF recall@funnel >= 0.95 on the structured catalog."""
    settings = _settings()
    factors, quality = make_clustered_world(
        settings["recall_items"], settings["recall_rank"], settings["recall_batch"]
    )
    snapshot = ShardedCatalog(
        factors, num_shards=settings["recall_shards"]
    ).snapshot()
    recall = recall_at_funnel(
        IVFIndex().pools(quality, settings["recall_width"], snapshot),
        ExactTopK().pools(quality, settings["recall_width"], snapshot),
    )
    assert recall >= 0.95, f"IVF recall@funnel {recall:.3f} < 0.95"


def test_funnel_cache_serves_repeats_faster():
    settings = _settings()
    result = run_funnel_cache(settings)
    assert result["hit_rate"] == 0.5  # every request repeated once
    assert result["warm_funnel_s"] <= result["cold_funnel_s"]


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()

    results = {
        "workload": (
            "candidate generation: exact vs quantile-sketch vs IVF funnels "
            "(batched pools, recall@funnel, end-to-end NDCG, funnel cache)"
        ),
        "settings": dict(settings),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print("== batched funnel time (exact vs quantile) ==")
    timing = run_funnel_timing(settings)
    results["funnel_timing"] = {
        size: {key: round(value, 6) for key, value in entry.items()}
        for size, entry in timing.items()
    }
    for size, entry in timing.items():
        print(
            f"M={int(size):>7,}: exact {entry['exact_ms']:7.2f} ms  "
            f"quantile {entry['quantile_ms']:7.2f} ms  "
            f"speedup {entry['speedup']:.2f}x  "
            f"recall {entry['quantile_recall']:.4f}  "
            f"fallback rows/batch {entry['quantile_fallback_rows_per_batch']}"
        )

    print("\n== recall@funnel and end-to-end NDCG (structured catalog) ==")
    quality_results = run_recall_and_ndcg(settings)
    results["recall_and_ndcg"] = {
        key: (
            {inner: round(value, 6) for inner, value in entry.items()}
            if isinstance(entry, dict)
            else round(entry, 6)
        )
        for key, entry in quality_results.items()
    }
    print(f"exact NDCG@{settings['k']}: {quality_results['exact_ndcg']:.4f}")
    for name in ("quantile", "ivf"):
        entry = quality_results[name]
        print(
            f"{name:>9}: recall@funnel {entry['recall_at_funnel']:.4f}  "
            f"NDCG {entry['ndcg']:.4f}  "
            f"delta {entry['ndcg_delta_vs_exact']:+.5f}  "
            f"identical lists {entry['identical_lists'] * 100:.0f}%"
        )

    print("\n== funnel cache (repeat visitors) ==")
    cache_results = run_funnel_cache(settings)
    results["funnel_cache"] = {
        key: round(value, 6) for key, value in cache_results.items()
    }
    print(
        f"cold batch {cache_results['cold_batch_s'] * 1e3:.1f} ms "
        f"(funnel {cache_results['cold_funnel_s'] * 1e3:.1f} ms)  "
        f"warm batch {cache_results['warm_batch_s'] * 1e3:.1f} ms "
        f"(funnel {cache_results['warm_funnel_s'] * 1e3:.1f} ms)  "
        f"hit rate {cache_results['hit_rate'] * 100:.0f}%  "
        f"speedup {cache_results['speedup']:.2f}x"
    )

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
