"""Closed-loop load test of the online serving runtime.

``benchmarks/bench_serving_engine.py`` measures the engine on pre-formed
batches; this benchmark measures what live traffic actually sees.  A
closed-loop load generator — N concurrent clients, each submitting one
request, waiting for its future, then thinking for an exponentially
distributed pause (Poisson-style arrivals per client) — drives a
:class:`repro.serving.ServingRuntime` and records end-to-end latency
(submit → resolved future, so micro-batch queueing delay is *included*)
and sustained throughput.

Three experiments:

* **admission** — micro-batched runtime vs one-at-a-time submission
  (``max_batch=1``: every request is its own engine call, the way a
  naive service would serve) under identical offered load at 32
  concurrent clients.  This is the CI-guarded number: coalescing must
  beat request-at-a-time serving.
* **retrieval admission** — the same closed loop with the funnel-bound
  ceiling attacked from ``repro.retrieval``: micro-batched admission
  over a :class:`~repro.retrieval.quantile.QuantileFunnel` source plus
  a per-user :class:`~repro.retrieval.cache.FunnelCache` (clients are
  repeat visitors), against the same one-at-a-time exact baseline.
  Guarded: must clear the plain micro-batched speedup (>= 2x full
  mode, where the committed baseline records >= 3x).
* **window sweep** — throughput and p50/p95/p99 latency as a function of
  the micro-batch time window ``max_wait`` (the latency budget a request
  pays to buy batching).
* **sharded vs monolithic** — batch serving at catalog scale
  (M=10⁵ full mode): the shard-funnel server against the monolithic
  full-catalog engine on the same request batch.

Entry points:

* ``pytest benchmarks/bench_runtime.py`` — smoke/parity plus the CI
  guard (micro-batched beats one-at-a-time at 32 offered concurrency;
  in full mode by >= 2x).
* ``python benchmarks/bench_runtime.py [--output ...]`` — the JSON
  baseline writer behind ``BENCH_runtime.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.retrieval import FunnelCache, QuantileFunnel
from repro.serving import (
    ItemCatalog,
    KDPPServer,
    Request,
    ServingConfig,
    ServingRuntime,
    ShardedCatalog,
)
from repro.utils.timing import latency_percentiles


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(
            num_items=2048, rank=16, k=5, num_shards=4, funnel_width=16,
            num_users=16, concurrency=32, per_client=3, think_mean=0.0005,
            windows=(0.0, 0.002), batch=16, repeats=2,
        )
    return dict(
        num_items=100_000, rank=32, k=10, num_shards=8, funnel_width=32,
        num_users=64, concurrency=32, per_client=8, think_mean=0.002,
        windows=(0.0, 0.001, 0.002, 0.005, 0.01), batch=32, repeats=2,
    )


def make_world(settings, seed: int = 0):
    """Shared factors + a pool of per-user qualities, Eq. 2 shaped."""
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(settings["num_items"], settings["rank"]))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    quality = np.exp(
        rng.normal(scale=0.5, size=(settings["num_users"], settings["num_items"]))
    )
    return factors, quality


# ----------------------------------------------------------------------
# Closed-loop load generator
# ----------------------------------------------------------------------
def closed_loop(
    runtime: ServingRuntime,
    quality: np.ndarray,
    k: int,
    concurrency: int,
    per_client: int,
    think_mean: float,
) -> dict:
    """Drive ``concurrency`` clients; returns throughput + latency stats.

    Each client is one thread in submit → wait → exponential-think loop;
    latency is submit-to-result, so it prices the micro-batch window in.
    """
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[Exception] = []
    start_gate = threading.Barrier(concurrency + 1)

    def client(c: int) -> None:
        rng = np.random.default_rng(9000 + c)
        start_gate.wait()
        try:
            for j in range(per_client):
                # Stride by the client count so a user's repeat visits
                # spread across the run (client c revisits its users as
                # its session progresses) instead of all landing in the
                # same instant — the repeat-visitor pattern a funnel
                # cache is designed for, and the worst case for it when
                # absent (nothing changes without a cache: every user
                # still appears the same number of times).
                user = (c + concurrency * j) % quality.shape[0]
                request = Request(
                    quality=quality[user],
                    k=k,
                    mode="sample",
                    seed=10_000 * c + j,
                    # The quality row *is* the user (repeat-visitor
                    # traffic); a funnel cache, when attached, keys on
                    # this — servers without one ignore it.
                    user=user,
                )
                begin = time.perf_counter()
                runtime.submit(request).result(120)
                latencies[c].append(time.perf_counter() - begin)
                if think_mean > 0:
                    time.sleep(rng.exponential(think_mean))
        except Exception as error:  # pragma: no cover - surfaced by caller
            errors.append(error)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(concurrency)]
    for thread in threads:
        thread.start()
    start_gate.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if errors:
        raise errors[0]
    flat = [sample for client_latencies in latencies for sample in client_latencies]
    quantiles = latency_percentiles(flat, (50.0, 95.0, 99.0))
    stats = runtime.stats
    return {
        "total_s": elapsed,
        "served": len(flat),
        "requests_per_s": len(flat) / elapsed,
        "p50_ms": quantiles["p50"] * 1e3,
        "p95_ms": quantiles["p95"] * 1e3,
        "p99_ms": quantiles["p99"] * 1e3,
        "batches": stats["batches"],
        "max_batch_size": stats["max_batch_size"],
    }


def run_admission(
    settings,
    max_wait: float,
    max_batch: int,
    source=None,
    funnel_cache=None,
) -> dict:
    """One closed-loop run against a sharded runtime with given windows."""
    factors, quality = make_world(settings)
    catalog = ShardedCatalog(factors, num_shards=settings["num_shards"])
    with ServingRuntime.from_config(
        catalog,
        ServingConfig(
            max_batch=max_batch,
            max_wait=max_wait,
            workers=1,
            funnel_width=settings["funnel_width"],
            source=source,
            funnel_cache=funnel_cache,
        ),
    ) as runtime:
        runtime.serve_now(  # warm shard state outside the timed region
            [Request(quality=quality[0], k=settings["k"], mode="sample", seed=1)]
        )
        result = closed_loop(
            runtime,
            quality,
            settings["k"],
            settings["concurrency"],
            settings["per_client"],
            settings["think_mean"],
        )
        stats = runtime.stats
        # Queue time vs funnel time, now separable: admission wait from
        # the micro-batcher counters, funnel time from the source stats.
        result["admission_wait_total_s"] = stats["admission_wait_total_s"]
        retrieval = stats.get("retrieval")
        if retrieval is not None:
            result["funnel_s"] = retrieval["source"]["time_s"]
            if retrieval["cache"] is not None:
                hits, misses = (
                    retrieval["cache"]["hits"],
                    retrieval["cache"]["misses"],
                )
                result["funnel_cache_hit_rate"] = hits / max(hits + misses, 1)
        return result


def run_admission_comparison(settings) -> dict:
    """Micro-batched vs one-at-a-time submission, identical offered load."""
    one_at_a_time = run_admission(settings, max_wait=0.0, max_batch=1)
    micro = run_admission(
        settings, max_wait=0.002, max_batch=settings["concurrency"]
    )
    return {
        "one_at_a_time": one_at_a_time,
        "micro_batched": micro,
        "speedup": micro["requests_per_s"] / one_at_a_time["requests_per_s"],
    }


def run_retrieval_admission(settings, one_at_a_time: dict | None = None) -> dict:
    """Micro-batched admission with the retrieval subsystem attacking
    the funnel-bound ceiling: QuantileFunnel candidate generation plus a
    per-user FunnelCache (the closed-loop clients are repeat visitors),
    against the same naive one-at-a-time exact baseline."""
    if one_at_a_time is None:
        one_at_a_time = run_admission(settings, max_wait=0.0, max_batch=1)
    micro = run_admission(
        settings,
        max_wait=0.002,
        max_batch=settings["concurrency"],
        source=QuantileFunnel(),
        funnel_cache=FunnelCache(),
    )
    return {
        "one_at_a_time": one_at_a_time,
        "micro_batched_quantile_cached": micro,
        "speedup": micro["requests_per_s"] / one_at_a_time["requests_per_s"],
    }


# ----------------------------------------------------------------------
# Sharded vs monolithic batch serving at catalog scale
# ----------------------------------------------------------------------
def run_sharded_vs_monolithic(settings) -> dict:
    factors, quality = make_world(settings)
    batch, k = settings["batch"], settings["k"]
    requests = [
        Request(
            quality=quality[b % quality.shape[0]], k=k, mode="sample", seed=600 + b
        )
        for b in range(batch)
    ]
    results = {}
    sharded = ShardedCatalog(factors, num_shards=settings["num_shards"])
    with ServingRuntime.from_config(
        sharded,
        ServingConfig(workers=0, funnel_width=settings["funnel_width"]),
    ) as runtime:
        runtime.serve_now(requests[:1])  # warm
        times = []
        for _ in range(settings["repeats"]):
            begin = time.perf_counter()
            runtime.serve_now(requests)
            times.append(time.perf_counter() - begin)
        best = min(times)
        results["sharded"] = {
            "total_s": best,
            "requests_per_s": batch / best,
            "pool_size": int(
                runtime.server.funnel_pool(requests[0]).shape[0]
            ),
        }
    monolithic = KDPPServer(ItemCatalog(factors))
    monolithic.catalog.gram_products()  # warm the table like a service
    times = []
    for _ in range(settings["repeats"]):
        begin = time.perf_counter()
        monolithic.serve(requests)
        times.append(time.perf_counter() - begin)
    best = min(times)
    results["monolithic_full_catalog"] = {
        "total_s": best,
        "requests_per_s": batch / best,
    }
    results["speedup"] = (
        results["sharded"]["requests_per_s"]
        / results["monolithic_full_catalog"]["requests_per_s"]
    )
    return results


# ----------------------------------------------------------------------
# pytest targets and CI guards
# ----------------------------------------------------------------------
def test_closed_loop_serves_every_request():
    settings = _settings()
    result = run_admission(settings, max_wait=0.002, max_batch=16)
    assert result["served"] == settings["concurrency"] * settings["per_client"]
    assert result["max_batch_size"] >= 2  # coalescing actually happened


def test_microbatched_beats_one_at_a_time_at_32_concurrency():
    """CI guard: at >=32 offered concurrency, micro-batched admission
    must out-serve one-request-per-engine-call submission."""
    settings = _settings()
    assert settings["concurrency"] >= 32
    comparison = run_admission_comparison(settings)
    assert comparison["speedup"] > 1.0, (
        f"micro-batching not faster at concurrency "
        f"{settings['concurrency']}: {comparison['speedup']:.2f}x "
        f"({comparison['micro_batched']['requests_per_s']:.0f} vs "
        f"{comparison['one_at_a_time']['requests_per_s']:.0f} req/s)"
    )


def test_retrieval_funnel_beats_one_at_a_time():
    """CI guard: micro-batched admission over QuantileFunnel + FunnelCache
    must out-serve the naive one-at-a-time exact baseline."""
    settings = _settings()
    comparison = run_retrieval_admission(settings)
    micro = comparison["micro_batched_quantile_cached"]
    assert micro["funnel_cache_hit_rate"] > 0  # repeat visitors hit
    assert comparison["speedup"] > 1.0, (
        f"retrieval-funnel runtime not faster: {comparison['speedup']:.2f}x"
    )


@pytest.mark.skipif(
    _smoke(), reason="acceptance-scale guard needs the full workload"
)
def test_retrieval_funnel_well_ahead_at_full_scale():
    """Full-mode guard at M=1e5, C=32.

    The committed baseline (``BENCH_runtime.json``) records >= 3x over
    one-at-a-time for QuantileFunnel + FunnelCache admission; the guard
    asserts >= 2x so runner noise cannot flip a genuinely-faster run —
    while still proving the retrieval subsystem clears the old ~2x
    funnel-bound ceiling.
    """
    comparison = run_retrieval_admission(_settings())
    assert comparison["speedup"] >= 2.0, (
        f"retrieval-funnel runtime below its >=3x baseline at C=32: "
        f"{comparison['speedup']:.2f}x"
    )


@pytest.mark.skipif(
    _smoke(), reason="acceptance-scale guard needs the full workload"
)
def test_microbatched_well_ahead_at_32_concurrency_full_scale():
    """Full-mode guard at M=1e5, C=32.

    The committed baseline (``BENCH_runtime.json``) records ~2x; the
    guard asserts >=1.5x so a GC pause or noisy-neighbor runner cannot
    flip a genuinely-faster run into a failure.
    """
    comparison = run_admission_comparison(_settings())
    assert comparison["speedup"] >= 1.5, (
        f"runtime far below its ~2x baseline at C=32: "
        f"{comparison['speedup']:.2f}x"
    )


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()

    results = {
        "workload": (
            "online serving runtime: closed-loop Poisson-think load over "
            "sharded catalogs with micro-batched admission"
        ),
        "settings": dict(settings),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print("== admission: micro-batched vs one-at-a-time "
          f"(C={settings['concurrency']}) ==")
    comparison = run_admission_comparison(settings)
    results["admission"] = {
        key: (
            {inner: round(value, 6) for inner, value in entry.items()}
            if isinstance(entry, dict)
            else round(entry, 3)
        )
        for key, entry in comparison.items()
    }
    for label in ("one_at_a_time", "micro_batched"):
        entry = comparison[label]
        print(
            f"{label:>14}: {entry['requests_per_s']:>7.0f} req/s  "
            f"p50 {entry['p50_ms']:.1f} / p95 {entry['p95_ms']:.1f} / "
            f"p99 {entry['p99_ms']:.1f} ms  "
            f"(batches {entry['batches']}, max size {entry['max_batch_size']})"
        )
    print(f"{'speedup':>14}: {comparison['speedup']:.2f}x")

    print("\n== retrieval admission: QuantileFunnel + FunnelCache "
          f"(C={settings['concurrency']}) ==")
    retrieval = run_retrieval_admission(
        settings, one_at_a_time=comparison["one_at_a_time"]
    )
    results["retrieval_admission"] = {
        key: (
            {inner: round(value, 6) for inner, value in entry.items()}
            if isinstance(entry, dict)
            else round(entry, 3)
        )
        for key, entry in retrieval.items()
    }
    micro = retrieval["micro_batched_quantile_cached"]
    print(
        f"{'quantile+cache':>14}: {micro['requests_per_s']:>7.0f} req/s  "
        f"p50 {micro['p50_ms']:.1f} / p95 {micro['p95_ms']:.1f} / "
        f"p99 {micro['p99_ms']:.1f} ms  "
        f"funnel {micro['funnel_s'] * 1e3:.1f} ms total, cache hit rate "
        f"{micro['funnel_cache_hit_rate'] * 100:.0f}%"
    )
    print(
        f"{'speedup':>14}: {retrieval['speedup']:.2f}x over one-at-a-time "
        f"(plain micro-batching: {comparison['speedup']:.2f}x)"
    )

    print("\n== micro-batch window sweep ==")
    sweep = {}
    for window in settings["windows"]:
        entry = run_admission(
            settings, max_wait=window, max_batch=settings["concurrency"]
        )
        sweep[f"{window:g}"] = {key: round(value, 6) for key, value in entry.items()}
        print(
            f"max_wait {window * 1e3:>5.1f} ms: {entry['requests_per_s']:>7.0f} "
            f"req/s  p50 {entry['p50_ms']:.1f} / p95 {entry['p95_ms']:.1f} / "
            f"p99 {entry['p99_ms']:.1f} ms  max batch {entry['max_batch_size']}"
        )
    results["window_sweep"] = sweep

    print("\n== sharded funnel vs monolithic full catalog "
          f"(M={settings['num_items']}, B={settings['batch']}) ==")
    versus = run_sharded_vs_monolithic(settings)
    results["sharded_vs_monolithic"] = {
        "sharded": {k: round(v, 6) for k, v in versus["sharded"].items()},
        "monolithic_full_catalog": {
            k: round(v, 6) for k, v in versus["monolithic_full_catalog"].items()
        },
        "speedup": round(versus["speedup"], 2),
    }
    for label in ("sharded", "monolithic_full_catalog"):
        entry = versus[label]
        extra = (
            f"  (merged pool {entry['pool_size']} items)"
            if "pool_size" in entry
            else ""
        )
        print(
            f"{label:>24}: {entry['requests_per_s']:>7.0f} req/s  "
            f"batch {entry['total_s'] * 1e3:.1f} ms{extra}"
        )
    print(f"{'speedup':>24}: {versus['speedup']:.2f}x")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
