"""Catalog-scale k-DPP serving latency: dense O(M³) vs low-rank dual O(M r²).

The serving path for one user is: build the personalized kernel's k-DPP
(spectrum + normalizer), draw an exact sample (or run greedy MAP) over
the catalog.  The dense path eigendecomposes the M×M kernel; the dual
path (``KDPP.from_factors`` / ``greedy_map`` on a ``LowRankKernel``)
works off the r×r dual kernel of the rank-32 factors the paper's kernels
have by construction.

Two entry points:

* ``pytest benchmarks/bench_serving.py`` — pytest-benchmark timings of
  the two build+sample paths, plus a guard asserting the dual path is
  strictly faster than dense (smoke mode) / ≥50x faster (full mode).
* ``python benchmarks/bench_serving.py [--output BENCH_serving.json]`` —
  times build+sample+MAP at M ∈ {1k, 10k, 50k} (dense only up to
  ``--max-dense``, default 10k — the 50k dense eigendecomposition would
  take hours) and writes the JSON baseline committed at the repo root.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.dpp import KDPP, LowRankKernel, greedy_map


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def make_factors(num_items: int, rank: int, seed: int = 0) -> np.ndarray:
    """Eq. 2 factors ``B = Diag(q) V``: unit-row diversity factors scaled
    by exp-quality scores, the shape a trained LkP model serves with."""
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(num_items, rank))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    quality = np.exp(rng.normal(scale=0.5, size=num_items))
    return quality[:, None] * diversity


def _best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_dense(factors: np.ndarray, k: int, map_k: int, repeats: int) -> dict:
    """Dense serving path: materialize L = B Bᵀ, eigendecompose, sample, MAP."""
    build = lambda: KDPP(factors @ factors.T, k, validate=False)  # noqa: E731
    build_s = _best_of(build, repeats)
    dpp = build()
    sample_s = _best_of(lambda: dpp.sample(np.random.default_rng(1)), repeats)
    map_s = _best_of(lambda: greedy_map(dpp.kernel, map_k), repeats)
    return {"build_s": build_s, "sample_s": sample_s, "map_s": map_s}


def bench_dual(factors: np.ndarray, k: int, map_k: int, repeats: int) -> dict:
    """Dual serving path: r×r dual eigendecomposition, lifted sampling, factor MAP."""
    build = lambda: KDPP.from_factors(factors, k)  # noqa: E731
    build_s = _best_of(build, repeats)
    dpp = build()
    sample_s = _best_of(lambda: dpp.sample(np.random.default_rng(1)), repeats)
    map_s = _best_of(lambda: greedy_map(LowRankKernel(factors), map_k), repeats)
    return {"build_s": build_s, "sample_s": sample_s, "map_s": map_s}


def _settings():
    if _smoke():
        return dict(sizes=(256,), rank=16, k=5, map_k=5, max_dense=256)
    return dict(sizes=(1_000, 10_000, 50_000), rank=32, k=10, map_k=10, max_dense=10_000)


# ----------------------------------------------------------------------
# pytest-benchmark targets
# ----------------------------------------------------------------------
def _pytest_workload():
    if _smoke():
        return make_factors(256, 16), 5, 5
    return make_factors(2_000, 32), 10, 10


def test_bench_serving_dense_build_sample(benchmark):
    factors, k, _ = _pytest_workload()
    kernel = factors @ factors.T

    def dense_once():
        return KDPP(kernel, k, validate=False).sample(np.random.default_rng(1))

    assert len(benchmark(dense_once)) == k


def test_bench_serving_dual_build_sample(benchmark):
    factors, k, _ = _pytest_workload()

    def dual_once():
        return KDPP.from_factors(factors, k).sample(np.random.default_rng(1))

    assert len(benchmark(dual_once)) == k


def test_dual_is_faster():
    """CI guard: the dual path must beat dense on build+sample.

    Smoke mode (reduced size, shared runners) only requires *strictly*
    faster, best-of-three so one GC pause cannot flip the verdict; full
    mode holds the dual path to the ≥50x the baseline claims — at
    M = 2000 the true gap is orders of magnitude, so the margin is wide.
    """
    factors, k, map_k = _pytest_workload()
    repeats = 3
    dense = bench_dense(factors, k, map_k, repeats)
    dual = bench_dual(factors, k, map_k, repeats)
    dense_total = dense["build_s"] + dense["sample_s"]
    dual_total = dual["build_s"] + dual["sample_s"]
    if _smoke():
        assert dual_total < dense_total, (
            f"dual path not faster: {dual_total:.4f}s vs dense {dense_total:.4f}s"
        )
        return
    assert dual_total * 50 < dense_total, (
        f"dual path below 50x: {dual_total:.4f}s vs dense {dense_total:.4f}s"
    )


def test_paths_agree():
    """The timed paths must be computing the same distribution."""
    factors, k, map_k = _pytest_workload()
    dense = KDPP(factors @ factors.T, k, validate=False)
    dual = KDPP.from_factors(factors, k)
    subset = list(range(k))
    assert np.isclose(
        dense.log_subset_probability(subset),
        dual.log_subset_probability(subset),
        rtol=1e-9,
        atol=1e-9,
    )
    assert greedy_map(dense.kernel, map_k) == greedy_map(LowRankKernel(factors), map_k)


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-dense",
        type=int,
        default=None,
        help="largest M to run the dense path at (default: 10k full, all sizes smoke)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    settings = _settings()
    max_dense = args.max_dense if args.max_dense is not None else settings["max_dense"]
    rank, k, map_k = settings["rank"], settings["k"], settings["map_k"]

    results = {
        "workload": "per-user k-DPP serving: build + exact sample + greedy MAP",
        "settings": {
            "rank": rank,
            "k": k,
            "map_k": map_k,
            "max_dense": max_dense,
            "repeats": args.repeats,
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "sizes": {},
    }
    header = (
        f"{'M':>7} {'path':>6} {'build':>11} {'sample':>11} {'map':>11} "
        f"{'build+sample speedup':>21}"
    )
    print(header)
    print("-" * len(header))
    for num_items in settings["sizes"]:
        factors = make_factors(num_items, rank)
        # The 10k dense eigendecomposition runs minutes on one core; a
        # single repeat is signal enough at that scale.
        dense_repeats = args.repeats if num_items <= 2_000 else 1
        dual = bench_dual(factors, k, map_k, args.repeats)
        entry = {"dual": {key: round(value, 6) for key, value in dual.items()}}
        if num_items <= max_dense:
            dense = bench_dense(factors, k, map_k, dense_repeats)
            entry["dense"] = {key: round(value, 6) for key, value in dense.items()}
            build_sample = (dense["build_s"] + dense["sample_s"]) / (
                dual["build_s"] + dual["sample_s"]
            )
            entry["speedup_build_sample"] = round(build_sample, 2)
            entry["speedup_map"] = round(dense["map_s"] / dual["map_s"], 2)
            print(
                f"{num_items:>7} {'dense':>6} {dense['build_s']:>10.4f}s "
                f"{dense['sample_s']:>10.4f}s {dense['map_s']:>10.4f}s"
            )
            print(
                f"{num_items:>7} {'dual':>6} {dual['build_s']:>10.4f}s "
                f"{dual['sample_s']:>10.4f}s {dual['map_s']:>10.4f}s "
                f"{build_sample:>20.1f}x"
            )
        else:
            entry["dense"] = None
            print(
                f"{num_items:>7} {'dual':>6} {dual['build_s']:>10.4f}s "
                f"{dual['sample_s']:>10.4f}s {dual['map_s']:>10.4f}s "
                f"{'(dense skipped)':>21}"
            )
        results["sizes"][str(num_items)] = entry
    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
