"""Throughput of the batched k-DPP serving engine vs the PR 2 loop.

The PR 2 serving path handles one request at a time: rebuild the user's
low-rank kernel, eigendecompose its r×r dual, sample / rerank.  The
engine (`repro.serving.KDPPServer`) serves a whole request batch off one
shared catalog: one batched dual build, one stacked ``eigh``, batched
normalizers, vectorized sampling and MAP.  This benchmark measures both
paths on identical request batches and reports requests/sec plus
p50/p99 latency (per-request for the sequential loop, per-batch for the
engine — batched requests complete together).

Two entry points:

* ``pytest benchmarks/bench_serving_engine.py`` — parity check plus CI
  guards: batched serving must beat the sequential loop at B>=16 (smoke
  and full), and hold >=5x requests/sec on the sample workload at B=64,
  M=10k, r=32 (full mode only).
* ``python benchmarks/bench_serving_engine.py [--output ...]`` — the
  JSON baseline writer behind ``BENCH_serving_engine.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload to import-and-run-path coverage.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import pytest

from repro.serving import ItemCatalog, KDPPServer, Request
from repro.utils.timing import latency_percentiles

MODES = ("sample", "map", "topk-rerank")


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(num_items=512, rank=16, k=5, batch_sizes=(8, 16), repeats=3)
    return dict(num_items=10_000, rank=32, k=10, batch_sizes=(16, 64), repeats=3)


def make_world(num_items: int, rank: int, batch: int, seed: int = 0):
    """Shared factors + a batch of per-user qualities, Eq. 2 shaped."""
    rng = np.random.default_rng(seed)
    diversity = rng.normal(size=(num_items, rank))
    diversity /= np.linalg.norm(diversity, axis=1, keepdims=True)
    quality = np.exp(rng.normal(scale=0.5, size=(batch, num_items)))
    return diversity, quality


def make_requests(quality: np.ndarray, k: int, mode: str) -> list[Request]:
    return [
        Request(quality=quality[b], k=k, mode=mode, seed=1000 + b)
        for b in range(quality.shape[0])
    ]


def bench_sequential(server: KDPPServer, requests, repeats: int) -> dict:
    """Per-request latencies of the PR 2 one-at-a-time loop."""
    best_total, best_latencies = np.inf, None
    for _ in range(repeats):
        latencies = []
        start_total = time.perf_counter()
        for request in requests:
            start = time.perf_counter()
            server.serve_sequential([request])
            latencies.append(time.perf_counter() - start)
        total = time.perf_counter() - start_total
        if total < best_total:
            best_total, best_latencies = total, latencies
    quantiles = latency_percentiles(best_latencies)
    return {
        "total_s": best_total,
        "requests_per_s": len(requests) / best_total,
        "p50_ms": quantiles["p50"] * 1e3,
        "p99_ms": quantiles["p99"] * 1e3,
    }


def bench_batched(server: KDPPServer, requests, repeats: int) -> dict:
    """Whole-batch latencies of the engine (requests complete together)."""
    latencies = []
    for _ in range(max(repeats, 2)):
        start = time.perf_counter()
        server.serve(requests)
        latencies.append(time.perf_counter() - start)
    best = min(latencies)
    quantiles = latency_percentiles(latencies)
    return {
        "total_s": best,
        "requests_per_s": len(requests) / best,
        "p50_ms": quantiles["p50"] * 1e3,
        "p99_ms": quantiles["p99"] * 1e3,
    }


def run_workload(mode: str, batch: int, settings=None) -> dict:
    settings = settings or _settings()
    factors, quality = make_world(settings["num_items"], settings["rank"], batch)
    catalog = ItemCatalog(factors)
    server = KDPPServer(catalog)
    catalog.gram_products()  # warm the per-version state once, like a service
    requests = make_requests(quality, settings["k"], mode)
    sequential = bench_sequential(server, requests, settings["repeats"])
    batched = bench_batched(server, requests, settings["repeats"])
    return {
        "sequential": sequential,
        "batched": batched,
        "speedup": batched["requests_per_s"] / sequential["requests_per_s"],
    }


# ----------------------------------------------------------------------
# pytest targets and CI guards
# ----------------------------------------------------------------------
def test_engine_matches_sequential_loop():
    """The two timed paths must return identical recommendations."""
    settings = _settings()
    factors, quality = make_world(settings["num_items"], settings["rank"], 8)
    server = KDPPServer(ItemCatalog(factors))
    for mode in MODES:
        requests = make_requests(quality, settings["k"], mode)
        batched = server.serve(requests)
        sequential = server.serve_sequential(requests)
        for left, right in zip(batched, sequential):
            assert left.items == right.items, f"{mode} items diverged"
            assert np.isclose(
                left.log_probability, right.log_probability, rtol=1e-8, atol=1e-8
            )


def test_bench_engine_batched(benchmark):
    settings = _settings()
    batch = settings["batch_sizes"][-1]
    factors, quality = make_world(settings["num_items"], settings["rank"], batch)
    catalog = ItemCatalog(factors)
    server = KDPPServer(catalog)
    catalog.gram_products()
    requests = make_requests(quality, settings["k"], "sample")
    assert len(benchmark(lambda: server.serve(requests))) == batch


def test_batched_beats_sequential_at_b16():
    """CI guard: batched serving must beat the per-request loop at B>=16.

    Best-of-three on both sides so one GC pause on a shared runner
    cannot flip the verdict.
    """
    result = run_workload("sample", 16)
    assert result["speedup"] > 1.0, (
        f"batched serving not faster at B=16: {result['speedup']:.2f}x "
        f"(batched {result['batched']['total_s']:.4f}s vs sequential "
        f"{result['sequential']['total_s']:.4f}s)"
    )


@pytest.mark.skipif(
    _smoke(), reason="acceptance-scale guard needs the full workload"
)
def test_batched_5x_at_b64():
    """Full-mode guard: >=5x requests/sec at B=64, M=10k, r=32."""
    result = run_workload("sample", 64)
    assert result["speedup"] >= 5.0, (
        f"engine below 5x at B=64: {result['speedup']:.2f}x"
    )


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    settings = _settings()
    if args.repeats is not None:
        if args.repeats < 1:
            parser.error(f"--repeats must be >= 1, got {args.repeats}")
        settings["repeats"] = args.repeats

    results = {
        "workload": (
            "multi-user k-DPP serving: batched engine vs the PR 2 "
            "one-request-at-a-time loop"
        ),
        "settings": {key: value for key, value in settings.items()},
        "python": platform.python_version(),
        "numpy": np.__version__,
        # Before/after record for the batched greedy-MAP Cholesky
        # rewrite: the per-round correction used to reread the whole
        # (B, k, M) coefficient history; it is now a fused O(B·k·r)
        # Gram–Schmidt step in factor space (see
        # repro.dpp.map_inference._batched_greedy_rounds).  The "before"
        # numbers are the committed PR 3 baseline at B=64, M=10k, r=32.
        "map_cholesky_fusion": {
            "before": {"map_requests_per_s": 572.65, "map_speedup_b64": 2.35},
            "after": {"map_requests_per_s": 1038.53, "map_speedup_b64": 4.44},
        },
        # Second MAP rewrite: the residual per-round python bookkeeping
        # (mask-last-pick loop + per-request append) replaced by one
        # fancy-index write + one batched masked argmax per round (see
        # _batched_greedy_rounds), selections bit-identical.  Measured
        # effect at M=10k..1e5, B=64: within run noise — the remaining
        # per-round cost is the O(B·M) projection/update/argmax passes
        # themselves (BLAS- and memory-bound), no longer python-bound;
        # the O(B) loop removal matters as B grows, not M.  "before" is
        # the committed PR 4 baseline at B=64, M=10k, r=32.
        "map_masked_argmax": {
            "before": {"map_requests_per_s": 1038.53, "map_speedup_b64": 4.44},
            "after": "see batches['64']['map'] below (parity-identical)",
        },
        "batches": {},
    }
    header = (
        f"{'B':>4} {'mode':>12} {'seq req/s':>10} {'bat req/s':>10} "
        f"{'seq p50/p99 ms':>16} {'batch ms':>9} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for batch in settings["batch_sizes"]:
        per_mode = {}
        for mode in MODES:
            entry = run_workload(mode, batch, settings)
            per_mode[mode] = {
                "sequential": {
                    key: round(value, 6) for key, value in entry["sequential"].items()
                },
                "batched": {
                    key: round(value, 6) for key, value in entry["batched"].items()
                },
                "speedup": round(entry["speedup"], 2),
            }
            sequential, batched = entry["sequential"], entry["batched"]
            print(
                f"{batch:>4} {mode:>12} {sequential['requests_per_s']:>10.0f} "
                f"{batched['requests_per_s']:>10.0f} "
                f"{sequential['p50_ms']:>7.2f}/{sequential['p99_ms']:<8.2f} "
                f"{batched['p50_ms']:>9.2f} {entry['speedup']:>7.2f}x"
            )
        results["batches"][str(batch)] = per_mode
    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
