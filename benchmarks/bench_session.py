"""Session-aware serving: multi-page throughput and the alpha trade-off.

PR 6 grew the request model into sessions (per-request ``alpha``
diversity strength, cross-page ``history`` conditioning, constrained
MAP).  This benchmark prices the two headline features:

* **multi-page session throughput** — a cohort of users paging through
  a sharded catalog, session-conditioned serving (``history`` deflates
  the kernel, O(r²·h) per request) against the stateless baseline that
  merely excludes shown items.  Reported per page and as requests/s,
  plus the *cross-page similarity* each strategy leaves behind (mean
  |cos| between consecutive pages' factor rows — the quantity
  conditioning exists to push down);
* **alpha sweep** — greedy-MAP slates across ``alpha``, scoring
  quality-gain NDCG@k against intra-list similarity (mean pairwise
  |cos| inside a slate).  Raising ``alpha`` flattens quality, so
  intra-list similarity must not increase — the CI-guarded invariant.

Entry points:

* ``pytest benchmarks/bench_session.py`` — guards: the alpha sweep's
  intra-list similarity is non-increasing from the lowest to the
  highest alpha, sessions never repeat an item across pages, and every
  page fills its slate.
* ``python benchmarks/bench_session.py [--output ...]`` — the JSON
  baseline writer behind ``BENCH_session.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workloads.
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ is None and __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.serving import (
    Request,
    ServingConfig,
    Session,
    ShardedCatalog,
    ShardedKDPPServer,
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _settings():
    if _smoke():
        return dict(
            num_items=8_000, rank=16, users=8, pages=3, k=5, window=6,
            funnel_width=24, num_shards=4, repeats=2,
            alphas=(0.5, 1.0, 2.0, 4.0), alpha_users=8,
        )
    return dict(
        num_items=40_000, rank=32, users=24, pages=4, k=8, window=10,
        funnel_width=32, num_shards=8, repeats=3,
        alphas=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0), alpha_users=24,
    )


def make_clustered_world(num_items, rank, users, clusters=12, seed=1):
    """Clustered factors with quality following the factor geometry —
    the trained-model regime (same construction as bench_retrieval)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, rank))
    assignment = rng.integers(0, clusters, size=num_items)
    factors = centers[assignment] + 0.35 * rng.normal(size=(num_items, rank))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    user_vectors = centers[rng.integers(0, clusters, size=users)]
    user_vectors += 0.2 * rng.normal(size=(users, rank))
    quality = np.exp(2.0 * (factors @ user_vectors.T).T)
    return factors, quality


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def intra_list_similarity(items, factors) -> float:
    """Mean pairwise |cos| of the slate's (unit-norm) factor rows."""
    rows = factors[np.asarray(items, dtype=np.int64)]
    if rows.shape[0] < 2:
        return 0.0
    sims = np.abs(rows @ rows.T)
    n = rows.shape[0]
    return float((sims.sum() - n) / (n * (n - 1)))


def cross_page_similarity(previous, current, factors) -> float:
    """Mean |cos| between one page's items and the previous page's."""
    if not previous or not current:
        return 0.0
    a = factors[np.asarray(previous, dtype=np.int64)]
    b = factors[np.asarray(current, dtype=np.int64)]
    return float(np.abs(a @ b.T).mean())


def quality_ndcg(items, quality_row, k) -> float:
    """Quality-gain NDCG@k of a served slate (see bench_retrieval)."""
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    gains = quality_row[np.asarray(items[:k], dtype=np.int64)]
    ideal = np.sort(quality_row)[::-1][:k]
    return float(
        (gains * discounts[: gains.shape[0]]).sum() / (ideal * discounts).sum()
    )


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def serve_session_pages(server, quality, settings, conditioned: bool):
    """One cohort paging ``pages`` times; returns per-user page lists.

    ``conditioned=True`` is session serving (history deflates the
    kernel, older pages fall back to exclusion via the window);
    ``conditioned=False`` is the stateless baseline — shown items are
    excluded so pages never repeat, but the kernel never learns what
    the user already saw.
    """
    users = quality.shape[0]
    sessions = [
        Session(user=u, window=settings["window"]) for u in range(users)
    ]
    pages: list[list[list[int]]] = [[] for _ in range(users)]
    page_seconds = []
    for _ in range(settings["pages"]):
        if conditioned:
            requests = [
                sessions[u].request(quality[u], k=settings["k"], mode="map")
                for u in range(users)
            ]
        else:
            requests = [
                Request(
                    quality=quality[u],
                    k=settings["k"],
                    mode="map",
                    exclude=(
                        np.asarray(sessions[u].shown, dtype=np.int64)
                        if sessions[u].shown
                        else None
                    ),
                    user=u,
                )
                for u in range(users)
            ]
        start = time.perf_counter()
        responses = server.serve(requests)
        page_seconds.append(time.perf_counter() - start)
        for u, response in enumerate(responses):
            pages[u].append(list(response.items))
            sessions[u].record(response)
    return pages, page_seconds


def run_session_throughput(settings) -> dict:
    factors, quality = make_clustered_world(
        settings["num_items"], settings["rank"], settings["users"]
    )
    catalog = ShardedCatalog(factors, num_shards=settings["num_shards"])
    server = ShardedKDPPServer(
        catalog, config=ServingConfig(funnel_width=settings["funnel_width"])
    )
    results = {}
    for label, conditioned in (("session", True), ("stateless", False)):
        best_pages, best_seconds = None, None
        for _ in range(settings["repeats"]):
            pages, seconds = serve_session_pages(
                server, quality, settings, conditioned
            )
            if best_seconds is None or sum(seconds) < sum(best_seconds):
                best_pages, best_seconds = pages, seconds
        total_s = sum(best_seconds)
        requests_served = settings["users"] * settings["pages"]
        cross = [
            cross_page_similarity(user_pages[p - 1], user_pages[p], factors)
            for user_pages in best_pages
            for p in range(1, len(user_pages))
        ]
        intra = [
            intra_list_similarity(page, factors)
            for user_pages in best_pages
            for page in user_pages
        ]
        results[label] = {
            "total_s": total_s,
            "page_ms": [s * 1e3 for s in best_seconds],
            "requests_per_s": requests_served / total_s,
            "cross_page_similarity": float(np.mean(cross)),
            "intra_list_similarity": float(np.mean(intra)),
        }
    results["conditioning_overhead"] = (
        results["session"]["total_s"] / results["stateless"]["total_s"]
    )
    return results


def run_alpha_sweep(settings) -> dict:
    factors, quality = make_clustered_world(
        settings["num_items"], settings["rank"], settings["alpha_users"], seed=3
    )
    catalog = ShardedCatalog(factors, num_shards=settings["num_shards"])
    server = ShardedKDPPServer(
        catalog, config=ServingConfig(funnel_width=settings["funnel_width"])
    )
    k = settings["k"]
    sweep = {}
    for alpha in settings["alphas"]:
        responses = server.serve(
            [
                Request(quality=quality[u], k=k, mode="map", alpha=alpha)
                for u in range(quality.shape[0])
            ]
        )
        sweep[str(alpha)] = {
            "ndcg": float(
                np.mean(
                    [
                        quality_ndcg(r.items, quality[u], k)
                        for u, r in enumerate(responses)
                    ]
                )
            ),
            "intra_list_similarity": float(
                np.mean(
                    [intra_list_similarity(r.items, factors) for r in responses]
                )
            ),
        }
    return sweep


# ----------------------------------------------------------------------
# pytest targets and CI guards
# ----------------------------------------------------------------------
def test_alpha_raises_diversity_monotonically():
    """CI guard: higher alpha ⇒ intra-list similarity non-increasing
    (lowest vs highest alpha, with float slack)."""
    settings = _settings()
    sweep = run_alpha_sweep(settings)
    alphas = sorted(float(a) for a in sweep)
    low, high = sweep[str(alphas[0])], sweep[str(alphas[-1])]
    assert (
        high["intra_list_similarity"]
        <= low["intra_list_similarity"] + 1e-9
    ), (
        f"alpha={alphas[-1]} slates are less diverse than alpha={alphas[0]}: "
        f"ILS {high['intra_list_similarity']:.4f} vs "
        f"{low['intra_list_similarity']:.4f}"
    )
    # ... and sharpening quality must not cost NDCG.
    assert low["ndcg"] >= high["ndcg"] - 1e-9


def test_session_pages_fill_and_never_repeat():
    settings = _settings()
    factors, quality = make_clustered_world(
        settings["num_items"], settings["rank"], settings["users"], seed=5
    )
    catalog = ShardedCatalog(factors, num_shards=settings["num_shards"])
    server = ShardedKDPPServer(
        catalog, config=ServingConfig(funnel_width=settings["funnel_width"])
    )
    pages, _ = serve_session_pages(server, quality, settings, conditioned=True)
    for user_pages in pages:
        flat = [item for page in user_pages for item in page]
        assert len(flat) == len(set(flat))  # no cross-page repeats
        for page in user_pages:
            assert len(page) == settings["k"]  # window keeps rank alive


# ----------------------------------------------------------------------
# Standalone baseline writer
# ----------------------------------------------------------------------
def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON baseline here (default: print only)",
    )
    args = parser.parse_args(argv)
    settings = _settings()

    results = {
        "workload": (
            "session-aware serving: multi-page session throughput "
            "(conditioned vs stateless paging) and the alpha "
            "NDCG/intra-list-similarity trade-off"
        ),
        "settings": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in settings.items()
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

    print("== multi-page session throughput ==")
    throughput = run_session_throughput(settings)
    results["session_throughput"] = {
        label: (
            {
                key: (
                    [round(v, 4) for v in value]
                    if isinstance(value, list)
                    else round(value, 6)
                )
                for key, value in entry.items()
            }
            if isinstance(entry, dict)
            else round(entry, 4)
        )
        for label, entry in throughput.items()
    }
    for label in ("session", "stateless"):
        entry = throughput[label]
        print(
            f"{label:>10}: {entry['requests_per_s']:8.1f} req/s  "
            f"cross-page |cos| {entry['cross_page_similarity']:.4f}  "
            f"intra-list |cos| {entry['intra_list_similarity']:.4f}"
        )
    print(
        f"conditioning overhead: "
        f"{throughput['conditioning_overhead']:.2f}x wall time"
    )

    print("\n== alpha sweep (greedy MAP) ==")
    sweep = run_alpha_sweep(settings)
    results["alpha_sweep"] = {
        alpha: {key: round(value, 6) for key, value in entry.items()}
        for alpha, entry in sweep.items()
    }
    for alpha, entry in sweep.items():
        print(
            f"alpha={float(alpha):5.2f}: NDCG@{settings['k']} "
            f"{entry['ndcg']:.4f}  intra-list |cos| "
            f"{entry['intra_list_similarity']:.4f}"
        )

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    return results


if __name__ == "__main__":
    main()
