"""EXP-T1 — Table I: dataset statistics of the three synthetic stand-ins."""

from bench_helpers import bench_scale

from repro.experiments import prepare_dataset, table1_dataset_statistics
from repro.experiments.common import SCALES


def test_table1_dataset_statistics(benchmark):
    report = benchmark.pedantic(
        lambda: table1_dataset_statistics(bench_scale()), rounds=1, iterations=1
    )
    print("\n" + report.text)
    assert "beauty-like" in report.text

    # The paper's two analysis axes must hold at bench scale too.
    scale = SCALES[bench_scale()]
    beauty = prepare_dataset("beauty-like", scale).dataset
    ml = prepare_dataset("ml-like", scale).dataset
    anime = prepare_dataset("anime-like", scale).dataset
    assert beauty.num_categories > anime.num_categories > ml.num_categories
    assert beauty.density < anime.density < ml.density
