"""EXP-T2 — Table II: all LkP variants vs baselines on the GCN backbone.

The paper's headline comparison: six LkP variants (PR/PS/NPR/NPS/PSE/NPSE)
against BPR, BCE, SetRank and Set2SetRank, per dataset.  The bench runs
the beauty-like dataset by default (the paper's strongest case, being the
sparsest); set REPRO_BENCH_DATASETS to run all three.
"""

from bench_helpers import bench_datasets, bench_scale

from repro.experiments import table2_gcn_comparison


def test_table2_gcn_comparison(benchmark):
    report = benchmark.pedantic(
        lambda: table2_gcn_comparison(bench_scale(), datasets=bench_datasets()),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    # Soft shape check: every method produced the full metric grid, and
    # the best LkP F@10 should be competitive with (>= 90% of) the best
    # baseline F@10 — the paper's central claim, with slack for the
    # reduced bench scale.
    lkp = [c for c in report.cells if c.method.startswith("LkP")]
    baselines = [c for c in report.cells if not c.method.startswith("LkP")]
    assert len(lkp) == 6 * len(bench_datasets())
    assert len(baselines) == 4 * len(bench_datasets())
    best_lkp = max(c.metrics["F@10"] for c in lkp)
    best_baseline = max(c.metrics["F@10"] for c in baselines)
    assert best_lkp >= 0.9 * best_baseline
