"""EXP-T3 — Table III: LkP-PS / LkP-NPS vs ranking baselines on basic MF."""

from bench_helpers import bench_datasets, bench_scale

from repro.experiments import table3_mf_comparison


def test_table3_mf_comparison(benchmark):
    report = benchmark.pedantic(
        lambda: table3_mf_comparison(bench_scale(), datasets=bench_datasets()),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    methods = {cell.method for cell in report.cells}
    assert {"LkP-PS", "LkP-NPS", "BPR", "SetRank", "S2SRank"} <= methods
    lkp_best = max(
        c.metrics["F@10"] for c in report.cells if c.method.startswith("LkP")
    )
    baseline_best = max(
        c.metrics["F@10"] for c in report.cells if not c.method.startswith("LkP")
    )
    assert lkp_best >= 0.85 * baseline_best
