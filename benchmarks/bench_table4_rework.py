"""EXP-T4 — Table IV: GCMC / NeuMF reworked with LkP vs their native losses."""

from bench_helpers import bench_datasets, bench_scale

from repro.experiments import table4_reworked_models


def test_table4_reworked_models(benchmark):
    report = benchmark.pedantic(
        lambda: table4_reworked_models(bench_scale(), datasets=bench_datasets()),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.text)
    # Per backbone: one native cell + two reworks per dataset.
    assert len(report.cells) == 6 * len(bench_datasets())
    # Shape check: for each backbone, the better rework should not lose
    # badly to the native loss on the trade-off metric (paper: it wins).
    for backbone in ("GCMC", "NEUMF"):
        native = [c for c in report.cells if c.method == backbone]
        reworked = [c for c in report.cells if c.method.startswith(f"{backbone}-")]
        assert native and reworked
        best_rework = max(c.metrics["F@10"] for c in reworked)
        native_value = max(c.metrics["F@10"] for c in native)
        assert best_rework >= 0.85 * native_value
