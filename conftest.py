"""Pytest bootstrap: make ``src/`` importable without installation.

The offline execution environment lacks the ``wheel`` package, so
``pip install -e .`` cannot complete PEP 517 metadata generation (use
``python setup.py develop`` instead).  This shim keeps the test and
benchmark suites runnable either way.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
