"""Generating diversified recommendation lists three different ways.

The paper's introduction motivates *diversity-aware* recommendation: users
tire of lists filled with near-duplicates of what they already consumed.
This example contrasts, for one user of a sparse, category-rich
(Amazon-Beauty-like) catalog:

1. **Top-N by score** — a BPR-trained model's raw ranking;
2. **Greedy DPP MAP re-ranking** (Chen et al. 2018) — the post-processing
   approach of prior diversified recommenders: build the quality x
   diversity kernel over candidates, greedily maximize log det;
3. **LkP-trained model's Top-N** — diversity baked into *training*, the
   paper's contribution: no re-ranking step at all.

Run:  python examples/diverse_recommendations.py
"""

import numpy as np

from repro.data import beauty_like, mine_diversity_pairs
from repro.dpp import DiversityKernelConfig, DiversityKernelLearner
from repro.losses import BPRCriterion, make_lkp_variant
from repro.models import MFRecommender
from repro.serving import ItemCatalog, KDPPServer, RecommenderBridge
from repro.train import TrainConfig, Trainer
from repro.utils.topk import top_k_indices


def describe(dataset, items) -> str:
    labels = [
        "v{}({})".format(i, ",".join(f"c{c}" for c in sorted(dataset.item_categories[int(i)])))
        for i in items
    ]
    breadth = len(dataset.categories_of(np.asarray(items)))
    return f"{' '.join(labels)}   [{breadth} categories]"


def main() -> None:
    dataset = beauty_like(scale=0.5).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    print(f"dataset: {dataset.stats().as_row()}\n")

    pairs = mine_diversity_pairs(
        split, set_size=5, pairs_per_user=2, mode="monotonous",
        rng=np.random.default_rng(1),
    )
    learner = DiversityKernelLearner(
        dataset.num_items, DiversityKernelConfig(rank=16, epochs=15, lr=0.03)
    )
    learner.fit(pairs)
    # Serving-scale idiom: keep the diversity kernel in factored form
    # (K = V Vᵀ) — training, MAP and analysis below only ever gather
    # r-dimensional factor rows, never an M×M matrix.
    factors = learner.factors_normalized()

    # Train the BPR model (for 1 and 2) and the LkP model (for 3).
    bpr_model = MFRecommender(dataset.num_users, dataset.num_items, dim=16, rng=0)
    Trainer(
        bpr_model, BPRCriterion(), split,
        TrainConfig(epochs=60, lr=0.02, batch_size=64, patience=10, seed=2),
    ).fit()

    lkp_model = MFRecommender(dataset.num_users, dataset.num_items, dim=16, rng=0)
    Trainer(
        lkp_model,
        make_lkp_variant("NPS", diversity_factors=factors, k=5, n=5),
        split,
        TrainConfig(epochs=80, lr=0.05, batch_size=32, patience=10, seed=2),
    ).fit()

    # Study the user with the most held-out items (most signal to show).
    user = int(np.argmax([items.shape[0] for items in split.test]))
    known = np.fromiter(split.known_set(user), dtype=np.int64)

    # 1. Raw Top-5 by BPR score.
    bpr_scores = bpr_model.full_scores()[user]
    top_by_score = top_k_indices(bpr_scores, 5, exclude=known)
    print("1. BPR top-5 by raw score:")
    print("   " + describe(dataset, top_by_score))

    # 2. Greedy MAP re-ranking of the BPR model's kernel — served by the
    # engine instead of a hand-built per-user KDPP: the catalog snapshots
    # V once, the bridge maps BPR scores to Eq. 2 qualities (the
    # temperature plays Chen et al.'s relevance-diversity trade-off
    # role) and excludes each user's known items, and one KDPPServer
    # batch would serve every user of the catalog at once.
    catalog = ItemCatalog(factors)
    known_items = [
        np.fromiter(split.known_set(u), dtype=np.int64)
        for u in range(dataset.num_users)
    ]
    bridge = RecommenderBridge(
        bpr_model,
        catalog,
        server=KDPPServer(catalog),
        known_items=known_items,
        temperature=4.0,
    )
    response = bridge.recommend([user], k=5, mode="map")[0]
    map_items = response.items
    print("2. BPR + greedy DPP MAP re-ranking (serving engine):")
    print("   " + describe(dataset, map_items))

    # 3. LkP-trained model's raw Top-5 (diversity learned, not re-ranked).
    lkp_top = top_k_indices(lkp_model.full_scores()[user], 5, exclude=known)
    print("3. LkP-NPS top-5 by raw score (no re-ranking):")
    print("   " + describe(dataset, lkp_top))

    test_items = set(map(int, split.test[user]))
    for label, items in (
        ("BPR", top_by_score),
        ("MAP", map_items),
        ("LkP", lkp_top),
    ):
        hits = sum(1 for i in items if int(i) in test_items)
        print(f"   {label} hits in held-out test set: {hits}/5")


if __name__ == "__main__":
    main()
