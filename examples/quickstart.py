"""Quickstart: train a recommender with the LkP criterion in ~30 lines.

Walks the full pipeline of the paper on a small synthetic MovieLens-like
dataset:

1. generate implicit feedback and split it 70/10/20;
2. pre-train the diversity kernel K (Eq. 3);
3. train a matrix-factorization model with LkP-NPS (Eq. 10);
4. evaluate relevance (Recall/NDCG), diversity (CC) and the trade-off (F)
   against a BPR baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import mine_diversity_pairs, movielens_like
from repro.dpp import DiversityKernelConfig, DiversityKernelLearner
from repro.losses import BPRCriterion, make_lkp_variant
from repro.models import MFRecommender
from repro.train import TrainConfig, Trainer


def main() -> None:
    # 1. Data: a dense, genre-labelled dataset in the mold of ML-1M.
    dataset = movielens_like(scale=0.5).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    print(f"dataset: {dataset.stats().as_row()}")

    # 2. Diversity kernel: maximize log det over category-diverse subsets.
    pairs = mine_diversity_pairs(
        split, set_size=5, pairs_per_user=2, mode="monotonous",
        rng=np.random.default_rng(1),
    )
    learner = DiversityKernelLearner(
        dataset.num_items, DiversityKernelConfig(rank=16, epochs=15, lr=0.03)
    )
    learner.fit(pairs)
    # Keep K in factored form (K = V Vᵀ): the criterion gathers
    # r-dimensional factor rows and never materializes an M×M matrix.
    factors = learner.factors_normalized()
    print(f"diversity kernel trained on {len(pairs)} (diverse, monotonous) pairs")

    # 3. Train MF with LkP-NPS, and MF with BPR for comparison.
    results = {}
    for name, criterion, lr in (
        ("LkP-NPS", make_lkp_variant("NPS", diversity_factors=factors, k=5, n=5), 0.05),
        ("BPR", BPRCriterion(), 0.02),
    ):
        model = MFRecommender(dataset.num_users, dataset.num_items, dim=16, rng=0)
        trainer = Trainer(
            model, criterion, split,
            TrainConfig(epochs=80, lr=lr, batch_size=32, patience=10, seed=2),
        )
        fit = trainer.fit()
        results[name] = trainer.evaluate(target="test")
        print(f"{name}: trained {fit.epochs_run} epochs (best at {fit.best_epoch})")

    # 4. Compare.
    print(f"\n{'metric':<8} {'LkP-NPS':>10} {'BPR':>10}")
    for metric in ("Re@5", "Nd@5", "CC@5", "F@5", "Re@10", "Nd@10", "CC@10", "F@10"):
        print(
            f"{metric:<8} {results['LkP-NPS'][metric]:>10.4f} "
            f"{results['BPR'][metric]:>10.4f}"
        )


if __name__ == "__main__":
    main()
