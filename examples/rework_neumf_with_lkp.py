"""Reworking an existing model with LkP (the paper's Table IV experiment).

The paper's generality claim: LkP "can be adaptively applied to existing
CF models as an objective function".  This example takes NeuMF — a
neural model with its own binary-cross-entropy objective — and swaps only
the loss for LkP-NPS, leaving the architecture untouched, then compares
native vs reworked on relevance, diversity and the trade-off.

Run:  python examples/rework_neumf_with_lkp.py
"""

import numpy as np

from repro.data import anime_like, mine_diversity_pairs
from repro.dpp import DiversityKernelConfig, DiversityKernelLearner
from repro.losses import BCECriterion, make_lkp_variant
from repro.models import NeuMFRecommender
from repro.train import TrainConfig, Trainer


def build_model(dataset, seed: int) -> NeuMFRecommender:
    return NeuMFRecommender(
        dataset.num_users,
        dataset.num_items,
        dim=16,
        mlp_layers=(32, 16, 8),
        rng=seed,
    )


def main() -> None:
    dataset = anime_like(scale=0.5).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    print(f"dataset: {dataset.stats().as_row()}")

    pairs = mine_diversity_pairs(
        split, set_size=5, pairs_per_user=2, mode="monotonous",
        rng=np.random.default_rng(1),
    )
    learner = DiversityKernelLearner(
        dataset.num_items, DiversityKernelConfig(rank=16, epochs=15, lr=0.03)
    )
    learner.fit(pairs)
    factors = learner.factors_normalized()

    runs = {
        # NeuMF's native objective: pointwise binary cross-entropy.
        "NeuMF (BCE)": (BCECriterion(), 0.02),
        # The rework: identical architecture, LkP-NPS objective.  NeuMF
        # outputs probabilities, so LkP applies its sigmoid quality
        # transform automatically (model.quality_transform == "sigmoid").
        # K stays factored — the criterion gathers r-dim rows of V.
        "NeuMF-NPS": (make_lkp_variant("NPS", diversity_factors=factors, k=5, n=5), 0.05),
    }

    results = {}
    for name, (criterion, lr) in runs.items():
        model = build_model(dataset, seed=0)
        # LkP converges slower than pointwise losses (paper Fig. 2 reports
        # 150-500 epochs); give both methods the same generous budget and
        # let early stopping pick each one's best epoch.
        trainer = Trainer(
            model, criterion, split,
            TrainConfig(epochs=150, lr=lr, batch_size=32, patience=20, seed=2),
        )
        fit = trainer.fit()
        results[name] = trainer.evaluate(target="test")
        print(f"{name}: {fit.epochs_run} epochs (best at {fit.best_epoch})")

    print(f"\n{'metric':<8}" + "".join(f"{name:>14}" for name in runs))
    for metric in ("Re@10", "Nd@10", "CC@10", "F@10", "Re@20", "Nd@20", "CC@20", "F@20"):
        row = "".join(f"{results[name][metric]:>14.4f}" for name in runs)
        print(f"{metric:<8}{row}")
    improv = (
        results["NeuMF-NPS"]["F@10"] / max(results["NeuMF (BCE)"]["F@10"], 1e-12) - 1
    )
    print(f"\nF@10 change from the LkP rework: {100 * improv:+.1f}%")


if __name__ == "__main__":
    main()
