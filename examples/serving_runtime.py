"""The online serving runtime: live submits, shard fan-out, hot swap.

`examples/diverse_recommendations.py` shows *what* a k-DPP recommends;
this example shows *how a service runs it*: a sharded catalog serving a
large item space, single requests admitted through the micro-batcher
(futures back), and a retrained factor snapshot published mid-traffic —
every response is stamped with the catalog version that produced it.

Request lifecycle::

    submit → admission (pin snapshot) → micro-batch window
           → candidate generation (funnel cache, else the configured
             source — here a quantile-sketch funnel)
           → exact k-DPP on merged pool → versioned Response

The whole stack is configured through one ``ServingConfig`` object
(``ServingRuntime.from_config``), and the closing section demonstrates
session-aware paging: a ``Session`` accumulates shown items so every
next page is conditioned on — and diverse against — the pages before.

Run:  python examples/serving_runtime.py
"""

import numpy as np

from repro.retrieval import FunnelCache, QuantileFunnel
from repro.serving import (
    SLO,
    Request,
    ServingConfig,
    ServingRuntime,
    Session,
    ShardedCatalog,
)


def synthetic_catalog(num_items: int, rank: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(num_items, rank))
    return factors / np.linalg.norm(factors, axis=1, keepdims=True)


def main() -> None:
    num_items, rank, k = 20_000, 16, 5
    factors = synthetic_catalog(num_items, rank, seed=0)
    rng = np.random.default_rng(1)

    catalog = ShardedCatalog(factors, num_shards=4)
    print(
        f"catalog: {catalog.num_items} items in {catalog.num_shards} shards, "
        f"rank {catalog.rank}, version {catalog.version}"
    )

    # Candidate generation is pluggable (repro.retrieval): the quantile-
    # sketch funnel replaces the exact per-shard top-k scan, and the
    # funnel cache short-circuits it entirely for repeat visitors.  One
    # ServingConfig carries every infrastructure knob for the stack.
    funnel_cache = FunnelCache()
    # Product health (PR 9): audit every slate's quality mass / ILAD /
    # log-probability, canary-compare each publish against the pre-swap
    # baseline, and track a latency SLO with fast/slow burn windows.
    config = ServingConfig(
        max_batch=16, max_wait=0.002, workers=1, funnel_width=24,
        source=QuantileFunnel(), funnel_cache=funnel_cache,
        audit_rate=1.0, canary_min_audits=4,
        slos=(SLO("p99-latency", "latency", target=0.250),),
    )
    with ServingRuntime.from_config(catalog, config) as runtime:
        user_quality: dict[int, np.ndarray] = {}

        def user_request(user: int, seed: int) -> Request:
            # One quality vector per user per score generation — the
            # contract the funnel cache keys on.
            if user not in user_quality:
                user_quality[user] = np.exp(rng.normal(scale=0.5, size=num_items))
            return Request(
                quality=user_quality[user], k=k, mode="sample", seed=seed,
                user=user,
            )

        # Live traffic: submits return immediately, futures resolve when
        # the micro-batch window fires.
        futures = [runtime.submit(user_request(u, 100 + u)) for u in range(8)]
        for u, future in enumerate(futures):
            response = future.result(30)
            print(f"user {u}: v{response.version} items {response.items}")

        # A retrain finishes: hot-swap the factor snapshot under traffic.
        # Users 0-3 return: their funnel pools come from the cache.
        inflight = [runtime.submit(user_request(u, 200 + u)) for u in range(4)]
        new_version = runtime.publish(
            synthetic_catalog(num_items, rank, seed=7)
        )
        user_quality.clear()  # retrained scores → fresh per-user quality
        after = [runtime.submit(user_request(u, 300 + u)) for u in range(4)]
        print(f"\npublished version {new_version} while requests were in flight")
        for label, batch in (("admitted before", inflight), ("admitted after", after)):
            versions = sorted({f.result(30).version for f in batch})
            print(f"  {label} publish → served on version(s) {versions}")

        stats = runtime.stats
        print(
            f"\nscheduler: {stats['submitted']} submitted in "
            f"{stats['batches']} batches (max size {stats['max_batch_size']}), "
            f"{stats['failed']} failed"
        )
        retrieval = stats["retrieval"]
        print(
            f"retrieval: source={retrieval['source']['source']} served "
            f"{retrieval['source']['rows']} rows in "
            f"{retrieval['source']['time_s'] * 1e3:.1f} ms; cache "
            f"{retrieval['cache']['hits']} hits / "
            f"{retrieval['cache']['misses']} misses "
            f"({retrieval['cache']['invalidations']} invalidated on publish)"
        )

        # -------------------------------------------------------------
        # Product health: the audited windows feed a post-publish
        # canary (new version vs. the baseline frozen before the swap)
        # and runtime.health() folds SLO burn rates, canary verdicts
        # and drift flags into one status.
        # -------------------------------------------------------------
        health = runtime.health()
        print(f"\nhealth: {health.status}" + (
            f" ({'; '.join(health.reasons)})" if health.reasons else ""
        ))
        for evaluation in health.slos:
            print(
                f"  SLO {evaluation['name']}: burn "
                f"{evaluation['fast_burn']:.2f}x fast / "
                f"{evaluation['slow_burn']:.2f}x slow over "
                f"{evaluation['slow_events']} requests"
            )
        report = runtime.last_canary
        if report is not None:
            verdict = "PASS" if report.passed else (
                f"REGRESSED on {', '.join(report.regressions)}"
            )
            print(
                f"canary v{report.baseline_version} → v{report.version}: "
                f"{verdict} after {report.audits} audited slates"
            )
            for name, entry in report.metrics.items():
                if entry["baseline"] is not None and entry["current"] is not None:
                    print(
                        f"  {name}: {entry['baseline']:.4f} → "
                        f"{entry['current']:.4f}"
                    )

        # -------------------------------------------------------------
        # Session-aware paging: one user scrolling three pages.  The
        # Session records what was shown and conditions the next page's
        # kernel on it, so pages are diverse *against each other* — and
        # alpha>1 flattens quality for extra within-page diversity.
        # -------------------------------------------------------------
        print("\npaging one user through three session-conditioned pages:")
        quality = np.exp(rng.normal(scale=0.5, size=num_items))
        session = Session(user=99, alpha=1.5, window=10)
        for page in range(3):
            request = session.request(quality, k=k, mode="map")
            response = runtime.submit(request).result(30)
            session.record(response)
            print(f"  page {page + 1}: {response.items}")
        assert len(set(session.shown)) == len(session)  # never repeats


if __name__ == "__main__":
    main()
