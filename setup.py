"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs cannot build.  Keeping a ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .`` fall
back to the classic ``setup.py develop`` path, which needs only
setuptools.  All metadata lives in pyproject.toml's ``[project]`` table,
which modern setuptools reads on its own; this file stays an empty shim.
"""

from setuptools import setup

setup()
