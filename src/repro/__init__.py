"""repro — a reproduction of "Learning k-Determinantal Point Processes
for Personalized Ranking" (Liu, Walder, Xie; ICDE 2024).

The package implements the paper's LkP set-level optimization criterion
and **every substrate it stands on**, from scratch, on numpy:

* :mod:`repro.autodiff` — a reverse-mode automatic differentiation engine
  (tensors, layers, optimizers) standing in for PyTorch;
* :mod:`repro.dpp` — k-DPP machinery: elementary symmetric polynomials
  (Algorithm 1), exact distributions and sampling, kernel assembly
  (Eq. 2/13), the Eq. 3 diversity-kernel learner, greedy MAP inference;
* :mod:`repro.data` — implicit-feedback datasets (synthetic stand-ins for
  Amazon-Beauty / MovieLens-1M / Anime), splits and instance samplers;
* :mod:`repro.models` — MF, NGCF-style GCN, NeuMF and GCMC backbones;
* :mod:`repro.losses` — LkP (six variants) plus BCE / BPR / SetRank /
  Set2SetRank baselines and the paper's analytic gradients;
* :mod:`repro.train` / :mod:`repro.eval` — training and evaluation
  harnesses;
* :mod:`repro.serving` — the batched multi-user k-DPP serving engine
  (catalog snapshots with cached dual spectra, request batching,
  recommender bridging) and online runtime;
* :mod:`repro.retrieval` — pluggable candidate generation for the
  serving funnel (exact top-k, quantile-sketch funnels, IVF coarse
  quantization, per-user funnel caching);
* :mod:`repro.experiments` — runners regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro.data import movielens_like, mine_diversity_pairs
    from repro.dpp import DiversityKernelLearner
    from repro.models import MFRecommender
    from repro.losses import make_lkp_variant
    from repro.train import Trainer, TrainConfig

    dataset = movielens_like(scale=0.5).filter_min_interactions(5)
    split = dataset.split(np.random.default_rng(0))
    learner = DiversityKernelLearner(dataset.num_items)
    learner.fit(mine_diversity_pairs(split, set_size=5, mode="monotonous"))
    model = MFRecommender(dataset.num_users, dataset.num_items, dim=32, rng=0)
    # K stays in factored form (K = V Vᵀ): training gathers r-dim rows.
    criterion = make_lkp_variant("NPS", diversity_factors=learner.factors_normalized())
    trainer = Trainer(model, criterion, split, TrainConfig(epochs=60, lr=0.05))
    trainer.fit()
    print(trainer.evaluate().metrics)

Serving the trained model at scale::

    from repro.serving import ItemCatalog, RecommenderBridge

    catalog = ItemCatalog.from_learner(learner)
    bridge = RecommenderBridge(model, catalog, known_items=split.train)
    responses = bridge.recommend(range(dataset.num_users), k=10, mode="map")
"""

from . import (
    autodiff,
    data,
    dpp,
    eval,
    experiments,
    losses,
    models,
    retrieval,
    serving,
    train,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "autodiff",
    "dpp",
    "data",
    "models",
    "losses",
    "train",
    "eval",
    "retrieval",
    "serving",
    "experiments",
    "utils",
    "__version__",
]
