"""``repro.autodiff`` — a reverse-mode automatic differentiation engine.

This subpackage stands in for PyTorch in the reproduction.  It provides:

* :class:`~repro.autodiff.tensor.Tensor` — numpy-backed reverse-mode AD;
* :mod:`~repro.autodiff.functional` — log-determinants, traces of matrix
  powers (the differentiable k-DPP normalization path), softmax family,
  embedding gathers;
* :mod:`~repro.autodiff.nn` — ``Module`` / ``Linear`` / ``Embedding`` /
  ``MLP`` / ``Dropout`` layers;
* :mod:`~repro.autodiff.optim` — SGD / Adam / AdaGrad;
* :mod:`~repro.autodiff.sparse` — constant-sparse × dense products for
  graph models;
* :mod:`~repro.autodiff.gradcheck` — finite-difference verification.
"""

from . import functional, init, nn, optim, sparse
from .gradcheck import check_gradient, numeric_gradient
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "nn",
    "optim",
    "init",
    "sparse",
    "check_gradient",
    "numeric_gradient",
]
