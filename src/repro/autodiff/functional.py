"""Composite and linear-algebra operations for the autodiff engine.

These functions complement the methods on :class:`~repro.autodiff.Tensor`
with the operations the LkP criterion needs: log-determinants of PSD
submatrices (Eq. 5 in the paper), traces of matrix powers (used by the
Newton-identity form of the k-DPP normalization, Eq. 6), softmax-family
reductions for the SetRank baseline and classifier heads, and embedding
gathers for all recommendation models.

The linear-algebra ops (``trace``, ``logdet_psd``, ``diag_embed``,
``diagonal``, ``eigh``, ``gather_submatrices``) all accept *stacked*
operands with arbitrary leading batch axes, so a whole minibatch of
``(k + n) x (k + n)`` ground-set kernels can flow through one fused
graph instead of B independent per-instance graphs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "clip",
    "sqrt",
    "matmul",
    "concat",
    "stack",
    "gather_rows",
    "gather_submatrices",
    "trace",
    "diag_embed",
    "diagonal",
    "eigh",
    "logdet_psd",
    "slogdet",
    "matrix_inverse",
    "logsumexp",
    "softmax",
    "log_softmax",
    "softplus",
    "log_sigmoid",
    "binary_cross_entropy_with_logits",
    "dropout",
    "power_sum_traces",
]


# ----------------------------------------------------------------------
# Thin functional wrappers over Tensor methods
# ----------------------------------------------------------------------
def exp(x) -> Tensor:
    return as_tensor(x).exp()


def log(x) -> Tensor:
    return as_tensor(x).log()


def sigmoid(x) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x) -> Tensor:
    return as_tensor(x).tanh()


def relu(x) -> Tensor:
    return as_tensor(x).relu()


def leaky_relu(x, negative_slope: float = 0.2) -> Tensor:
    return as_tensor(x).leaky_relu(negative_slope)


def clip(x, low: float, high: float) -> Tensor:
    return as_tensor(x).clip(low, high)


def sqrt(x) -> Tensor:
    return as_tensor(x).sqrt()


def matmul(a, b) -> Tensor:
    return as_tensor(a) @ as_tensor(b)


# ----------------------------------------------------------------------
# Structural ops
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with a slicing backward pass."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            grads.append((tensor, g[tuple(index)]))
        return grads

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        slices = np.moveaxis(g, axis, 0)
        return [(tensor, slices[i]) for i, tensor in enumerate(tensors)]

    return Tensor._make(data, tuple(tensors), backward)


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``table[indices]`` (embedding lookup).

    The backward pass scatter-adds into the table, so repeated indices
    (the same item appearing in several training instances of a batch)
    accumulate correctly.
    """
    table = as_tensor(table)
    indices = np.asarray(indices, dtype=np.int64)
    value = table.data[indices]
    table_shape = table.data.shape

    def backward(g: np.ndarray):
        grad = np.zeros(table_shape, dtype=np.float64)
        np.add.at(grad, indices, g)
        return ((table, grad),)

    return Tensor._make(value, (table,), backward)


def gather_submatrices(kernel: Tensor, subsets: np.ndarray) -> Tensor:
    """Batched principal-submatrix gather ``kernel[b][ix_(S_b, S_b)]``.

    ``kernel`` is a stacked ``(B, m, m)`` tensor and ``subsets`` an integer
    ``(B, s)`` array of per-instance index sets; the result is ``(B, s, s)``.
    The backward pass scatter-adds, so repeated indices within a subset
    accumulate correctly (mirroring :func:`gather_rows`).
    """
    kernel = as_tensor(kernel)
    subsets = np.asarray(subsets, dtype=np.int64)
    if kernel.ndim != 3:
        raise ValueError(f"gather_submatrices expects (B, m, m), got {kernel.shape}")
    if subsets.ndim != 2 or subsets.shape[0] != kernel.shape[0]:
        raise ValueError(
            f"subsets shape {subsets.shape} does not match batch of {kernel.shape[0]}"
        )
    index = (
        np.arange(kernel.shape[0])[:, None, None],
        subsets[:, :, None],
        subsets[:, None, :],
    )
    kernel_shape = kernel.shape

    def backward(g: np.ndarray):
        grad = np.zeros(kernel_shape, dtype=np.float64)
        np.add.at(grad, index, g)
        return ((kernel, grad),)

    return Tensor._make(kernel.data[index], (kernel,), backward)


def diag_embed(vector: Tensor) -> Tensor:
    """Build (stacked) diagonal matrices from (stacked) vectors.

    A ``(..., m)`` input yields ``(..., m, m)`` output — the batched form
    of ``Diag(y_u)`` from Eq. 2.
    """
    vector = as_tensor(vector)
    if vector.ndim < 1:
        raise ValueError(f"diag_embed expects a vector, got shape {vector.shape}")
    n = vector.shape[-1]
    rows = np.arange(n)
    data = np.zeros(vector.shape + (n,), dtype=np.float64)
    data[..., rows, rows] = vector.data

    def backward(g: np.ndarray):
        return ((vector, g[..., rows, rows]),)

    return Tensor._make(data, (vector,), backward)


def diagonal(matrix: Tensor) -> Tensor:
    """Diagonals of (stacked) square matrices: ``(..., m, m) -> (..., m)``."""
    matrix = as_tensor(matrix)
    if matrix.ndim < 2 or matrix.shape[-1] != matrix.shape[-2]:
        raise ValueError(f"diagonal expects square matrices, got {matrix.shape}")
    n = matrix.shape[-1]
    rows = np.arange(n)
    matrix_shape = matrix.shape

    def backward(g: np.ndarray):
        grad = np.zeros(matrix_shape, dtype=np.float64)
        grad[..., rows, rows] = g
        return ((matrix, grad),)

    return Tensor._make(matrix.data[..., rows, rows].copy(), (matrix,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def trace(matrix: Tensor) -> Tensor:
    """Trace of (stacked) square matrices; backward adds to the diagonals.

    ``(m, m)`` input yields a scalar, ``(..., m, m)`` input a ``(...)``
    tensor of per-matrix traces.
    """
    matrix = as_tensor(matrix)
    n = matrix.shape[-1]

    def backward(g: np.ndarray):
        grad = np.asarray(g, dtype=np.float64)[..., None, None] * np.eye(n)
        return ((matrix, grad),)

    return Tensor._make(
        np.trace(matrix.data, axis1=-2, axis2=-1), (matrix,), backward
    )


def eigh(matrix: Tensor) -> tuple[Tensor, np.ndarray]:
    """Eigendecomposition of (stacked) symmetric matrices.

    Returns ``(eigenvalues, eigenvectors)`` for a ``(..., m, m)`` input:
    the eigenvalues as a differentiable ``(..., m)`` tensor in ascending
    order, the eigenvectors as a plain ndarray (columns of the trailing
    two axes).  The input is symmetrized before factorization.

    Only *eigenvalue* gradients propagate: with ``g`` the upstream
    gradient on the spectrum, the kernel gradient is
    ``U diag(g) U^T``.  For symmetric spectral functions (log-det, the
    ESP normalizer, any function of the eigenvalues alone) this is the
    exact total derivative — even with degenerate eigenvalues — because
    eigenvector rotations within an eigenspace leave the function
    unchanged.  Downstream code must not differentiate through the
    returned eigenvectors, which is why they come back as a raw array.
    """
    matrix = as_tensor(matrix)
    if matrix.ndim < 2 or matrix.shape[-1] != matrix.shape[-2]:
        raise ValueError(f"eigh expects square matrices, got {matrix.shape}")
    symmetrized = 0.5 * (matrix.data + np.swapaxes(matrix.data, -1, -2))
    eigenvalues, eigenvectors = np.linalg.eigh(symmetrized)

    def backward(g: np.ndarray):
        grad = (eigenvectors * g[..., None, :]) @ np.swapaxes(eigenvectors, -1, -2)
        return ((matrix, grad),)

    return Tensor._make(eigenvalues, (matrix,), backward), eigenvectors


def matrix_inverse(matrix: Tensor) -> Tensor:
    """Matrix inverse with the standard adjoint ``-A^{-T} g A^{-T}``."""
    matrix = as_tensor(matrix)
    inv = np.linalg.inv(matrix.data)

    def backward(g: np.ndarray):
        return ((matrix, -inv.T @ g @ inv.T),)

    return Tensor._make(inv, (matrix,), backward)


def slogdet(matrix: Tensor) -> tuple[float, Tensor]:
    """Sign and log|det|; gradient of the log-magnitude is ``A^{-T}``."""
    matrix = as_tensor(matrix)
    sign, logabs = np.linalg.slogdet(matrix.data)
    inv_t = np.linalg.inv(matrix.data).T

    def backward(g: np.ndarray):
        return ((matrix, float(g) * inv_t),)

    return float(sign), Tensor._make(np.asarray(logabs), (matrix,), backward)


def logdet_psd(matrix: Tensor, jitter: float = 1e-10) -> Tensor:
    """Log-determinant of (stacked) (near-)PSD matrices via Cholesky.

    DPP submatrices ``L_S`` are PSD by construction but can be numerically
    singular when two items are near-duplicates; ``jitter`` is added to the
    diagonal before factorization.  Gradient: ``d logdet(A)/dA = A^{-1}``
    (symmetric case).  A ``(..., m, m)`` input yields ``(...)`` per-matrix
    log-determinants — the batched LkP path factorizes a whole minibatch
    of target blocks in one stacked Cholesky call.
    """
    matrix = as_tensor(matrix)
    n = matrix.shape[-1]
    stabilized = matrix.data + jitter * np.eye(n)
    try:
        chol = np.linalg.cholesky(stabilized)
    except np.linalg.LinAlgError as err:  # pragma: no cover - defensive
        raise np.linalg.LinAlgError(
            "logdet_psd received a matrix that is not positive definite even "
            f"after jitter={jitter}; smallest eigenvalue "
            f"{np.linalg.eigvalsh(stabilized).min():.3e}"
        ) from err
    logdet = 2.0 * np.log(np.diagonal(chol, axis1=-2, axis2=-1)).sum(axis=-1)
    inv = np.linalg.inv(stabilized)

    def backward(g: np.ndarray):
        return ((matrix, np.asarray(g, dtype=np.float64)[..., None, None] * inv),)

    return Tensor._make(np.asarray(logdet), (matrix,), backward)


def power_sum_traces(matrix: Tensor, order: int) -> list[Tensor]:
    """Return ``[tr(L), tr(L^2), ..., tr(L^order)]`` differentiably.

    These power sums feed Newton's identities, which convert them into the
    elementary symmetric polynomials ``e_k`` of the eigenvalues of ``L`` —
    exactly the k-DPP normalization constant of Eq. 6 — without needing a
    differentiable eigendecomposition.
    """
    matrix = as_tensor(matrix)
    traces: list[Tensor] = []
    current = matrix
    for _ in range(order):
        traces.append(trace(current))
        current = current @ matrix
    return traces


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` built from primitive ops."""
    x = as_tensor(x)
    shift = np.max(x.data, axis=axis, keepdims=True)
    shifted = x - Tensor(shift)
    result = shifted.exp().sum(axis=axis, keepdims=True).log() + Tensor(shift)
    if not keepdims:
        result = result.reshape(np.squeeze(result.data, axis=axis).shape)
    return result


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    return (x - logsumexp(x, axis=axis, keepdims=True)).exp()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` computed stably as ``max(x, 0) + log1p(exp(-|x|))``."""
    x = as_tensor(x)
    return x.relu() + (-x.abs()).exp().__add__(1.0).log()


def log_sigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x)) = -softplus(-x)``; the BPR building block."""
    return -softplus(-as_tensor(x))


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between ``sigmoid(logits)`` and binary ``targets``.

    Computed in the logit domain for stability:
    ``BCE = softplus(logits) - targets * logits`` (elementwise), averaged.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.float64)
    per_example = softplus(logits) - logits * Tensor(targets)
    return per_example.mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
