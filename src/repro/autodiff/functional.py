"""Composite and linear-algebra operations for the autodiff engine.

These functions complement the methods on :class:`~repro.autodiff.Tensor`
with the operations the LkP criterion needs: log-determinants of PSD
submatrices (Eq. 5 in the paper), traces of matrix powers (used by the
Newton-identity form of the k-DPP normalization, Eq. 6), softmax-family
reductions for the SetRank baseline and classifier heads, and embedding
gathers for all recommendation models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "clip",
    "sqrt",
    "matmul",
    "concat",
    "stack",
    "gather_rows",
    "trace",
    "diag_embed",
    "logdet_psd",
    "slogdet",
    "matrix_inverse",
    "logsumexp",
    "softmax",
    "log_softmax",
    "softplus",
    "log_sigmoid",
    "binary_cross_entropy_with_logits",
    "dropout",
    "power_sum_traces",
]


# ----------------------------------------------------------------------
# Thin functional wrappers over Tensor methods
# ----------------------------------------------------------------------
def exp(x) -> Tensor:
    return as_tensor(x).exp()


def log(x) -> Tensor:
    return as_tensor(x).log()


def sigmoid(x) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x) -> Tensor:
    return as_tensor(x).tanh()


def relu(x) -> Tensor:
    return as_tensor(x).relu()


def leaky_relu(x, negative_slope: float = 0.2) -> Tensor:
    return as_tensor(x).leaky_relu(negative_slope)


def clip(x, low: float, high: float) -> Tensor:
    return as_tensor(x).clip(low, high)


def sqrt(x) -> Tensor:
    return as_tensor(x).sqrt()


def matmul(a, b) -> Tensor:
    return as_tensor(a) @ as_tensor(b)


# ----------------------------------------------------------------------
# Structural ops
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with a slicing backward pass."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        grads = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            grads.append((tensor, g[tuple(index)]))
        return grads

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        slices = np.moveaxis(g, axis, 0)
        return [(tensor, slices[i]) for i, tensor in enumerate(tensors)]

    return Tensor._make(data, tuple(tensors), backward)


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``table[indices]`` (embedding lookup).

    The backward pass scatter-adds into the table, so repeated indices
    (the same item appearing in several training instances of a batch)
    accumulate correctly.
    """
    table = as_tensor(table)
    indices = np.asarray(indices, dtype=np.int64)
    value = table.data[indices]
    table_shape = table.data.shape

    def backward(g: np.ndarray):
        grad = np.zeros(table_shape, dtype=np.float64)
        np.add.at(grad, indices, g)
        return ((table, grad),)

    return Tensor._make(value, (table,), backward)


def diag_embed(vector: Tensor) -> Tensor:
    """Build a diagonal matrix from a vector (``Diag(y_u)`` of Eq. 2)."""
    vector = as_tensor(vector)
    if vector.ndim != 1:
        raise ValueError(f"diag_embed expects a vector, got shape {vector.shape}")
    n = vector.shape[0]
    data = np.zeros((n, n), dtype=np.float64)
    np.fill_diagonal(data, vector.data)

    def backward(g: np.ndarray):
        return ((vector, np.diagonal(g).copy()),)

    return Tensor._make(data, (vector,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def trace(matrix: Tensor) -> Tensor:
    """Trace of a square matrix; backward adds the gradient to the diagonal."""
    matrix = as_tensor(matrix)
    n = matrix.shape[-1]

    def backward(g: np.ndarray):
        return ((matrix, float(g) * np.eye(n)),)

    return Tensor._make(np.trace(matrix.data), (matrix,), backward)


def matrix_inverse(matrix: Tensor) -> Tensor:
    """Matrix inverse with the standard adjoint ``-A^{-T} g A^{-T}``."""
    matrix = as_tensor(matrix)
    inv = np.linalg.inv(matrix.data)

    def backward(g: np.ndarray):
        return ((matrix, -inv.T @ g @ inv.T),)

    return Tensor._make(inv, (matrix,), backward)


def slogdet(matrix: Tensor) -> tuple[float, Tensor]:
    """Sign and log|det|; gradient of the log-magnitude is ``A^{-T}``."""
    matrix = as_tensor(matrix)
    sign, logabs = np.linalg.slogdet(matrix.data)
    inv_t = np.linalg.inv(matrix.data).T

    def backward(g: np.ndarray):
        return ((matrix, float(g) * inv_t),)

    return float(sign), Tensor._make(np.asarray(logabs), (matrix,), backward)


def logdet_psd(matrix: Tensor, jitter: float = 1e-10) -> Tensor:
    """Log-determinant of a (near-)PSD matrix via Cholesky.

    DPP submatrices ``L_S`` are PSD by construction but can be numerically
    singular when two items are near-duplicates; ``jitter`` is added to the
    diagonal before factorization.  Gradient: ``d logdet(A)/dA = A^{-1}``
    (symmetric case).
    """
    matrix = as_tensor(matrix)
    n = matrix.shape[-1]
    stabilized = matrix.data + jitter * np.eye(n)
    try:
        chol = np.linalg.cholesky(stabilized)
    except np.linalg.LinAlgError as err:  # pragma: no cover - defensive
        raise np.linalg.LinAlgError(
            "logdet_psd received a matrix that is not positive definite even "
            f"after jitter={jitter}; smallest eigenvalue "
            f"{np.linalg.eigvalsh(stabilized).min():.3e}"
        ) from err
    logdet = 2.0 * np.log(np.diagonal(chol)).sum()
    inv = np.linalg.inv(stabilized)

    def backward(g: np.ndarray):
        return ((matrix, float(g) * inv),)

    return Tensor._make(np.asarray(logdet), (matrix,), backward)


def power_sum_traces(matrix: Tensor, order: int) -> list[Tensor]:
    """Return ``[tr(L), tr(L^2), ..., tr(L^order)]`` differentiably.

    These power sums feed Newton's identities, which convert them into the
    elementary symmetric polynomials ``e_k`` of the eigenvalues of ``L`` —
    exactly the k-DPP normalization constant of Eq. 6 — without needing a
    differentiable eigendecomposition.
    """
    matrix = as_tensor(matrix)
    traces: list[Tensor] = []
    current = matrix
    for _ in range(order):
        traces.append(trace(current))
        current = current @ matrix
    return traces


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` built from primitive ops."""
    x = as_tensor(x)
    shift = np.max(x.data, axis=axis, keepdims=True)
    shifted = x - Tensor(shift)
    result = shifted.exp().sum(axis=axis, keepdims=True).log() + Tensor(shift)
    if not keepdims:
        result = result.reshape(np.squeeze(result.data, axis=axis).shape)
    return result


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    return (x - logsumexp(x, axis=axis, keepdims=True)).exp()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` computed stably as ``max(x, 0) + log1p(exp(-|x|))``."""
    x = as_tensor(x)
    return x.relu() + (-x.abs()).exp().__add__(1.0).log()


def log_sigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x)) = -softplus(-x)``; the BPR building block."""
    return -softplus(-as_tensor(x))


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE between ``sigmoid(logits)`` and binary ``targets``.

    Computed in the logit domain for stability:
    ``BCE = softplus(logits) - targets * logits`` (elementwise), averaged.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.float64)
    per_example = softplus(logits) - logits * Tensor(targets)
    return per_example.mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return as_tensor(x)
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
