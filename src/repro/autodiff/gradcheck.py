"""Finite-difference gradient verification.

Used by the test suite to validate every autodiff op and, more
importantly, to check that the autodiff gradients of the LkP objective
match the paper's analytic expressions (Eq. 12, 14, 15).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradient"]


def numeric_gradient(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``fn``."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat_value = value.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat_value.size):
        original = flat_value[i]
        flat_value[i] = original + eps
        upper = fn(Tensor(value)).item()
        flat_value[i] = original - eps
        lower = fn(Tensor(value)).item()
        flat_value[i] = original
        flat_grad[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradient(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Compare autodiff and numeric gradients; raise on mismatch.

    Returns the (analytic, numeric) pair so tests can report both.
    """
    value = np.asarray(value, dtype=np.float64)
    x = Tensor(value.copy(), requires_grad=True)
    out = fn(x)
    if out.size != 1:
        raise ValueError("check_gradient requires a scalar-valued function")
    out.backward()
    analytic = x.grad
    numeric = numeric_gradient(fn, value, eps=eps)
    if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
        worst = np.abs(analytic - numeric).max()
        raise AssertionError(
            f"gradient mismatch: max abs diff {worst:.3e}\n"
            f"analytic:\n{analytic}\nnumeric:\n{numeric}"
        )
    return analytic, numeric
