"""Parameter initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so every
experiment in the reproduction is deterministic end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normal", "uniform", "xavier_uniform", "xavier_normal", "zeros", "ones"]


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    """Gaussian init; the paper's MF embeddings use small Gaussian noise."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in, fan_out = shape[0], shape[1]
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform, used for the MLP towers of NeuMF and GCN weights."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
