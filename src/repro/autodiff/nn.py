"""Minimal neural-network layer library on top of the autodiff engine.

Provides the layers the paper's backbones need: embeddings (MF, GCN,
NeuMF, GCMC all start from user/item embedding tables), linear layers and
MLP towers (NeuMF), and dropout.  The :class:`Module` container mirrors
the ``torch.nn.Module`` contract just enough for the trainer and
optimizers: recursive parameter discovery plus a train/eval mode flag.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Embedding", "Sequential", "MLP", "Dropout"]


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by ``Module``."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with recursive parameter discovery and mode switching."""

    def __init__(self) -> None:
        self.training = True

    # -- parameter bookkeeping -----------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every :class:`Parameter` reachable from this module."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for entry in value:
                    if isinstance(entry, Parameter):
                        if id(entry) not in seen:
                            seen.add(id(entry))
                            yield entry
                    elif isinstance(entry, Module):
                        yield from entry._parameters(seen)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in self.__dict__.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(path)
            elif isinstance(value, (list, tuple)):
                for i, entry in enumerate(value):
                    if isinstance(entry, Parameter):
                        yield f"{path}.{i}", entry
                    elif isinstance(entry, Module):
                        yield from entry.named_parameters(f"{path}.{i}")

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- train / eval mode ---------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for entry in value:
                    if isinstance(entry, Module):
                        entry._set_mode(training)

    # -- call protocol ---------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- (de)serialization -------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every named parameter's value, for checkpointing."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            if parameter.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: model {parameter.data.shape} "
                    f"vs checkpoint {state[name].shape}"
                )
            parameter.data = state[name].copy()


class Linear(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table; rows are gathered with a scatter-add backward pass."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        std: float = 0.1,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), rng, std=std), name="embedding"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.gather_rows(self.weight, indices)

    def all_rows(self) -> Tensor:
        """The full table as a tensor (used when propagating GCN layers)."""
        return self.weight


class Sequential(Module):
    """Apply modules (or plain callables such as activations) in order."""

    def __init__(self, *layers) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Dropout(Module):
    """Inverted dropout tied to the module's training flag."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, self.training)


class MLP(Module):
    """A stack of Linear + activation layers (the NeuMF tower).

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``[128, 64, 32, 16]``.
    activation:
        Callable applied after every layer except the last.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        rng: np.random.Generator,
        activation: Callable[[Tensor], Tensor] = F.relu,
        dropout_rate: float = 0.0,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.linears = [
            Linear(fan_in, fan_out, rng)
            for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:])
        ]
        self.activation = activation
        self.dropout = Dropout(dropout_rate, rng) if dropout_rate > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, linear in enumerate(self.linears):
            x = linear(x)
            if i != last:
                x = self.activation(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return x
