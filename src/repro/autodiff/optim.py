"""First-order optimizers for the autodiff engine.

The paper optimizes every criterion with Adam ("A prominent variant of
stochastic gradient descent method, Adam, is applied"), so :class:`Adam`
is the workhorse; :class:`SGD` and :class:`AdaGrad` are provided for the
grid-search harness and for tests that need a plain gradient step.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad"]


class Optimizer:
    """Base class: holds parameters, applies weight decay, steps, zeroes."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, weight_decay: float = 0.0) -> None:
        self.parameters = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def _grad(self, parameter: Tensor) -> np.ndarray | None:
        """Parameter gradient with L2 weight decay folded in."""
        if parameter.grad is None:
            return None
        if self.weight_decay:
            return parameter.grad + self.weight_decay * parameter.data
        return parameter.grad

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = self._grad(parameter)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = self._grad(parameter)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdaGrad(Optimizer):
    """AdaGrad; useful for the sparse embedding updates of MF baselines."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        self.eps = eps
        self._accumulated = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, accumulated in zip(self.parameters, self._accumulated):
            grad = self._grad(parameter)
            if grad is None:
                continue
            accumulated += grad**2
            parameter.data -= self.lr * grad / (np.sqrt(accumulated) + self.eps)
