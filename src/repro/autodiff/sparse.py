"""Sparse-matrix support for graph models.

GCN backbones propagate embeddings with a *constant* normalized adjacency
matrix; only the dense embedding operand requires gradients.  This module
provides that one asymmetric op — ``sparse @ dense`` with backward
``adjacency.T @ grad`` — plus the symmetric normalization used by
NGCF / LightGCN / GCMC.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = ["sparse_matmul", "normalize_adjacency", "bipartite_adjacency"]


def sparse_matmul(adjacency: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix by a dense tensor.

    Gradients flow only into ``dense``: the adjacency is graph structure,
    not a parameter.
    """
    dense = as_tensor(dense)
    adjacency = adjacency.tocsr()
    value = adjacency @ dense.data
    transposed = adjacency.T.tocsr()

    def backward(g: np.ndarray):
        return ((dense, transposed @ g),)

    return Tensor._make(value, (dense,), backward)


def bipartite_adjacency(
    num_users: int,
    num_items: int,
    user_indices: np.ndarray,
    item_indices: np.ndarray,
) -> sp.csr_matrix:
    """Build the (users + items) square bipartite interaction graph.

    The node ordering is users first, then items — the convention used by
    NGCF and LightGCN: ``A = [[0, R], [R^T, 0]]``.
    """
    n = num_users + num_items
    rows = np.concatenate([user_indices, item_indices + num_users])
    cols = np.concatenate([item_indices + num_users, user_indices])
    data = np.ones(rows.shape[0], dtype=np.float64)
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def normalize_adjacency(adjacency: sp.spmatrix, add_self_loops: bool = False) -> sp.csr_matrix:
    """Symmetric normalization ``D^{-1/2} (A [+ I]) D^{-1/2}``.

    Isolated nodes (possible in tiny test graphs) get a zero row rather
    than a division error.
    """
    adjacency = adjacency.tocsr()
    if add_self_loops:
        adjacency = adjacency + sp.eye(adjacency.shape[0], format="csr")
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv_sqrt = sp.diags(inv_sqrt)
    return (d_inv_sqrt @ adjacency @ d_inv_sqrt).tocsr()
