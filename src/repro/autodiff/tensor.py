"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate of the reproduction: the paper
trains its models with PyTorch, which is unavailable here, so we provide a
small but complete reverse-mode engine.  A :class:`Tensor` wraps a numpy
array and records the operations applied to it; calling
:meth:`Tensor.backward` walks the recorded graph in reverse topological
order and accumulates gradients into every tensor created with
``requires_grad=True``.

Design notes
------------
* Gradients are *accumulated* (``+=``) so a tensor used twice receives the
  sum of both contributions, matching the chain rule for fan-out.
* Broadcasting is handled by :func:`_unbroadcast`, which sums gradient
  contributions over the broadcast axes before accumulation.
* The graph is built eagerly; no tape object is needed.  Each tensor holds
  a ``_backward`` closure plus references to its parents.
* Only float64 is used.  The kernels in this project are tiny
  ``(k + n) x (k + n)`` matrices, so the extra precision is cheap and it
  keeps log-determinant gradients stable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every operation returns a plain
    result tensor with no parents, mirroring ``torch.no_grad``.  Used by
    evaluation code so that scoring the full catalog does not build an
    enormous graph.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, its gradient
    must be summed over the axes that were expanded.  This implements the
    adjoint of numpy broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed tensor that participates in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` by
        :meth:`backward`.
    parents:
        The tensors this one was computed from (internal use).
    backward_fn:
        Closure propagating ``self.grad`` into the parents (internal use).
    name:
        Optional label used in debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[], None] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    @property
    def mT(self) -> "Tensor":
        """Transpose of the last two axes (batched matrix transpose)."""
        if self.ndim < 2:
            raise ValueError(f"mT requires at least 2 dimensions, got {self.ndim}")
        axes = tuple(range(self.ndim - 2)) + (self.ndim - 1, self.ndim - 2)
        return self.transpose(axes)

    def item(self) -> float:
        """Return the value of a size-1 tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], Iterable[tuple["Tensor", np.ndarray]]],
    ) -> "Tensor":
        """Create a result tensor for an op.

        ``backward_fn`` maps the upstream gradient to ``(parent, grad)``
        pairs; accumulation and broadcasting adjoints are handled here so
        each op only has to state its local derivative.
        """
        if not _GRAD_ENABLED:
            return Tensor(data)
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        out = Tensor(data, requires_grad=True, parents=parents)

        def _backward() -> None:
            upstream = out.grad
            for parent, grad in backward_fn(upstream):
                if not parent.requires_grad:
                    continue
                grad = _unbroadcast(np.asarray(grad, dtype=np.float64), parent.shape)
                if parent.grad is None:
                    parent.grad = grad.copy()
                else:
                    parent.grad += grad

        out._backward_fn = _backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0, which is only valid for
            scalar outputs (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float64).reshape(self.shape)

        order = self._topological_order()
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn()

    def _topological_order(self) -> list["Tensor"]:
        """Return the graph below ``self`` in topological order."""
        order: list[Tensor] = []
        visited: set[int] = set()
        # Iterative DFS: the LkP graphs are deep (per-instance kernels in a
        # batch), so recursion would risk hitting the interpreter limit.
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor._make(
            self.data + other.data,
            (self, other),
            lambda g: ((self, g), (other, g)),
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor._make(
            self.data - other.data,
            (self, other),
            lambda g: ((self, g), (other, -g)),
        )

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: ((self, -g),))

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor._make(
            self.data * other.data,
            (self, other),
            lambda g: ((self, g * other.data), (other, g * self.data)),
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor._make(
            self.data / other.data,
            (self, other),
            lambda g: (
                (self, g / other.data),
                (other, -g * self.data / (other.data**2)),
            ),
        )

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        value = self.data**exponent
        return Tensor._make(
            value,
            (self,),
            lambda g: ((self, g * exponent * self.data ** (exponent - 1)),),
        )

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
                return ((self, g * b), (other, g * a))
            if a.ndim == 1:  # (m,) @ (m, n) -> (n,)
                return ((self, b @ g), (other, np.outer(a, g)))
            if b.ndim == 1:  # (m, n) @ (n,) -> (m,)
                return ((self, np.outer(g, b)), (other, a.T @ g))
            return (
                (self, g @ np.swapaxes(b, -1, -2)),
                (other, np.swapaxes(a, -1, -2) @ g),
            )

        return Tensor._make(a @ b, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return Tensor._make(
            self.data.reshape(shape),
            (self,),
            lambda g: ((self, g.reshape(original)),),
        )

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        if axes is None:
            inverse = None
        else:
            inverse = tuple(int(np.argsort(axes)[i]) for i in range(len(axes)))
        return Tensor._make(
            np.transpose(self.data, axes),
            (self,),
            lambda g: ((self, np.transpose(g, inverse)),),
        )

    def __getitem__(self, index) -> "Tensor":
        """Basic and integer-array indexing with scatter-add backward."""
        original_shape = self.data.shape

        def backward(g: np.ndarray):
            grad = np.zeros(original_shape, dtype=np.float64)
            np.add.at(grad, index, g)
            return ((self, grad),)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and elementwise functions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        original_shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                grad = np.broadcast_to(g, original_shape)
            else:
                g_expanded = g if keepdims else np.expand_dims(g, axis)
                grad = np.broadcast_to(g_expanded, original_shape)
            return ((self, grad),)

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        return Tensor._make(value, (self,), lambda g: ((self, g * value),))

    def log(self) -> "Tensor":
        return Tensor._make(
            np.log(self.data), (self,), lambda g: ((self, g / self.data),)
        )

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        value = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )
        return Tensor._make(value, (self,), lambda g: ((self, g * value * (1 - value)),))

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        return Tensor._make(value, (self,), lambda g: ((self, g * (1 - value**2)),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._make(self.data * mask, (self,), lambda g: ((self, g * mask),))

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)
        return Tensor._make(self.data * mask, (self,), lambda g: ((self, g * mask),))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the range."""
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._make(
            np.clip(self.data, low, high), (self,), lambda g: ((self, g * mask),)
        )

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        return Tensor._make(value, (self,), lambda g: ((self, g * 0.5 / value),))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: ((self, g * sign),))
