"""``repro.data`` — datasets, splits and training-instance samplers.

* :mod:`~repro.data.interactions` — the :class:`InteractionDataset`
  container (implicit feedback + multi-label item categories), iterative
  min-interaction filtering and the paper's per-user 70/10/20 split;
* :mod:`~repro.data.synthetic` — offline stand-ins for Amazon-Beauty,
  MovieLens-1M and Anime that preserve the sparsity / category-richness
  axes the paper's analysis depends on;
* :mod:`~repro.data.samplers` — LkP ground-set sampling (S and R modes)
  and the baselines' instance samplers under the same budget;
* :mod:`~repro.data.diverse_sets` — mining (T+, T-) pairs for the Eq. 3
  diversity-kernel learner.
"""

from .diverse_sets import greedy_diverse_subset, mine_diversity_pairs, monotonous_subset
from .interactions import DatasetSplit, DatasetStats, InteractionDataset
from .samplers import (
    GroundSetInstance,
    GroundSetSampler,
    OneVsSetSampler,
    PairSampler,
    PointwiseSampler,
    SetPairSampler,
)
from .synthetic import (
    DATASET_FACTORIES,
    SyntheticConfig,
    anime_like,
    beauty_like,
    generate_dataset,
    movielens_like,
)

__all__ = [
    "InteractionDataset",
    "DatasetSplit",
    "DatasetStats",
    "SyntheticConfig",
    "generate_dataset",
    "beauty_like",
    "movielens_like",
    "anime_like",
    "DATASET_FACTORIES",
    "GroundSetInstance",
    "GroundSetSampler",
    "PairSampler",
    "PointwiseSampler",
    "OneVsSetSampler",
    "SetPairSampler",
    "greedy_diverse_subset",
    "monotonous_subset",
    "mine_diversity_pairs",
]
