"""Mining (T+, T-) training pairs for the diversity kernel (Eq. 3).

The paper trains its diversity kernel K on "diversified item sets
(subsets that have a broad coverage) from users' historical interactions
as ground truth sets", paired with sets "that contain negative items".
This module mines those pairs from a dataset split:

* **T+**: from each eligible user's training history, a greedy
  max-category-coverage subset of size ``set_size`` (take the item adding
  the most unseen categories at each step);
* **T-**: either ``set_size`` sampled unobserved items (``mode
  "negatives"``, the paper's description) or the user's *least* diverse
  observed subset (``mode "monotonous"``, a stricter contrast we use in
  ablations).
"""

from __future__ import annotations

import numpy as np

from .interactions import DatasetSplit

__all__ = ["greedy_diverse_subset", "monotonous_subset", "mine_diversity_pairs"]


def greedy_diverse_subset(
    items: np.ndarray, item_categories: list[frozenset[int]], size: int
) -> np.ndarray:
    """Greedy max-coverage subset of ``items`` (ties → first seen)."""
    items = np.asarray(items, dtype=np.int64)
    if items.shape[0] < size:
        raise ValueError(f"need at least {size} items, got {items.shape[0]}")
    chosen: list[int] = []
    covered: set[int] = set()
    remaining = list(map(int, items))
    for _ in range(size):
        best_item, best_gain = remaining[0], -1
        for item in remaining:
            gain = len(item_categories[item] - covered)
            if gain > best_gain:
                best_gain, best_item = gain, item
        chosen.append(best_item)
        covered |= item_categories[best_item]
        remaining.remove(best_item)
    return np.asarray(chosen, dtype=np.int64)


def monotonous_subset(
    items: np.ndarray,
    item_categories: list[frozenset[int]],
    size: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A low-coverage subset grown around one over-represented category.

    When ``rng`` is given, the anchor category is sampled proportionally
    to its frequency in the history and the members are shuffled, so
    repeated mining of the same user yields *varied* low-diversity sets —
    without this the kernel learner can memorize one fixed subset per
    user instead of generalizing category structure.
    """
    items = np.asarray(items, dtype=np.int64)
    if items.shape[0] < size:
        raise ValueError(f"need at least {size} items, got {items.shape[0]}")
    counts: dict[int, int] = {}
    for item in items:
        for c in item_categories[int(item)]:
            counts[c] = counts.get(c, 0) + 1
    if rng is None:
        anchor = max(counts, key=counts.get)
    else:
        categories = sorted(counts)
        weights = np.asarray([counts[c] for c in categories], dtype=np.float64)
        # Only categories that can fill at least half the subset qualify;
        # fall back to all when none do.
        strong = weights >= max(2, size // 2)
        if strong.any():
            categories = [c for c, keep in zip(categories, strong) if keep]
            weights = weights[strong]
        anchor = int(rng.choice(categories, p=weights / weights.sum()))
    in_anchor = [int(i) for i in items if anchor in item_categories[int(i)]]
    rest = [int(i) for i in items if anchor not in item_categories[int(i)]]
    if rng is not None:
        in_anchor = list(rng.permutation(in_anchor))
        rest = list(rng.permutation(rest))
    chosen = [int(i) for i in in_anchor[:size]]
    chosen += [int(i) for i in rest[: size - len(chosen)]]
    return np.asarray(chosen, dtype=np.int64)


def mine_diversity_pairs(
    split: DatasetSplit,
    set_size: int = 5,
    pairs_per_user: int = 1,
    mode: str = "negatives",
    rng: np.random.Generator | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Build the Eq. 3 training pairs from a split.

    Parameters
    ----------
    set_size:
        |T+| = |T-|; the paper keeps these at the LkP k.
    pairs_per_user:
        How many pairs to mine per eligible user (extra pairs use random
        sub-histories to diversify the T+ pool).
    mode:
        ``"negatives"`` (T- = unobserved items, the paper's setup) or
        ``"monotonous"`` (T- = least-diverse observed subset, ablation).
    """
    if mode not in ("negatives", "monotonous"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = rng or np.random.default_rng(0)
    categories = split.dataset.item_categories
    pairs: list[tuple[np.ndarray, np.ndarray]] = []
    for user in split.users_with_min_train(set_size):
        history = split.train[user]
        for pair_index in range(pairs_per_user):
            if pair_index == 0 or history.shape[0] <= set_size:
                pool = history
            else:
                take = max(set_size, int(history.shape[0] * 0.7))
                pool = rng.choice(history, size=take, replace=False)
            positive = greedy_diverse_subset(pool, categories, set_size)
            if mode == "negatives":
                negative = split.sample_negatives(int(user), set_size, rng)
            else:
                negative = monotonous_subset(history, categories, set_size, rng=rng)
            pairs.append((positive, negative))
    if not pairs:
        raise ValueError(
            f"no user has >= {set_size} training items; cannot mine pairs"
        )
    return pairs
