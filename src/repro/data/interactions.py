"""Implicit-feedback interaction datasets.

:class:`InteractionDataset` is the library's central data container: a
set of (user, item, timestamp) implicit interactions plus the multi-label
item→categories map that the paper's diversity machinery (the diverse
kernel K, the Category Coverage metric) relies on.

The paper's preprocessing pipeline is reproduced exactly:

* ratings are binarized upstream (the synthetic generators emit implicit
  data directly);
* long-tailed users/items with fewer than ``min_interactions`` events are
  filtered **iteratively** (dropping items can push users below the
  threshold and vice versa);
* per-user 70 / 10 / 20 train / validation / test splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = ["InteractionDataset", "DatasetSplit", "DatasetStats"]


@dataclass
class DatasetStats:
    """The Table I row for a dataset."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    num_categories: int
    density: float

    def as_row(self) -> str:
        return (
            f"{self.name:<14} {self.num_users:>7} {self.num_items:>7} "
            f"{self.num_interactions:>13} {self.num_categories:>11} "
            f"{self.density:>9.4f}"
        )


class InteractionDataset:
    """Implicit-feedback dataset with item categories and timestamps.

    Parameters
    ----------
    name:
        Dataset label (e.g. ``"beauty-like"``).
    num_users / num_items:
        Catalog sizes; ids are dense ``[0, N)`` / ``[0, M)``.
    interactions:
        Integer array of shape ``(n, 3)``: columns are user id, item id,
        timestamp.  Timestamps order each user's history for the paper's
        sequential (S-mode) instance sampling.
    item_categories:
        ``item_categories[i]`` is the frozenset of category ids of item i
        (multi-label, mirroring Amazon category paths / MovieLens genres /
        Anime tags).
    num_categories:
        Size of the category vocabulary.
    """

    def __init__(
        self,
        name: str,
        num_users: int,
        num_items: int,
        interactions: np.ndarray,
        item_categories: list[frozenset[int]],
        num_categories: int,
    ) -> None:
        interactions = np.asarray(interactions, dtype=np.int64)
        if interactions.ndim != 2 or interactions.shape[1] != 3:
            raise ValueError(
                f"interactions must be (n, 3) [user, item, time], got {interactions.shape}"
            )
        if len(item_categories) != num_items:
            raise ValueError(
                f"item_categories has {len(item_categories)} entries for "
                f"{num_items} items"
            )
        if interactions.shape[0]:
            if interactions[:, 0].min() < 0 or interactions[:, 0].max() >= num_users:
                raise ValueError("interaction user id out of range")
            if interactions[:, 1].min() < 0 or interactions[:, 1].max() >= num_items:
                raise ValueError("interaction item id out of range")
        for i, cats in enumerate(item_categories):
            for c in cats:
                if not 0 <= c < num_categories:
                    raise ValueError(f"item {i} has out-of-range category {c}")
        self.name = name
        self.num_users = num_users
        self.num_items = num_items
        self.interactions = interactions
        self.item_categories = [frozenset(c) for c in item_categories]
        self.num_categories = num_categories

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def num_interactions(self) -> int:
        return self.interactions.shape[0]

    @property
    def density(self) -> float:
        return self.num_interactions / (self.num_users * self.num_items)

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_interactions=self.num_interactions,
            num_categories=self.num_categories,
            density=self.density,
        )

    def user_histories(self) -> list[np.ndarray]:
        """Per-user item ids, sorted by timestamp (deduplicated, first seen)."""
        histories: list[list[int]] = [[] for _ in range(self.num_users)]
        seen: list[set[int]] = [set() for _ in range(self.num_users)]
        order = np.argsort(self.interactions[:, 2], kind="stable")
        for row in self.interactions[order]:
            user, item = int(row[0]), int(row[1])
            if item not in seen[user]:
                seen[user].add(item)
                histories[user].append(item)
        return [np.asarray(h, dtype=np.int64) for h in histories]

    def categories_of(self, items: np.ndarray) -> set[int]:
        """Union of categories spanned by ``items`` (the C(S) of §III-A)."""
        covered: set[int] = set()
        for item in np.asarray(items, dtype=np.int64):
            covered |= self.item_categories[item]
        return covered

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def filter_min_interactions(self, minimum: int = 10) -> "InteractionDataset":
        """Iteratively drop users/items with < ``minimum`` interactions.

        Mirrors "We filter out long-tailed users and items with fewer than
        10 interactions for all datasets."  Ids are re-densified; item
        categories follow their items.
        """
        interactions = self.interactions
        while True:
            user_counts = np.bincount(interactions[:, 0], minlength=self.num_users)
            item_counts = np.bincount(interactions[:, 1], minlength=self.num_items)
            keep = (user_counts[interactions[:, 0]] >= minimum) & (
                item_counts[interactions[:, 1]] >= minimum
            )
            if keep.all():
                break
            interactions = interactions[keep]
            if interactions.shape[0] == 0:
                break
        kept_users = np.unique(interactions[:, 0])
        kept_items = np.unique(interactions[:, 1])
        user_map = {old: new for new, old in enumerate(kept_users)}
        item_map = {old: new for new, old in enumerate(kept_items)}
        remapped = interactions.copy()
        remapped[:, 0] = [user_map[u] for u in interactions[:, 0]]
        remapped[:, 1] = [item_map[i] for i in interactions[:, 1]]
        categories = [self.item_categories[old] for old in kept_items]
        return InteractionDataset(
            name=self.name,
            num_users=len(kept_users),
            num_items=len(kept_items),
            interactions=remapped,
            item_categories=categories,
            num_categories=self.num_categories,
        )

    def split(
        self,
        rng: np.random.Generator,
        train_fraction: float = 0.7,
        val_fraction: float = 0.1,
    ) -> "DatasetSplit":
        """Per-user random 70/10/20 split (the paper's protocol).

        "For each user, we randomly select 20% of the rated items as
        ground truth for testing, and 70% and 10% ratings constitute the
        training and validation set."  Within the training portion the
        original temporal order is preserved so that S-mode sampling still
        sees a sequence.
        """
        if not 0 < train_fraction < 1 or not 0 <= val_fraction < 1:
            raise ValueError("fractions must lie in (0, 1)")
        if train_fraction + val_fraction >= 1:
            raise ValueError("train + val fractions must leave room for test")
        histories = self.user_histories()
        train: list[np.ndarray] = []
        val: list[np.ndarray] = []
        test: list[np.ndarray] = []
        for items in histories:
            count = items.shape[0]
            if count == 0:
                train.append(items)
                val.append(items)
                test.append(items)
                continue
            chosen = rng.permutation(count)
            n_train = max(1, int(round(train_fraction * count)))
            n_val = int(round(val_fraction * count))
            # Keep at least one test item whenever the user has >= 3 events.
            if n_train + n_val >= count and count >= 3:
                n_val = max(0, count - n_train - 1)
            train_positions = np.sort(chosen[:n_train])
            val_positions = np.sort(chosen[n_train : n_train + n_val])
            test_positions = np.sort(chosen[n_train + n_val :])
            train.append(items[train_positions])
            val.append(items[val_positions])
            test.append(items[test_positions])
        return DatasetSplit(dataset=self, train=train, val=val, test=test)


@dataclass
class DatasetSplit:
    """Per-user train / validation / test item arrays plus derived caches."""

    dataset: InteractionDataset
    train: list[np.ndarray]
    val: list[np.ndarray]
    test: list[np.ndarray]
    _train_sets: list[set[int]] = field(default_factory=list, repr=False)
    _known_sets: list[set[int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._train_sets = [set(map(int, items)) for items in self.train]
        self._known_sets = [
            set(map(int, tr)) | set(map(int, va))
            for tr, va in zip(self.train, self.val)
        ]

    # -- membership ------------------------------------------------------
    def train_set(self, user: int) -> set[int]:
        return self._train_sets[user]

    def known_set(self, user: int) -> set[int]:
        """Train ∪ validation: never recommended, never sampled as target."""
        return self._known_sets[user]

    # -- matrices ----------------------------------------------------------
    def train_matrix(self) -> sp.csr_matrix:
        """Binary user × item CSR matrix of the training interactions."""
        users = np.concatenate(
            [np.full(items.shape[0], u) for u, items in enumerate(self.train)]
        ) if self.dataset.num_users else np.empty(0, dtype=np.int64)
        items = (
            np.concatenate(self.train) if self.dataset.num_users else np.empty(0)
        )
        data = np.ones(users.shape[0], dtype=np.float64)
        return sp.csr_matrix(
            (data, (users, items)),
            shape=(self.dataset.num_users, self.dataset.num_items),
        )

    def train_pairs(self) -> np.ndarray:
        """All (user, item) training interactions as an (n, 2) array."""
        pairs = [
            np.stack([np.full(items.shape[0], u), items], axis=1)
            for u, items in enumerate(self.train)
            if items.shape[0]
        ]
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(pairs, axis=0)

    def users_with_min_train(self, minimum: int) -> np.ndarray:
        """Users owning at least ``minimum`` training items."""
        return np.asarray(
            [u for u, items in enumerate(self.train) if items.shape[0] >= minimum],
            dtype=np.int64,
        )

    def sample_negatives(
        self, user: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform unobserved items for ``user`` (excluding train ∪ val).

        Rejection sampling is fast because even the densest dataset keeps
        most of the catalog unobserved; falls back to exact set difference
        when the user has seen nearly everything (tiny test graphs).
        """
        known = self._known_sets[user]
        num_items = self.dataset.num_items
        available = num_items - len(known)
        if count > available:
            raise ValueError(
                f"user {user} has only {available} unobserved items, "
                f"cannot sample {count}"
            )
        if available <= 2 * count:
            pool = np.asarray(
                sorted(set(range(num_items)) - known), dtype=np.int64
            )
            return rng.choice(pool, size=count, replace=False)
        chosen: set[int] = set()
        while len(chosen) < count:
            draws = rng.integers(0, num_items, size=2 * (count - len(chosen)))
            for item in draws:
                item = int(item)
                if item not in known and item not in chosen:
                    chosen.add(item)
                    if len(chosen) == count:
                        break
        return np.asarray(sorted(chosen), dtype=np.int64)
