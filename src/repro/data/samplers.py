"""Training-instance samplers for every optimization criterion.

The paper compares criteria under an *equal training-signal budget*: "we
ensure that the number of set-level training instances used in our
experiments is not greater than the pointwise method or BPR optimization".
The samplers here enforce that discipline:

* :class:`GroundSetSampler` builds the LkP instances — a user plus a
  ``k + n`` ground set (k targets, n unobserved items) — in either of the
  paper's two construction modes:

  - **S** (sequential): non-overlapping sliding windows of size k over the
    user's time-ordered training items, so targets share the temporal /
    categorical correlations the generator instilled;
  - **R** (random): windows over a fresh random permutation each epoch.

  Both modes cover every training item at least once per epoch (the last
  window is right-aligned when the history is not a multiple of k),
  giving ``ceil(|Y+_u| / k)`` instances per user — never more than the
  per-interaction budget of BPR/BCE.

* :class:`PairSampler` (BPR), :class:`PointwiseSampler` (BCE),
  :class:`OneVsSetSampler` (SetRank) and :class:`SetPairSampler`
  (Set2SetRank) produce the baselines' instances from the same split and
  negative-sampling rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .interactions import DatasetSplit

__all__ = [
    "GroundSetInstance",
    "GroundSetSampler",
    "PairSampler",
    "PointwiseSampler",
    "OneVsSetSampler",
    "SetPairSampler",
]


@dataclass(frozen=True)
class GroundSetInstance:
    """One LkP training instance: ``k`` targets + ``n`` negatives.

    ``targets`` and ``negatives`` are item ids; their concatenation (in
    that order) forms the k+n ground set of Eq. 4, so positions
    ``[0, k)`` of the ground-set kernel always index the target subset
    and ``[k, k+n)`` the negatives.
    """

    user: int
    targets: np.ndarray
    negatives: np.ndarray

    @property
    def ground_set(self) -> np.ndarray:
        return np.concatenate([self.targets, self.negatives])

    @property
    def k(self) -> int:
        return int(self.targets.shape[0])

    @property
    def n(self) -> int:
        return int(self.negatives.shape[0])


def _windows(ordered_items: np.ndarray, k: int) -> list[np.ndarray]:
    """Non-overlapping size-k windows covering every element.

    The final window is right-aligned (may overlap its predecessor) so
    that each item appears in at least one window — the paper's coverage
    guarantee — while the instance count stays at ``ceil(len / k)``.
    """
    count = ordered_items.shape[0]
    if count < k:
        return []
    windows = [
        ordered_items[start : start + k] for start in range(0, count - k + 1, k)
    ]
    if count % k:
        windows.append(ordered_items[count - k :])
    return windows


class GroundSetSampler:
    """Builds the paper's k-DPP ground-set instances (S or R mode)."""

    def __init__(
        self,
        split: DatasetSplit,
        k: int = 5,
        n: int = 5,
        mode: str = "S",
    ) -> None:
        if mode not in ("S", "R"):
            raise ValueError(f"mode must be 'S' or 'R', got {mode!r}")
        if k < 2:
            # The paper trains only with k > 1: a single-item "set" has no
            # internal correlation for the k-DPP to exploit.
            raise ValueError(f"k must be >= 2, got {k}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.split = split
        self.k = k
        self.n = n
        self.mode = mode
        self._eligible = split.users_with_min_train(k)
        if self._eligible.shape[0] == 0:
            raise ValueError(
                f"no user has >= k={k} training items; dataset too small"
            )

    @property
    def eligible_users(self) -> np.ndarray:
        return self._eligible

    def instances(self, rng: np.random.Generator) -> list[GroundSetInstance]:
        """One epoch of training instances, freshly sampled negatives."""
        out: list[GroundSetInstance] = []
        for user in self._eligible:
            items = self.split.train[user]
            if self.mode == "R":
                items = items[rng.permutation(items.shape[0])]
            for window in _windows(items, self.k):
                negatives = self.split.sample_negatives(int(user), self.n, rng)
                out.append(
                    GroundSetInstance(
                        user=int(user),
                        targets=window.copy(),
                        negatives=negatives,
                    )
                )
        return out


class PairSampler:
    """BPR instances: one (user, positive, negative) triple per interaction."""

    def __init__(self, split: DatasetSplit) -> None:
        self.split = split
        self._pairs = split.train_pairs()
        if self._pairs.shape[0] == 0:
            raise ValueError("split has no training interactions")

    def instances(self, rng: np.random.Generator) -> list[tuple[int, int, int]]:
        out = []
        for user, positive in self._pairs:
            negative = self.split.sample_negatives(int(user), 1, rng)[0]
            out.append((int(user), int(positive), int(negative)))
        return out


class PointwiseSampler:
    """BCE instances: every positive plus ``negative_ratio`` sampled zeros."""

    def __init__(self, split: DatasetSplit, negative_ratio: int = 1) -> None:
        if negative_ratio < 1:
            raise ValueError(f"negative_ratio must be >= 1, got {negative_ratio}")
        self.split = split
        self.negative_ratio = negative_ratio
        self._pairs = split.train_pairs()

    def instances(self, rng: np.random.Generator) -> list[tuple[int, int, float]]:
        out: list[tuple[int, int, float]] = []
        for user, positive in self._pairs:
            out.append((int(user), int(positive), 1.0))
            for negative in self.split.sample_negatives(
                int(user), self.negative_ratio, rng
            ):
                out.append((int(user), int(negative), 0.0))
        return out


class OneVsSetSampler:
    """SetRank instances: one positive vs a set of sampled negatives."""

    def __init__(self, split: DatasetSplit, num_negatives: int = 5) -> None:
        if num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
        self.split = split
        self.num_negatives = num_negatives
        self._pairs = split.train_pairs()

    def instances(self, rng: np.random.Generator) -> list[tuple[int, int, np.ndarray]]:
        out = []
        for user, positive in self._pairs:
            negatives = self.split.sample_negatives(int(user), self.num_negatives, rng)
            out.append((int(user), int(positive), negatives))
        return out


class SetPairSampler:
    """Set2SetRank instances: a positive set vs a sampled negative set.

    Instance budget matches :class:`GroundSetSampler`: ``ceil(|Y+_u| / k)``
    windows per user, shuffled per epoch (Set2SetRank samples positive
    sets randomly rather than sequentially).
    """

    def __init__(self, split: DatasetSplit, k: int = 5, n: int = 5) -> None:
        if k < 1 or n < 1:
            raise ValueError("set sizes must be positive")
        self.split = split
        self.k = k
        self.n = n
        self._eligible = split.users_with_min_train(k)
        if self._eligible.shape[0] == 0:
            raise ValueError(f"no user has >= k={k} training items")

    def instances(self, rng: np.random.Generator) -> list[tuple[int, np.ndarray, np.ndarray]]:
        out = []
        for user in self._eligible:
            items = self.split.train[user]
            shuffled = items[rng.permutation(items.shape[0])]
            for window in _windows(shuffled, self.k):
                negatives = self.split.sample_negatives(int(user), self.n, rng)
                out.append((int(user), window.copy(), negatives))
        return out
