"""Synthetic implicit-feedback generators standing in for the paper's data.

The paper evaluates on Amazon-Beauty, MovieLens-1M and Anime.  Those
corpora cannot be downloaded in this offline environment, so we generate
datasets that preserve the *axes the paper's analysis turns on*:

========  ==========  =========  ==============================
dataset   categories  density    role in the paper's analysis
========  ==========  =========  ==============================
Beauty    213 (rich)  1.3e-4     sparsest → largest LkP gains
ML-1M     18 (few)    4.7e-2     densest, few broad genres
Anime     43          1.1e-3     middle ground
========  ==========  =========  ==============================

At reproduction scale we keep the *ordering* of both axes (category
richness and density) rather than the absolute values.  The generative
process is a standard clustered-preference model:

1. every item gets a Zipf-distributed popularity and a multi-label
   category set (a primary category plus optional extras, matching
   multi-genre movies / category paths of products);
2. every user gets a Dirichlet preference over categories concentrated on
   a few "home" categories;
3. interactions are drawn by a category random walk — with probability
   ``sequence_stickiness`` the next item stays in the previous item's
   category, otherwise a fresh category is drawn from the user's
   preference.  Timestamps are the walk order.

Step 3 matters: the paper's S-mode sampler assumes that *temporally
adjacent items are correlated* ("items in sequence have clearer
correlations (e.g., similar attributes, or the same category)"), and the
sticky walk instills exactly that structure, so the paper's S-vs-R
comparison is meaningful on synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import ensure_rng
from .interactions import InteractionDataset

__all__ = [
    "SyntheticConfig",
    "generate_dataset",
    "beauty_like",
    "movielens_like",
    "anime_like",
    "DATASET_FACTORIES",
]


@dataclass
class SyntheticConfig:
    """Knobs of the generative model (see module docstring)."""

    name: str = "synthetic"
    num_users: int = 200
    num_items: int = 240
    num_categories: int = 40
    #: mean interactions per user (lognormal around this mean)
    mean_interactions: float = 18.0
    #: spread of the per-user interaction count
    interaction_sigma: float = 0.35
    #: items per category label: min/max extra labels beyond the primary
    min_extra_categories: int = 0
    max_extra_categories: int = 3
    #: Zipf exponent for item popularity (1.0 ≈ classic long tail)
    popularity_exponent: float = 1.0
    #: Dirichlet concentration of user preferences over categories
    #: (smaller → users focus on fewer categories)
    preference_concentration: float = 0.08
    #: number of "home" categories that receive extra preference mass
    home_categories: int = 3
    #: probability that the next interaction stays in the same category
    sequence_stickiness: float = 0.6
    #: mixing weight between preference-driven and popularity-driven choice
    popularity_mix: float = 0.25
    seed: int = 0


def generate_dataset(config: SyntheticConfig) -> InteractionDataset:
    """Run the generative model and return the dataset (pre-filtering)."""
    rng = ensure_rng(config.seed)
    n_users, n_items, n_cats = (
        config.num_users,
        config.num_items,
        config.num_categories,
    )
    if min(n_users, n_items, n_cats) <= 0:
        raise ValueError("users, items and categories must all be positive")

    # --- items: popularity + multi-label categories --------------------
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    popularity = ranks ** (-config.popularity_exponent)
    popularity /= popularity.sum()
    # Shuffle so popularity is not correlated with item id.
    popularity = popularity[rng.permutation(n_items)]

    item_categories: list[frozenset[int]] = []
    primary = rng.integers(0, n_cats, size=n_items)
    for i in range(n_items):
        extra_count = int(
            rng.integers(config.min_extra_categories, config.max_extra_categories + 1)
        )
        labels = {int(primary[i])}
        if extra_count:
            labels |= set(
                int(c) for c in rng.choice(n_cats, size=extra_count, replace=False)
            )
        item_categories.append(frozenset(labels))

    # Index: category -> item ids carrying that label (primary or extra).
    category_items: list[list[int]] = [[] for _ in range(n_cats)]
    for item, labels in enumerate(item_categories):
        for c in labels:
            category_items[c].append(item)
    category_items_arr = [np.asarray(ids, dtype=np.int64) for ids in category_items]
    non_empty = [c for c in range(n_cats) if len(category_items[c])]

    # --- users: Dirichlet preferences with a few home categories -------
    preference = rng.dirichlet(
        np.full(n_cats, config.preference_concentration), size=n_users
    )
    for u in range(n_users):
        homes = rng.choice(non_empty, size=min(config.home_categories, len(non_empty)), replace=False)
        boost = np.zeros(n_cats)
        boost[homes] = rng.dirichlet(np.ones(len(homes)))
        preference[u] = 0.4 * preference[u] + 0.6 * boost
        # Zero mass on empty categories, renormalize.
        empty = np.setdiff1d(np.arange(n_cats), np.asarray(non_empty))
        preference[u, empty] = 0.0
        preference[u] /= preference[u].sum()

    # --- interactions: sticky category walk ----------------------------
    rows: list[tuple[int, int, int]] = []
    for u in range(n_users):
        count = int(
            np.clip(
                rng.lognormal(
                    np.log(config.mean_interactions), config.interaction_sigma
                ),
                4,
                n_items * 0.8,
            )
        )
        seen: set[int] = set()
        current_category: int | None = None
        timestamp = 0
        attempts = 0
        while len(seen) < count and attempts < count * 30:
            attempts += 1
            if current_category is None or rng.random() > config.sequence_stickiness:
                current_category = int(
                    rng.choice(n_cats, p=preference[u])
                )
            candidates = category_items_arr[current_category]
            if candidates.shape[0] == 0:
                current_category = None
                continue
            weights = popularity[candidates]
            mixed = (1 - config.popularity_mix) + config.popularity_mix * (
                weights / weights.max()
            )
            mixed = mixed / mixed.sum()
            item = int(rng.choice(candidates, p=mixed))
            if item in seen:
                # Category exhausted for this user — hop elsewhere.
                current_category = None
                continue
            seen.add(item)
            rows.append((u, item, timestamp))
            timestamp += 1

    interactions = np.asarray(rows, dtype=np.int64)
    return InteractionDataset(
        name=config.name,
        num_users=n_users,
        num_items=n_items,
        interactions=interactions,
        item_categories=item_categories,
        num_categories=n_cats,
    )


def _scaled(base: int, scale: float, minimum: int = 12) -> int:
    return max(minimum, int(round(base * scale)))


def beauty_like(scale: float = 1.0, seed: int = 11) -> InteractionDataset:
    """Sparse, category-rich dataset (the Amazon-Beauty analogue).

    Sparsest of the three presets and with the largest category
    vocabulary, mirroring Beauty's 213 categories / 1.3e-4 density role
    in the paper (the regime where LkP's gains are largest).
    """
    config = SyntheticConfig(
        name="beauty-like",
        num_users=_scaled(260, scale),
        num_items=_scaled(340, scale),
        # Beauty must stay the category-richest preset at every scale
        # (the paper's 213 > 43 > 18 ordering), hence the high floor.
        num_categories=_scaled(64, scale, minimum=48),
        mean_interactions=15.0,
        interaction_sigma=0.30,
        min_extra_categories=1,
        max_extra_categories=4,
        preference_concentration=0.05,
        home_categories=4,
        sequence_stickiness=0.65,
        seed=seed,
    )
    return generate_dataset(config)


def movielens_like(scale: float = 1.0, seed: int = 12) -> InteractionDataset:
    """Dense dataset with few, broad genres (the ML-1M analogue)."""
    config = SyntheticConfig(
        name="ml-like",
        num_users=_scaled(150, scale),
        num_items=_scaled(110, scale),
        num_categories=18,
        mean_interactions=32.0,
        interaction_sigma=0.35,
        min_extra_categories=0,
        max_extra_categories=2,
        preference_concentration=0.15,
        home_categories=3,
        sequence_stickiness=0.55,
        seed=seed,
    )
    return generate_dataset(config)


def anime_like(scale: float = 1.0, seed: int = 13) -> InteractionDataset:
    """Middle-density dataset with a mid-sized tag vocabulary (Anime)."""
    config = SyntheticConfig(
        name="anime-like",
        num_users=_scaled(200, scale),
        num_items=_scaled(160, scale),
        num_categories=43,
        mean_interactions=22.0,
        interaction_sigma=0.35,
        min_extra_categories=1,
        max_extra_categories=4,
        preference_concentration=0.10,
        home_categories=3,
        sequence_stickiness=0.60,
        seed=seed,
    )
    return generate_dataset(config)


DATASET_FACTORIES = {
    "beauty-like": beauty_like,
    "ml-like": movielens_like,
    "anime-like": anime_like,
}
