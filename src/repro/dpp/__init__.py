"""``repro.dpp`` — Determinantal Point Process machinery.

Implements everything the LkP criterion stands on:

* :mod:`~repro.dpp.esp` — elementary symmetric polynomials: the paper's
  Algorithm 1, a brute-force reference, and a differentiable
  Newton-identities form used during training;
* :mod:`~repro.dpp.kdpp` — exact k-DPP and standard-DPP distributions
  (probabilities, enumeration, Kulesza–Taskar sampling) plus the
  differentiable ``log P_k(S)`` of Eq. 4; both distributions offer a
  dense O(M³) path and a low-rank dual-kernel O(M r²) path
  (``from_factors``) for catalog-scale serving;
* :mod:`~repro.dpp.kernels` — the quality × diversity kernel assembly of
  Eq. 2 / Eq. 13, the :class:`~repro.dpp.kernels.LowRankKernel` factored
  representation, and the Gaussian-similarity E-variant kernel;
* :mod:`~repro.dpp.diversity_kernel` — the Eq. 3 learner for the
  pre-trained low-rank diversity kernel ``K = V^T V``;
* :mod:`~repro.dpp.map_inference` — fast greedy MAP (Chen et al. 2018)
  for diversified list generation.
"""

from .diversity_kernel import (
    DiversityKernelConfig,
    DiversityKernelLearner,
    category_jaccard_kernel,
)
from .esp import (
    batched_differentiable_log_esp,
    batched_esp_leave_one_out,
    batched_esp_table,
    batched_log_esp,
    differentiable_esps,
    differentiable_log_esp,
    differentiable_log_esp_newton,
    elementary_symmetric_polynomials,
    esp_bruteforce,
    esp_from_power_sums,
    esp_leave_one_out,
    esp_table,
    log_esp,
)
from .kdpp import (
    KDPP,
    StandardDPP,
    batched_log_kdpp_probability,
    batched_sample_elementary_shared,
    batched_sample_elementary_stacked,
    kdpp_spectrum_scale,
    log_kdpp_probability,
    select_eigenvectors_from_esp_table,
    validate_psd_kernel,
)
from .kernels import (
    QUALITY_TRANSFORMS,
    LowRankKernel,
    batched_gaussian_similarity_kernel,
    batched_quality_diversity_kernel,
    exp_quality,
    gaussian_similarity_kernel,
    gaussian_similarity_kernel_np,
    identity_quality,
    quality_diversity_kernel,
    quality_diversity_kernel_np,
    sigmoid_quality,
)
from .map_inference import (
    batched_greedy_map_shared,
    batched_greedy_map_shared_session,
    batched_greedy_map_stacked,
    batched_greedy_map_stacked_session,
    greedy_map,
    greedy_map_reference,
)

__all__ = [
    "KDPP",
    "StandardDPP",
    "log_kdpp_probability",
    "batched_log_kdpp_probability",
    "validate_psd_kernel",
    "kdpp_spectrum_scale",
    "select_eigenvectors_from_esp_table",
    "batched_sample_elementary_shared",
    "batched_sample_elementary_stacked",
    "elementary_symmetric_polynomials",
    "log_esp",
    "batched_log_esp",
    "esp_table",
    "esp_bruteforce",
    "esp_from_power_sums",
    "differentiable_esps",
    "differentiable_log_esp",
    "differentiable_log_esp_newton",
    "esp_leave_one_out",
    "batched_esp_table",
    "batched_esp_leave_one_out",
    "batched_differentiable_log_esp",
    "LowRankKernel",
    "quality_diversity_kernel",
    "quality_diversity_kernel_np",
    "batched_quality_diversity_kernel",
    "gaussian_similarity_kernel",
    "gaussian_similarity_kernel_np",
    "batched_gaussian_similarity_kernel",
    "exp_quality",
    "sigmoid_quality",
    "identity_quality",
    "QUALITY_TRANSFORMS",
    "DiversityKernelConfig",
    "DiversityKernelLearner",
    "category_jaccard_kernel",
    "greedy_map",
    "greedy_map_reference",
    "batched_greedy_map_shared",
    "batched_greedy_map_stacked",
    "batched_greedy_map_shared_session",
    "batched_greedy_map_stacked_session",
]
