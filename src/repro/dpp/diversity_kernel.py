"""Learning the diversity kernel K (Eq. 3 of the paper).

The paper pre-trains a user-independent, low-rank diversity kernel
``K = V^T V`` so that category-diverse item subsets receive larger
log-determinants:

    J = sum_{(T+, T-)} log det(K_{T+}) - log det(K_{T-}),

where ``T+`` is an observed *diverse* subset (broad category coverage)
mined from interaction histories and ``T-`` is a paired less-diverse /
negative subset.  K is then **frozen** while the LkP criterion trains the
recommendation model — its role is purely to let the tailored k-DPP
compare diversity across target subsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor, functional as F, nn, optim

__all__ = ["DiversityKernelConfig", "DiversityKernelLearner", "category_jaccard_kernel"]


@dataclass
class DiversityKernelConfig:
    """Hyper-parameters for the Eq. 3 learner.

    Attributes
    ----------
    rank:
        Low-rank dimension of ``V`` (must be >= the subset sizes used in
        training pairs, otherwise log det(K_T) is -inf by construction).
    lr / epochs / batch_size:
        Adam settings for maximizing J.
    l2:
        Weight decay on V; keeps kernel magnitudes bounded.
    jitter:
        Diagonal stabilizer added inside log det.
    """

    rank: int = 32
    lr: float = 0.05
    epochs: int = 30
    batch_size: int = 64
    l2: float = 1e-4
    jitter: float = 1e-4
    init_std: float = 0.3
    #: constrain item factors to the unit sphere during training.  Without
    #: this, Eq. 3 admits a degenerate solution: grow the norms of items
    #: that appear in diverse sets and shrink the others, maximizing the
    #: objective through per-item *magnitudes* (a popularity prior) while
    #: learning no angular (category) structure at all — we measured ~0
    #: correlation between the unconstrained kernel and category overlap.
    #: Unit rows force the log-determinants to measure angular volume, so
    #: the learned entries become genuine similarities.
    unit_norm: bool = True
    #: Margin bounding the per-pair objective.  The raw Eq. 3 objective is
    #: unbounded: ``-log det(K_{T-})`` keeps rewarding pushing T- toward
    #: *linear dependence* (not similarity!), collapsing item factors into
    #: degenerate subspaces whose near-singular submatrices later saturate
    #: the LkP jitter floor and destroy relevance gradients.  With a
    #: margin, each pair contributes ``softplus(margin - gap)``: once a
    #: pair's volume gap reaches the margin it stops exerting pressure.
    #: Set to None for the raw unbounded objective (ablations).
    margin: float | None = 6.0
    seed: int = 0


@dataclass
class DiversityKernelResult:
    """Training record: objective trajectory for inspection/tests."""

    objective_per_epoch: list[float] = field(default_factory=list)


class DiversityKernelLearner:
    """Learns ``K = V^T V`` from (diverse, non-diverse) subset pairs."""

    def __init__(self, num_items: int, config: DiversityKernelConfig | None = None) -> None:
        self.num_items = num_items
        self.config = config or DiversityKernelConfig()
        rng = np.random.default_rng(self.config.seed)
        # V is stored item-major (num_items x rank): K_T = V_T V_T^T.
        self.factors = nn.Parameter(
            rng.normal(0.0, self.config.init_std, size=(num_items, self.config.rank)),
            name="diversity_factors",
        )
        self.result = DiversityKernelResult()

    # ------------------------------------------------------------------
    def _gather_factors(self, items: np.ndarray) -> Tensor:
        """Item factor rows, optionally projected onto the unit sphere."""
        rows = F.gather_rows(self.factors, items)
        if not self.config.unit_norm:
            return rows
        norms = (rows * rows).sum(axis=1, keepdims=True).clip(1e-12, np.inf).sqrt()
        return rows / norms

    def _pair_objective(self, positive: np.ndarray, negative: np.ndarray) -> Tensor:
        """``log det(K_{T+}) - log det(K_{T-})`` for one training pair."""
        jitter = self.config.jitter
        v_pos = self._gather_factors(positive)
        v_neg = self._gather_factors(negative)
        gram_pos = v_pos @ v_pos.transpose()
        gram_neg = v_neg @ v_neg.transpose()
        return F.logdet_psd(gram_pos, jitter=jitter) - F.logdet_psd(
            gram_neg, jitter=jitter
        )

    def fit(
        self,
        pairs: list[tuple[np.ndarray, np.ndarray]],
        rng: np.random.Generator | None = None,
    ) -> DiversityKernelResult:
        """Maximize Eq. 3 over the given (T+, T-) pairs with Adam.

        Parameters
        ----------
        pairs:
            List of ``(diverse_item_ids, less_diverse_item_ids)`` index
            arrays.  Subset sizes may vary between pairs but each array
            must not exceed ``config.rank`` (the low-rank kernel cannot
            assign positive determinants to larger sets).
        """
        if not pairs:
            raise ValueError("diversity kernel training needs at least one pair")
        for positive, negative in pairs:
            for subset in (positive, negative):
                if len(subset) > self.config.rank:
                    raise ValueError(
                        f"subset of size {len(subset)} exceeds kernel rank "
                        f"{self.config.rank}; raise DiversityKernelConfig.rank"
                    )
        rng = rng or np.random.default_rng(self.config.seed)
        optimizer = optim.Adam(
            [self.factors], lr=self.config.lr, weight_decay=self.config.l2
        )
        margin = self.config.margin
        order = np.arange(len(pairs))
        for _ in range(self.config.epochs):
            rng.shuffle(order)
            epoch_objective = 0.0
            for start in range(0, len(order), self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                loss: Tensor | None = None
                for pair_index in batch:
                    positive, negative = pairs[pair_index]
                    gap = self._pair_objective(
                        np.asarray(positive, dtype=np.int64),
                        np.asarray(negative, dtype=np.int64),
                    )
                    term = -gap if margin is None else F.softplus(-(gap - margin))
                    loss = term if loss is None else loss + term
                loss = loss * (1.0 / len(batch))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_objective += -loss.item() * len(batch)
            self.result.objective_per_epoch.append(epoch_objective / len(order))
        return self.result

    # ------------------------------------------------------------------
    def kernel(self, normalize: str = "correlation", shrink: float = 0.0) -> np.ndarray:
        """The full ``num_items x num_items`` diversity kernel (frozen copy).

        Parameters
        ----------
        normalize:
            ``"correlation"`` (default) rescales to unit diagonal,
            ``K'_ij = K_ij / sqrt(K_ii K_jj)``.  DPP diversity-kernel
            entries are "measurements of pairwise similarity"; leaving the
            diagonal free would let per-item magnitudes act as a global,
            user-independent popularity prior inside Eq. 2, polluting the
            quality term's personalization (we observed exactly this
            degrading relevance).  ``"none"`` returns the raw ``V V^T``.
        shrink:
            Multiply off-diagonal entries by ``1 - shrink`` (0 disables).
            Equivalent to blending with the identity; keeps every
            submatrix well conditioned so the quality (relevance) signal
            always retains gradient even for maximally similar item sets.
        """
        if normalize not in ("correlation", "none"):
            raise ValueError(f"normalize must be 'correlation' or 'none', got {normalize!r}")
        if not 0.0 <= shrink < 1.0:
            raise ValueError(f"shrink must be in [0, 1), got {shrink}")
        v = self.factors.data
        if self.config.unit_norm:
            v = v / np.clip(np.linalg.norm(v, axis=1, keepdims=True), 1e-12, None)
        kernel = v @ v.T
        if normalize == "correlation":
            diagonal = np.sqrt(np.clip(np.diagonal(kernel), 1e-12, None))
            kernel = kernel / np.outer(diagonal, diagonal)
        if shrink:
            diagonal_values = np.diagonal(kernel).copy()
            kernel = kernel * (1.0 - shrink)
            np.fill_diagonal(kernel, diagonal_values)
        return kernel

    def factors_normalized(
        self, normalize: str = "correlation", shrink: float = 0.0
    ) -> np.ndarray:
        """Factors whose Gram is :meth:`kernel` with the same arguments.

        Correlation-normalizing ``K = V Vᵀ`` to unit diagonal is exactly
        row-normalizing ``V`` (``K_ij / sqrt(K_ii K_jj) = v̂_i · v̂_j``), so
        the serving-side dual-kernel machinery (:class:`LowRankKernel`,
        ``KDPP.from_factors``, the factor path of ``greedy_map``) and the
        LkP criterion can gather r-dimensional factor rows instead of
        slicing — or ever materializing — the M×M kernel.

        ``shrink > 0`` blends toward the (scaled) identity while keeping
        the diagonal, ``K' = (1 - s) V̂ V̂ᵀ + s Diag(diag(V̂ V̂ᵀ))``, which
        *is* factorable — at the cost of rank: the returned matrix is
        ``[√(1-s) V̂ | √s Diag(√diag)]`` of shape ``(M, r + M)``.  Row
        gathers over small ground sets (the LkP criterion's use) stay
        cheap; catalog-scale dual serving should keep ``shrink = 0``,
        where the rank stays r.
        """
        if normalize not in ("correlation", "none"):
            raise ValueError(f"normalize must be 'correlation' or 'none', got {normalize!r}")
        if not 0.0 <= shrink < 1.0:
            raise ValueError(f"shrink must be in [0, 1), got {shrink}")
        v = self.factors.data
        if self.config.unit_norm or normalize == "correlation":
            v = v / np.clip(np.linalg.norm(v, axis=1, keepdims=True), 1e-12, None)
        v = np.array(v, dtype=np.float64, copy=True)
        if shrink:
            diagonal = (v**2).sum(axis=1)
            augmentation = np.zeros((v.shape[0], v.shape[0]), dtype=np.float64)
            np.fill_diagonal(augmentation, np.sqrt(shrink * diagonal))
            v = np.concatenate([np.sqrt(1.0 - shrink) * v, augmentation], axis=1)
        return v

    def submatrix(self, items: np.ndarray, normalize: str = "correlation") -> np.ndarray:
        """``K`` restricted to ``items`` without materializing all of K."""
        v = self.factors.data[np.asarray(items, dtype=np.int64)]
        if self.config.unit_norm:
            v = v / np.clip(np.linalg.norm(v, axis=1, keepdims=True), 1e-12, None)
        kernel = v @ v.T
        if normalize == "correlation":
            diagonal = np.sqrt(np.clip(np.diagonal(kernel), 1e-12, None))
            kernel = kernel / np.outer(diagonal, diagonal)
        elif normalize != "none":
            raise ValueError(f"normalize must be 'correlation' or 'none', got {normalize!r}")
        return kernel


def category_jaccard_kernel(
    item_categories: list[set[int]], scale: float = 1.0, floor: float = 0.05
) -> np.ndarray:
    """A closed-form diversity kernel from category overlap.

    DPP kernel entries measure pairwise *similarity* — subsets of mutually
    similar items then get small determinants and diverse subsets large
    ones.  Here ``K_ij = floor + scale * Jaccard(C_i, C_j)`` (diagonal
    ``floor + scale``), projected to the PSD cone.  Not used by the paper
    itself, but provides (a) a deterministic reference kernel for tests
    and (b) an ablation point: how much of LkP's diversity gain comes from
    *learning* K versus just encoding category similarity directly.
    """
    m = len(item_categories)
    categories = sorted({c for cats in item_categories for c in cats})
    column_of = {c: j for j, c in enumerate(categories)}
    # Binary membership matrix Z: one matmul gives every pairwise
    # intersection size, replacing the O(M²) Python set loop.  Counts are
    # small integers, exact in float64, so this matches the loop bitwise.
    membership = np.zeros((m, max(len(categories), 1)), dtype=np.float64)
    for i, cats in enumerate(item_categories):
        for c in cats:
            membership[i, column_of[c]] = 1.0
    sizes = membership.sum(axis=1)
    intersection = membership @ membership.T
    union = sizes[:, None] + sizes[None, :] - intersection
    jaccard = np.divide(
        intersection, union, out=np.zeros((m, m), dtype=np.float64), where=union > 0
    )
    kernel = floor + scale * jaccard
    np.fill_diagonal(kernel, floor + scale)
    # Similarity matrices built this way may be indefinite; project onto
    # the PSD cone by clipping negative eigenvalues.
    eigenvalues, eigenvectors = np.linalg.eigh(kernel)
    eigenvalues = np.clip(eigenvalues, 1e-8, None)
    return (eigenvectors * eigenvalues) @ eigenvectors.T
