"""Elementary symmetric polynomials (ESPs).

The k-DPP normalization constant (Eq. 6 of the paper) is the k-th
elementary symmetric polynomial of the kernel eigenvalues:

    Z_k = sum_{|S| = k} det(L_S) = e_k(lambda_1, ..., lambda_m).

Three routes are provided:

* :func:`elementary_symmetric_polynomials` — the paper's Algorithm 1, the
  O(m k) recursion on eigenvalues.  Used by all analysis / sampling code.
* :func:`differentiable_log_esp` — the training-time normalizer.  It
  eigendecomposes the kernel, runs Algorithm 1 (whose recursion has *no
  subtractions*, hence no cancellation for PSD kernels) and backpropagates
  analytically: ``d e_k / d lambda_i`` is the leave-one-out polynomial
  ``e_{k-1}(lambda_{-i})`` and, because ``log e_k`` is a symmetric
  function of the spectrum, the kernel gradient is simply
  ``U diag(d log e_k / d lambda) U^T`` — exact even with degenerate
  eigenvalues.
* :func:`esp_from_power_sums` / :func:`differentiable_log_esp_newton` —
  Newton's identities on power-sum traces ``p_i = tr(L^i)``.
  Algebraically identical and expressed purely in matmul/trace autodiff
  primitives, but subject to catastrophic cancellation when the spectrum
  is spread out; retained as an independent cross-check for the tests and
  as a pedagogical alternative.
* :func:`esp_bruteforce` — literal enumeration of all k-subsets, used by
  the property-based tests as ground truth.

The ``batched_*`` variants vectorize Algorithm 1 and its leave-one-out
gradient over a leading batch axis, so a whole minibatch of ground-set
spectra shares one recursion: :func:`batched_differentiable_log_esp` is
the normalizer behind the fused LkP training path.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..autodiff import Tensor, functional as F

__all__ = [
    "elementary_symmetric_polynomials",
    "log_esp",
    "batched_log_esp",
    "esp_table",
    "esp_bruteforce",
    "esp_from_power_sums",
    "esp_leave_one_out",
    "differentiable_log_esp",
    "differentiable_log_esp_newton",
    "differentiable_esps",
    "batched_esp_table",
    "batched_esp_leave_one_out",
    "batched_differentiable_log_esp",
]


def esp_table(eigenvalues: np.ndarray, k: int) -> np.ndarray:
    """Algorithm 1's full DP table ``E[l, m] = e_l(lambda_1..lambda_m)``.

    Row ``l``, column ``m`` holds the l-th ESP of the first ``m``
    eigenvalues.  The table (not just the corner) is needed by the k-DPP
    sampler, which walks it backwards to decide which eigenvector to keep.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    m = eigenvalues.shape[0]
    if not 0 <= k <= m:
        raise ValueError(f"k must be in [0, {m}], got {k}")
    table = np.zeros((k + 1, m + 1), dtype=np.float64)
    table[0, :] = 1.0
    for level in range(1, k + 1):
        for upto in range(1, m + 1):
            table[level, upto] = (
                table[level, upto - 1]
                + eigenvalues[upto - 1] * table[level - 1, upto - 1]
            )
    return table


def elementary_symmetric_polynomials(eigenvalues: np.ndarray, k: int) -> float:
    """``e_k`` of the eigenvalues — the paper's Algorithm 1 output."""
    return float(esp_table(eigenvalues, k)[k, -1])


def log_esp(eigenvalues: np.ndarray, k: int) -> float:
    """``log e_k`` of a PSD spectrum, stable across extreme dynamic ranges.

    The dominant term of ``e_k`` is the product of the top-k eigenvalues,
    so the spectrum is rescaled by their geometric mean before running
    Algorithm 1 (``e_k(λ / c) = e_k(λ) / c^k``) — the same stabilization
    the differentiable normalizer uses.  This is the log-space normalizer
    behind :meth:`KDPP.log_subset_probability`: determinants and ``e_k``
    values far outside float64 range stay finite here.  Returns ``-inf``
    when ``e_k = 0`` (fewer than k nonzero eigenvalues).
    """
    eigenvalues = np.clip(np.asarray(eigenvalues, dtype=np.float64), 0.0, None)
    m = eigenvalues.shape[0]
    if not 0 <= k <= m:
        raise ValueError(f"k must be in [0, {m}], got {k}")
    if k == 0:
        return 0.0
    top_k = np.sort(eigenvalues)[-k:]
    if top_k[0] <= 0.0:
        return -np.inf
    scale = float(np.exp(np.mean(np.log(top_k))))
    e_k = elementary_symmetric_polynomials(eigenvalues / scale, k)
    if e_k <= 0.0:  # pragma: no cover - only reachable through round-off
        return -np.inf
    return float(np.log(e_k) + k * np.log(scale))


def batched_log_esp(eigenvalues: np.ndarray, k: int | np.ndarray) -> np.ndarray:
    """``log e_k`` of every PSD spectrum in a ``(B, m)`` stack.

    The numpy-side serving twin of :func:`log_esp` — the batched k-DPP
    normalizer behind :class:`repro.serving.KDPPServer`.  ``k`` may be a
    scalar or a ``(B,)`` integer array (heterogeneous request sizes).
    Per-row numerics mirror :func:`log_esp` exactly: clip the spectrum at
    zero, rescale by the geometric mean of the top-k eigenvalues, run
    Algorithm 1 — vectorized over the batch through
    :func:`batched_esp_table`, whose recursion is elementwise identical
    to the per-row :func:`esp_table`.  Rows with fewer than k nonzero
    eigenvalues come back ``-inf`` (``e_k = 0``), matching the scalar
    path.
    """
    eigenvalues = np.clip(np.asarray(eigenvalues, dtype=np.float64), 0.0, None)
    if eigenvalues.ndim != 2:
        raise ValueError(f"expected (B, m) eigenvalues, got {eigenvalues.shape}")
    batch, m = eigenvalues.shape
    ks = np.broadcast_to(np.asarray(k, dtype=np.int64), (batch,))
    if np.any(ks < 0) or np.any(ks > m):
        raise ValueError(f"every k must be in [0, {m}], got {np.unique(ks)}")
    out = np.full(batch, -np.inf, dtype=np.float64)
    sorted_rows = np.sort(eigenvalues, axis=1)
    # Per-row scale via the exact expression of log_esp so a server batch
    # reproduces the one-request-at-a-time normalizers bit for bit.
    scales = np.ones(batch, dtype=np.float64)
    live = np.zeros(batch, dtype=bool)
    for row in range(batch):
        k_row = int(ks[row])
        if k_row == 0:
            out[row] = 0.0
            continue
        top_k = sorted_rows[row, m - k_row :]
        if top_k[0] <= 0.0:
            continue  # rank below k: e_k = 0, stays -inf
        scales[row] = float(np.exp(np.mean(np.log(top_k))))
        live[row] = True
    if not np.any(live):
        return out
    max_k = int(ks[live].max())
    table = batched_esp_table(eigenvalues / scales[:, None], max_k)
    e_k = table[np.arange(batch), np.minimum(ks, max_k), -1]
    with np.errstate(divide="ignore"):
        values = np.log(e_k) + ks * np.log(scales)
    positive = live & (e_k > 0.0)
    out[positive] = values[positive]
    return out


def esp_bruteforce(eigenvalues: np.ndarray, k: int) -> float:
    """Sum of all k-fold eigenvalue products, by direct enumeration."""
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    if k == 0:
        return 1.0
    return float(
        sum(np.prod(combo) for combo in itertools.combinations(eigenvalues, k))
    )


def esp_from_power_sums(power_sums: np.ndarray, k: int) -> np.ndarray:
    """Newton's identities: ESPs ``e_0..e_k`` from power sums ``p_1..p_k``.

    ``j * e_j = sum_{i=1}^{j} (-1)^{i-1} e_{j-i} p_i``.
    """
    power_sums = np.asarray(power_sums, dtype=np.float64)
    if power_sums.shape[0] < k:
        raise ValueError(f"need {k} power sums, got {power_sums.shape[0]}")
    esps = np.zeros(k + 1, dtype=np.float64)
    esps[0] = 1.0
    for j in range(1, k + 1):
        total = 0.0
        for i in range(1, j + 1):
            total += (-1.0) ** (i - 1) * esps[j - i] * power_sums[i - 1]
        esps[j] = total / j
    return esps


def differentiable_esps(kernel: Tensor, k: int) -> list[Tensor]:
    """ESPs ``[e_0, ..., e_k]`` of the eigenvalues of ``kernel``.

    Built from traces of matrix powers through Newton's identities —
    every step is an autodiff primitive, so the result participates in
    backpropagation.  The cost is ``k`` matrix products on the small
    ``(k + n)``-sized ground-set kernel, matching the O((k+n)k) budget the
    paper quotes for Algorithm 1 up to the matmul factor.
    """
    power_sums = F.power_sum_traces(kernel, k)
    esps: list[Tensor] = [Tensor(1.0)]
    for j in range(1, k + 1):
        total: Tensor | None = None
        for i in range(1, j + 1):
            term = esps[j - i] * power_sums[i - 1]
            if i % 2 == 0:
                term = -term
            total = term if total is None else total + term
        esps.append(total * (1.0 / j))
    return esps


def esp_leave_one_out(eigenvalues: np.ndarray, k: int) -> np.ndarray:
    """``e_{k-1}`` of the eigenvalues *excluding* index i, for every i.

    Needed for the gradient ``d e_k / d lambda_i = e_{k-1}(lambda_{-i})``.
    Computed in O(m k) with a prefix table (Algorithm 1 left-to-right) and
    a suffix table (right-to-left), convolving the two at each position:
    ``e_{k-1}(-i) = sum_{a+b=k-1} e_a(prefix before i) e_b(suffix after i)``.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    m = eigenvalues.shape[0]
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    # prefix[l, i] = e_l(lambda_0 .. lambda_{i-1})
    prefix = esp_table(eigenvalues, k - 1) if k > 1 else np.ones((1, m + 1))
    # suffix[l, j] = e_l(lambda_{m-j} .. lambda_{m-1})
    suffix = (
        esp_table(eigenvalues[::-1], k - 1) if k > 1 else np.ones((1, m + 1))
    )
    out = np.zeros(m, dtype=np.float64)
    for i in range(m):
        total = 0.0
        for a in range(k):
            b = k - 1 - a
            total += prefix[a, i] * suffix[b, m - 1 - i]
        out[i] = total
    return out


def differentiable_log_esp(kernel: Tensor, k: int, clip_negative: bool = True) -> Tensor:
    """``log e_k(eigenvalues of kernel)``, differentiable and stable.

    The training-time form of the k-DPP normalizer (Eq. 6).  Forward:
    eigendecompose, rescale the spectrum by its mean (``e_k(c mu) =
    c^k e_k(mu)`` — guards against overflow when Eq. 13's exponential
    qualities are large), run Algorithm 1.  Backward: ``log e_k`` is a
    symmetric spectral function, so the gradient with respect to the
    (symmetric PSD) kernel is ``U diag(e_{k-1}(lambda_{-i}) / e_k) U^T``
    — exact for repeated eigenvalues, no eigenvector derivatives needed.
    """
    m = kernel.shape[0]
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    matrix = np.asarray(kernel.data, dtype=np.float64)
    symmetrized = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(symmetrized)
    if clip_negative:
        eigenvalues = np.clip(eigenvalues, 0.0, None)
    elif eigenvalues.min() < 0:
        raise np.linalg.LinAlgError(
            f"kernel has negative eigenvalue {eigenvalues.min():.3e}"
        )
    # Scale by the geometric mean of the top-k eigenvalues: the dominant
    # term of e_k is their product, so e_k(lambda / c) is O(1) and neither
    # underflows nor overflows even when Eq. 13's exponential qualities
    # spread the spectrum across hundreds of orders of magnitude.
    top_k = eigenvalues[-k:]
    if top_k[0] <= 0:
        raise FloatingPointError(
            f"kernel rank is below k={k}; increase the jitter or lower k"
        )
    scale = float(np.exp(np.mean(np.log(top_k))))
    scaled = eigenvalues / scale
    e_k = elementary_symmetric_polynomials(scaled, k)
    if e_k <= 0:
        raise FloatingPointError(
            f"e_{k} evaluated non-positive ({e_k:.3e}); the kernel rank is "
            f"likely below k={k} — increase the jitter or lower k"
        )
    value = np.log(e_k) + k * np.log(scale)
    # d log e_k / d lambda_i, computed in the scaled domain then rescaled.
    leave_one_out = esp_leave_one_out(scaled, k)
    d_log = leave_one_out / e_k / scale

    def backward(g: np.ndarray):
        grad = (eigenvectors * (float(g) * d_log)) @ eigenvectors.T
        return ((kernel, grad),)

    return Tensor._make(np.asarray(value), (kernel,), backward)


def batched_esp_table(eigenvalues: np.ndarray, k: int) -> np.ndarray:
    """Algorithm 1's DP table for a stack of spectra.

    ``eigenvalues`` is ``(B, m)``; the result is ``(B, k + 1, m + 1)``
    with ``table[b, l, j] = e_l(eigenvalues[b, :j])``.  The recursion runs
    once over the eigenvalue axis with every level and batch element
    updated in a single vectorized step, replacing B independent
    ``esp_table`` calls.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    if eigenvalues.ndim != 2:
        raise ValueError(f"expected (B, m) eigenvalues, got {eigenvalues.shape}")
    batch, m = eigenvalues.shape
    if not 0 <= k <= m:
        raise ValueError(f"k must be in [0, {m}], got {k}")
    table = np.zeros((batch, k + 1, m + 1), dtype=np.float64)
    table[:, 0, :] = 1.0
    for upto in range(1, m + 1):
        lam = eigenvalues[:, upto - 1, None]
        table[:, 1:, upto] = table[:, 1:, upto - 1] + lam * table[:, :k, upto - 1]
    return table


def batched_esp_leave_one_out(eigenvalues: np.ndarray, k: int) -> np.ndarray:
    """``e_{k-1}`` excluding index i, for every i of every batch element.

    The batched form of :func:`esp_leave_one_out`: prefix and suffix
    tables are built with :func:`batched_esp_table` and convolved in one
    einsum-free broadcast, yielding the ``(B, m)`` gradient factors
    ``d e_k / d lambda_{b,i} = e_{k-1}(lambda_{b,-i})``.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    if eigenvalues.ndim != 2:
        raise ValueError(f"expected (B, m) eigenvalues, got {eigenvalues.shape}")
    batch, m = eigenvalues.shape
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    if k == 1:
        return np.ones((batch, m), dtype=np.float64)
    # prefix[b, a, i] = e_a(lambda_{b,0} .. lambda_{b,i-1});
    # suffix[b, b', j] = e_{b'}(last j eigenvalues of row b).
    prefix = batched_esp_table(eigenvalues, k - 1)
    suffix = batched_esp_table(eigenvalues[:, ::-1], k - 1)
    # out[b, i] = sum_a prefix[b, a, i] * suffix[b, k-1-a, m-1-i]:
    # flip the level axis and re-index the count axis so the sum becomes
    # an elementwise product reduced over the level dimension.
    aligned_suffix = suffix[:, ::-1, m - 1 :: -1]
    return (prefix[:, :, :m] * aligned_suffix).sum(axis=1)


def batched_differentiable_log_esp(
    kernels: Tensor, k: int, clip_negative: bool = True
) -> Tensor:
    """``log e_k`` of every kernel in a ``(B, m, m)`` stack, differentiably.

    The fused-training form of :func:`differentiable_log_esp`: one stacked
    ``eigh`` factorizes the whole minibatch, the ESP recursion and its
    leave-one-out gradient run vectorized over the batch axis, and the
    backward pass rebuilds all B kernel gradients with two batched
    matmuls.  Per-element numerics (spectrum clipping, geometric-mean
    rescaling by the top-k eigenvalues, the gradient identity
    ``U diag(e_{k-1}(lambda_{-i}) / e_k) U^T``) match the per-instance
    reference exactly.
    """
    if kernels.ndim != 3 or kernels.shape[-1] != kernels.shape[-2]:
        raise ValueError(f"expected stacked (B, m, m) kernels, got {kernels.shape}")
    m = kernels.shape[-1]
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    matrices = np.asarray(kernels.data, dtype=np.float64)
    symmetrized = 0.5 * (matrices + np.swapaxes(matrices, -1, -2))
    eigenvalues, eigenvectors = np.linalg.eigh(symmetrized)
    if clip_negative:
        eigenvalues = np.clip(eigenvalues, 0.0, None)
    elif eigenvalues.min() < 0:
        raise np.linalg.LinAlgError(
            f"kernel has negative eigenvalue {eigenvalues.min():.3e}"
        )
    top_k = eigenvalues[:, -k:]
    if np.any(top_k[:, 0] <= 0):
        raise FloatingPointError(
            f"a kernel in the batch has rank below k={k}; increase the "
            "jitter or lower k"
        )
    scale = np.exp(np.mean(np.log(top_k), axis=1))
    scaled = eigenvalues / scale[:, None]
    e_k = batched_esp_table(scaled, k)[:, k, -1]
    if np.any(e_k <= 0):
        raise FloatingPointError(
            f"e_{k} evaluated non-positive for a kernel in the batch; its "
            f"rank is likely below k={k} — increase the jitter or lower k"
        )
    value = np.log(e_k) + k * np.log(scale)
    d_log = batched_esp_leave_one_out(scaled, k) / e_k[:, None] / scale[:, None]

    def backward(g: np.ndarray):
        weights = np.asarray(g, dtype=np.float64)[:, None] * d_log
        grad = (eigenvectors * weights[:, None, :]) @ np.swapaxes(
            eigenvectors, -1, -2
        )
        return ((kernels, grad),)

    return Tensor._make(value, (kernels,), backward)


def differentiable_log_esp_newton(kernel: Tensor, k: int) -> Tensor:
    """``log e_k`` via Newton's identities in pure autodiff primitives.

    Exact in exact arithmetic but subject to cancellation for spread-out
    spectra; used by the tests as an independent derivation and suitable
    for well-conditioned kernels.  The kernel is pre-scaled by
    ``c = tr(L) / m`` with the exact correction ``k log c`` added back.
    """
    m = kernel.shape[0]
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}], got {k}")
    scale = F.trace(kernel) * (1.0 / m)
    if scale.item() <= 0:
        raise ValueError(
            "kernel has non-positive trace; quality scores must be positive"
        )
    scaled = kernel * (1.0 / scale)
    e_k = differentiable_esps(scaled, k)[k]
    if e_k.item() <= 0:
        raise FloatingPointError(
            f"e_{k} evaluated non-positive ({e_k.item():.3e}); the kernel is "
            "too ill-conditioned for the Newton-identity recursion"
        )
    return e_k.log() + scale.log() * float(k)
