"""The k-DPP distribution (Kulesza & Taskar 2011) and the standard DPP.

A k-DPP conditions a DPP on the sampled set having cardinality exactly
``k``; the paper's tailored k-DPP (Eq. 4) places this distribution over a
small ``k + n`` ground set so that the observed target subset competes
only against same-sized subsets — the property that gives the criterion
its ranking interpretation.

:class:`KDPP` here is the exact, numpy-side object used for analysis
(Figure 4's probability groups, sampling, tests); the differentiable
training path lives in :func:`log_kdpp_probability` /
:mod:`repro.losses.lkp` and shares the same math through
:mod:`repro.dpp.esp`.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from .esp import (
    batched_differentiable_log_esp,
    differentiable_log_esp,
    elementary_symmetric_polynomials,
    esp_table,
)

__all__ = [
    "KDPP",
    "StandardDPP",
    "log_kdpp_probability",
    "batched_log_kdpp_probability",
    "validate_psd_kernel",
]


def validate_psd_kernel(
    kernel: np.ndarray,
    tol: float = 1e-8,
    eigenvalues: np.ndarray | None = None,
) -> np.ndarray:
    """Check symmetry and positive semi-definiteness of a DPP kernel.

    Callers that eigendecompose the kernel anyway (both DPP constructors,
    the batched training path) pass their ``eigenvalues`` in so validation
    reuses the spectrum instead of running a second ``eigvalsh``.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
        raise ValueError(f"kernel must be square, got shape {kernel.shape}")
    if not np.allclose(kernel, kernel.T, atol=tol):
        raise ValueError("kernel must be symmetric")
    if eigenvalues is None:
        eigenvalues = np.linalg.eigvalsh(kernel)
    smallest = float(np.min(eigenvalues))
    if smallest < -tol * max(1.0, np.abs(kernel).max()):
        raise ValueError(
            f"kernel must be positive semi-definite (min eigenvalue {smallest:.3e})"
        )
    return kernel


class KDPP:
    """Exact k-DPP over a (small) ground set described by an L-ensemble.

    Parameters
    ----------
    kernel:
        The ``m x m`` PSD L-ensemble kernel (``L^{(u, k+n)}`` of Eq. 4).
    k:
        Cardinality of the distribution's subsets.
    validate:
        When True (default) the kernel is checked for symmetry / PSD-ness.
    """

    def __init__(self, kernel: np.ndarray, k: int, validate: bool = True) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError(f"kernel must be square, got shape {kernel.shape}")
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        # Validation reuses the spectrum: one eigh serves both the PSD
        # check and the normalizer/sampler tables.
        self.kernel = (
            validate_psd_kernel(kernel, eigenvalues=eigenvalues) if validate else kernel
        )
        self.ground_size = self.kernel.shape[0]
        if not 1 <= k <= self.ground_size:
            raise ValueError(
                f"k must be in [1, {self.ground_size}], got {k}"
            )
        self.k = k
        self._eigenvectors = eigenvectors
        # Clip tiny negative eigenvalues produced by floating point.
        self._eigenvalues = np.clip(eigenvalues, 0.0, None)
        self._normalizer = elementary_symmetric_polynomials(self._eigenvalues, k)

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    @property
    def normalizer(self) -> float:
        """``Z_k = e_k(eigenvalues)`` — Eq. 6."""
        return self._normalizer

    @property
    def eigenvalues(self) -> np.ndarray:
        return self._eigenvalues

    def subset_determinant(self, subset: Sequence[int]) -> float:
        subset = self._check_subset(subset, require_size_k=False)
        sub = self.kernel[np.ix_(subset, subset)]
        return float(np.linalg.det(sub))

    def subset_probability(self, subset: Sequence[int]) -> float:
        """``P(S) = det(L_S) / Z_k`` for a k-sized subset (Eq. 4)."""
        subset = self._check_subset(subset, require_size_k=True)
        return max(self.subset_determinant(subset), 0.0) / self._normalizer

    def log_subset_probability(self, subset: Sequence[int]) -> float:
        probability = self.subset_probability(subset)
        if probability <= 0.0:
            return -np.inf
        return math.log(probability)

    def enumerate_probabilities(self) -> dict[frozenset[int], float]:
        """Probability of every k-subset.  Exponential — small sets only.

        The paper enumerates C(10, 5) = 252 subsets per ground set for its
        Figure 4 analysis; this mirrors that computation exactly.
        """
        if self.ground_size > 16:
            raise ValueError(
                "refusing to enumerate subsets of a ground set larger than 16 "
                f"items (got {self.ground_size})"
            )
        table: dict[frozenset[int], float] = {}
        for combo in itertools.combinations(range(self.ground_size), self.k):
            table[frozenset(combo)] = self.subset_probability(combo)
        return table

    def _check_subset(self, subset: Sequence[int], require_size_k: bool) -> list[int]:
        subset = [int(i) for i in subset]
        if len(set(subset)) != len(subset):
            raise ValueError(f"subset contains duplicates: {subset}")
        if any(i < 0 or i >= self.ground_size for i in subset):
            raise ValueError(
                f"subset indices must be in [0, {self.ground_size}), got {subset}"
            )
        if require_size_k and len(subset) != self.k:
            raise ValueError(
                f"k-DPP subsets must have size {self.k}, got {len(subset)}"
            )
        return subset

    # ------------------------------------------------------------------
    # Sampling (Kulesza & Taskar, Algorithms 1 & 8)
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> list[int]:
        """Draw an exact k-DPP sample.

        Phase 1 selects exactly ``k`` eigenvectors by walking the ESP
        table backwards (this is where the k-DPP differs from a standard
        DPP, which flips an independent coin per eigenvector); phase 2 is
        the shared elementary-DPP projection sampler.
        """
        vectors = self._select_k_eigenvectors(rng)
        return _sample_from_elementary(vectors, rng)

    def _select_k_eigenvectors(self, rng: np.random.Generator) -> np.ndarray:
        table = esp_table(self._eigenvalues, self.k)
        remaining = self.k
        chosen: list[int] = []
        for index in range(self.ground_size, 0, -1):
            if remaining == 0:
                break
            # Probability that eigenvector `index - 1` is in the selection
            # given `remaining` picks are left among the first `index`.
            denominator = table[remaining, index]
            if denominator <= 0:
                continue
            include = (
                self._eigenvalues[index - 1]
                * table[remaining - 1, index - 1]
                / denominator
            )
            if rng.random() < include:
                chosen.append(index - 1)
                remaining -= 1
        if remaining != 0:  # pragma: no cover - only with degenerate kernels
            raise RuntimeError(
                "k-DPP eigenvector selection failed; kernel rank is likely "
                f"below k={self.k}"
            )
        return self._eigenvectors[:, chosen]


class StandardDPP:
    """The unconditioned L-ensemble DPP: ``P(S) = det(L_S) / det(L + I)``.

    Included both as the substrate the k-DPP conditions on and to
    reproduce the paper's ablation showing that standard-DPP probabilities
    (which let subsets of *different* sizes compete) make a poor ranking
    criterion.
    """

    def __init__(self, kernel: np.ndarray, validate: bool = True) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError(f"kernel must be square, got shape {kernel.shape}")
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        self.kernel = (
            validate_psd_kernel(kernel, eigenvalues=eigenvalues) if validate else kernel
        )
        self.ground_size = self.kernel.shape[0]
        self._eigenvectors = eigenvectors
        self._eigenvalues = np.clip(eigenvalues, 0.0, None)
        self._log_normalizer = float(np.log1p(self._eigenvalues).sum())

    @property
    def log_normalizer(self) -> float:
        """``log det(L + I)``, computed from eigenvalues for stability."""
        return self._log_normalizer

    def subset_probability(self, subset: Iterable[int]) -> float:
        subset = [int(i) for i in subset]
        if len(subset) == 0:
            return math.exp(-self._log_normalizer)
        sub = self.kernel[np.ix_(subset, subset)]
        det = max(float(np.linalg.det(sub)), 0.0)
        return det * math.exp(-self._log_normalizer)

    def sample(self, rng: np.random.Generator) -> list[int]:
        """Exact DPP sample: independent eigenvector coins + projection."""
        keep = rng.random(self.ground_size) < self._eigenvalues / (
            1.0 + self._eigenvalues
        )
        vectors = self._eigenvectors[:, keep]
        if vectors.shape[1] == 0:
            return []
        return _sample_from_elementary(vectors, rng)


def _sample_from_elementary(vectors: np.ndarray, rng: np.random.Generator) -> list[int]:
    """Sample from the elementary (projection) DPP spanned by ``vectors``.

    Standard iterative procedure: pick an item with probability
    proportional to the squared row norms of the current basis, then
    project the basis onto the complement of the coordinate direction just
    used.  Returns exactly ``vectors.shape[1]`` distinct items.
    """
    basis = vectors.copy()
    sample: list[int] = []
    while basis.shape[1] > 0:
        row_norms = (basis**2).sum(axis=1)
        total = row_norms.sum()
        if total <= 0:  # pragma: no cover - degenerate basis
            raise RuntimeError("elementary DPP sampler ran out of mass")
        probabilities = row_norms / total
        item = int(rng.choice(len(probabilities), p=probabilities))
        sample.append(item)
        # Project the basis orthogonally to e_item.
        row = basis[item, :]
        pivot = int(np.argmax(np.abs(row)))
        pivot_column = basis[:, pivot].copy()
        pivot_value = row[pivot]
        basis = basis - np.outer(pivot_column, row / pivot_value)
        basis = np.delete(basis, pivot, axis=1)
        # Re-orthonormalize to keep row norms meaningful.
        if basis.shape[1] > 0:
            q, _ = np.linalg.qr(basis)
            basis = q
    return sample


def log_kdpp_probability(kernel: Tensor, subset: Sequence[int], k: int) -> Tensor:
    """Differentiable ``log P_k(S) = log det(L_S) - log e_k(lambda(L))``.

    This is the training-time form of Eq. 4: ``kernel`` is the autodiff
    tensor holding the personalized ground-set kernel, so gradients flow
    into the model's quality scores (and into item embeddings for the
    E-variant kernels).

    A stacked ``(B, m, m)`` kernel with a ``(B, k)`` subset array routes
    through :func:`batched_log_kdpp_probability`, returning all B
    log-probabilities from one fused graph.
    """
    if kernel.ndim == 3:
        return batched_log_kdpp_probability(kernel, np.asarray(subset), k)
    subset = [int(i) for i in subset]
    if len(subset) != k:
        raise ValueError(f"subset size {len(subset)} != k={k}")
    sub = kernel[np.ix_(subset, subset)]
    return F.logdet_psd(sub) - differentiable_log_esp(kernel, k)


def batched_log_kdpp_probability(
    kernels: Tensor, subsets: np.ndarray, k: int
) -> Tensor:
    """``log P_k(S_b)`` for every kernel of a ``(B, m, m)`` stack (Eq. 4).

    ``subsets`` is a ``(B, k)`` integer array of per-instance target
    positions.  One stacked Cholesky covers all the numerators and one
    stacked eigendecomposition (inside the batched ESP normalizer) covers
    all the denominators, replacing B per-instance graphs with a single
    fused one.
    """
    subsets = np.asarray(subsets, dtype=np.int64)
    if kernels.ndim != 3:
        raise ValueError(f"expected stacked (B, m, m) kernels, got {kernels.shape}")
    if subsets.shape != (kernels.shape[0], k):
        raise ValueError(
            f"subsets shape {subsets.shape} does not match "
            f"(batch={kernels.shape[0]}, k={k})"
        )
    sub = F.gather_submatrices(kernels, subsets)
    return F.logdet_psd(sub) - batched_differentiable_log_esp(kernels, k)
