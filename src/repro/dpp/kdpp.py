"""The k-DPP distribution (Kulesza & Taskar 2011) and the standard DPP.

A k-DPP conditions a DPP on the sampled set having cardinality exactly
``k``; the paper's tailored k-DPP (Eq. 4) places this distribution over a
small ``k + n`` ground set so that the observed target subset competes
only against same-sized subsets — the property that gives the criterion
its ranking interpretation.

:class:`KDPP` here is the exact, numpy-side object used for analysis
(Figure 4's probability groups, sampling, tests); the differentiable
training path lives in :func:`log_kdpp_probability` /
:mod:`repro.losses.lkp` and shares the same math through
:mod:`repro.dpp.esp`.

Both distributions support two constructions:

* the **dense** path (``__init__``) eigendecomposes the full ``M × M``
  kernel — exact for anything, O(M³);
* the **dual** path (``from_factors``) takes the ``(M, r)`` factor matrix
  ``B`` of a low-rank kernel ``L = B Bᵀ`` and works entirely off the
  ``r × r`` dual kernel ``C = Bᵀ B`` (Gartrell, Paquet & Koenigstein):
  ``C`` shares the nonzero spectrum of ``L``, so normalizers, subset
  probabilities and exact sampling cost O(M r²) — the serving-scale fast
  path for the paper's rank-32 kernels.

The two paths are parity-pinned by ``tests/test_lowrank_dual.py``: same
float64 probabilities and, under a shared seeded RNG, the same samples.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from .esp import (
    batched_differentiable_log_esp,
    differentiable_log_esp,
    esp_table,
    log_esp,
)
from .kernels import LowRankKernel

__all__ = [
    "KDPP",
    "StandardDPP",
    "log_kdpp_probability",
    "batched_log_kdpp_probability",
    "validate_psd_kernel",
    "kdpp_spectrum_scale",
    "select_eigenvectors_from_esp_table",
    "batched_sample_elementary_shared",
    "batched_sample_elementary_stacked",
]


def validate_psd_kernel(
    kernel: np.ndarray,
    tol: float = 1e-8,
    eigenvalues: np.ndarray | None = None,
) -> np.ndarray:
    """Check symmetry and positive semi-definiteness of a DPP kernel.

    Callers that eigendecompose the kernel anyway (both DPP constructors,
    the batched training path) pass their ``eigenvalues`` in so validation
    reuses the spectrum instead of running a second ``eigvalsh``.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
        raise ValueError(f"kernel must be square, got shape {kernel.shape}")
    if not np.allclose(kernel, kernel.T, atol=tol):
        raise ValueError("kernel must be symmetric")
    if eigenvalues is None:
        eigenvalues = np.linalg.eigvalsh(kernel)
    smallest = float(np.min(eigenvalues))
    if smallest < -tol * max(1.0, np.abs(kernel).max()):
        raise ValueError(
            f"kernel must be positive semi-definite (min eigenvalue {smallest:.3e})"
        )
    return kernel


def _as_lowrank(factors: np.ndarray | LowRankKernel) -> LowRankKernel:
    if isinstance(factors, LowRankKernel):
        return factors
    return LowRankKernel(factors)


def _subset_log_determinant(
    kernel: np.ndarray | None,
    lowrank: LowRankKernel | None,
    subset: list[int],
) -> float:
    """``log det(L_S)`` via ``slogdet``; ``-inf`` for singular subsets.

    Shared by both distributions.  Log-space is the whole point: a
    well-conditioned submatrix whose determinant is below ~1e-308
    (routine when Eq. 13's exponential qualities are small) keeps an
    exact finite log-determinant here where ``np.linalg.det`` collapses
    to 0.  On the low-rank path the submatrix is a Gram of factor rows,
    and any subset larger than the rank is exactly singular.
    """
    if len(subset) == 0:
        return 0.0
    if lowrank is not None:
        if len(subset) > lowrank.rank:
            return -np.inf  # rank(L_S) <= r < |S|, det exactly 0
        sub = lowrank.gram_rows(np.asarray(subset, dtype=np.int64))
    else:
        sub = kernel[np.ix_(subset, subset)]
    sign, logdet = np.linalg.slogdet(sub)
    if sign <= 0.0:
        return -np.inf
    return float(logdet)


def _exp_or_inf(log_value: float) -> float:
    """``exp`` that saturates to ``inf``/``0`` instead of raising.

    The linear-domain accessors (``normalizer``, ``subset_determinant``)
    are conveniences around log-space state; for spectra whose ``e_k`` or
    determinant exceeds float64 range they should degrade the way the
    pre-log-space code did (to ``inf``), not crash.
    """
    if log_value == -np.inf:
        return 0.0
    try:
        return math.exp(log_value)
    except OverflowError:
        return math.inf


class KDPP:
    """Exact k-DPP over a ground set described by an L-ensemble.

    Parameters
    ----------
    kernel:
        The ``m x m`` PSD L-ensemble kernel (``L^{(u, k+n)}`` of Eq. 4).
    k:
        Cardinality of the distribution's subsets.
    validate:
        When True (default) the kernel is checked for symmetry / PSD-ness.

    For low-rank kernels use :meth:`from_factors`, which never touches an
    ``M × M`` matrix (``self.kernel`` is then ``None``).
    """

    def __init__(self, kernel: np.ndarray, k: int, validate: bool = True) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError(f"kernel must be square, got shape {kernel.shape}")
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        # Validation reuses the spectrum: one eigh serves both the PSD
        # check and the normalizer/sampler tables.
        self.kernel = (
            validate_psd_kernel(kernel, eigenvalues=eigenvalues) if validate else kernel
        )
        self.ground_size = self.kernel.shape[0]
        self._lowrank: LowRankKernel | None = None
        if not 1 <= k <= self.ground_size:
            raise ValueError(
                f"k must be in [1, {self.ground_size}], got {k}"
            )
        self.k = k
        self._eigenvectors = eigenvectors
        # Clip tiny negative eigenvalues produced by floating point.
        self._eigenvalues = np.clip(eigenvalues, 0.0, None)
        self._log_normalizer = log_esp(self._eigenvalues, k)
        if not np.isfinite(self._log_normalizer):
            raise ValueError(
                f"kernel rank is below k={k} (e_k of the spectrum is 0); "
                "a k-DPP needs at least k nonzero eigenvalues — add jitter "
                "or lower k"
            )

    @classmethod
    def from_factors(
        cls, factors: np.ndarray | LowRankKernel, k: int
    ) -> "KDPP":
        """Dual-kernel construction from the ``(M, r)`` factors of ``L = B Bᵀ``.

        Everything spectral runs on the ``r × r`` dual ``C = Bᵀ B``: the
        ``e_k`` normalizer needs only the r dual eigenvalues (the other
        ``M - r`` eigenvalues of L are exactly zero and contribute nothing
        to any ESP), and sampling lifts the chosen dual eigenvectors via
        ``v_i = B ĉ_i / sqrt(λ_i)``.  Cost: O(M r² + r³) to build instead
        of O(M³).
        """
        lowrank = _as_lowrank(factors)
        self = cls.__new__(cls)
        self.kernel = None
        self._lowrank = lowrank
        self.ground_size = lowrank.ground_size
        if not 1 <= k <= self.ground_size:
            raise ValueError(f"k must be in [1, {self.ground_size}], got {k}")
        self.k = k
        eigenvalues, _ = lowrank.eigh_dual()
        self._eigenvalues = eigenvalues
        self._eigenvectors = None
        self._log_normalizer = (
            log_esp(eigenvalues, k) if k <= eigenvalues.shape[0] else -np.inf
        )
        if not np.isfinite(self._log_normalizer):
            raise ValueError(
                f"factor rank is below k={k} (e_k of the dual spectrum is 0); "
                "a k-DPP needs at least k nonzero eigenvalues"
            )
        return self

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    @property
    def is_lowrank(self) -> bool:
        return self._lowrank is not None

    @property
    def normalizer(self) -> float:
        """``Z_k = e_k(eigenvalues)`` — Eq. 6 (``inf`` past float64 range)."""
        return _exp_or_inf(self._log_normalizer)

    @property
    def log_normalizer(self) -> float:
        """``log Z_k``, finite even when ``Z_k`` itself over/underflows."""
        return self._log_normalizer

    @property
    def eigenvalues(self) -> np.ndarray:
        """The stored spectrum: all M eigenvalues on the dense path, the r
        dual eigenvalues on the low-rank path (the rest are exactly 0)."""
        return self._eigenvalues

    def subset_log_determinant(self, subset: Sequence[int]) -> float:
        """``log det(L_S)``; see :func:`_subset_log_determinant`."""
        subset = self._check_subset(subset, require_size_k=False)
        return _subset_log_determinant(self.kernel, self._lowrank, subset)

    def subset_determinant(self, subset: Sequence[int]) -> float:
        return _exp_or_inf(self.subset_log_determinant(subset))

    def log_subset_probability(self, subset: Sequence[int]) -> float:
        """``log P(S) = log det(L_S) - log Z_k`` for a k-sized subset."""
        subset = self._check_subset(subset, require_size_k=True)
        return self.subset_log_determinant(subset) - self._log_normalizer

    def subset_probability(self, subset: Sequence[int]) -> float:
        """``P(S) = det(L_S) / Z_k`` for a k-sized subset (Eq. 4)."""
        log_probability = self.log_subset_probability(subset)
        return math.exp(log_probability) if np.isfinite(log_probability) else 0.0

    def enumerate_probabilities(self) -> dict[frozenset[int], float]:
        """Probability of every k-subset.  Exponential — small sets only.

        The paper enumerates C(10, 5) = 252 subsets per ground set for its
        Figure 4 analysis; this mirrors that computation exactly.
        """
        if self.ground_size > 16:
            raise ValueError(
                "refusing to enumerate subsets of a ground set larger than 16 "
                f"items (got {self.ground_size})"
            )
        table: dict[frozenset[int], float] = {}
        for combo in itertools.combinations(range(self.ground_size), self.k):
            table[frozenset(combo)] = self.subset_probability(combo)
        return table

    def _check_subset(self, subset: Sequence[int], require_size_k: bool) -> list[int]:
        subset = [int(i) for i in subset]
        if len(set(subset)) != len(subset):
            raise ValueError(f"subset contains duplicates: {subset}")
        if any(i < 0 or i >= self.ground_size for i in subset):
            raise ValueError(
                f"subset indices must be in [0, {self.ground_size}), got {subset}"
            )
        if require_size_k and len(subset) != self.k:
            raise ValueError(
                f"k-DPP subsets must have size {self.k}, got {len(subset)}"
            )
        return subset

    # ------------------------------------------------------------------
    # Sampling (Kulesza & Taskar, Algorithms 1 & 8)
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> list[int]:
        """Draw an exact k-DPP sample.

        Phase 1 selects exactly ``k`` eigenvectors by walking the ESP
        table backwards (this is where the k-DPP differs from a standard
        DPP, which flips an independent coin per eigenvector); phase 2 is
        the shared elementary-DPP projection sampler.  On the low-rank
        path phase 1 walks only the r dual eigenvalues — the zero modes
        can never be selected — and the chosen eigenvectors are lifted
        from the dual, so a seeded run consumes the same uniform stream
        as the dense sampler and yields the same subset.
        """
        chosen = _select_k_eigenvector_indices(self._eigenvalues, self.k, rng)
        if self._lowrank is not None:
            vectors = self._lowrank.lift_eigenvectors(np.asarray(chosen))
        else:
            vectors = self._eigenvectors[:, chosen]
        return _sample_from_elementary(vectors, rng)


class StandardDPP:
    """The unconditioned L-ensemble DPP: ``P(S) = det(L_S) / det(L + I)``.

    Included both as the substrate the k-DPP conditions on and to
    reproduce the paper's ablation showing that standard-DPP probabilities
    (which let subsets of *different* sizes compete) make a poor ranking
    criterion.  :meth:`from_factors` is the O(M r²) dual-kernel path.
    """

    def __init__(self, kernel: np.ndarray, validate: bool = True) -> None:
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError(f"kernel must be square, got shape {kernel.shape}")
        eigenvalues, eigenvectors = np.linalg.eigh(kernel)
        self.kernel = (
            validate_psd_kernel(kernel, eigenvalues=eigenvalues) if validate else kernel
        )
        self.ground_size = self.kernel.shape[0]
        self._lowrank: LowRankKernel | None = None
        self._eigenvectors = eigenvectors
        self._eigenvalues = np.clip(eigenvalues, 0.0, None)
        self._log_normalizer = float(np.log1p(self._eigenvalues).sum())

    @classmethod
    def from_factors(cls, factors: np.ndarray | LowRankKernel) -> "StandardDPP":
        """Dual-kernel construction from the factors of ``L = B Bᵀ``.

        ``log det(L + I) = Σ log(1 + λ_i)`` needs only the r nonzero
        eigenvalues — the zero modes contribute ``log 1 = 0`` exactly.
        """
        lowrank = _as_lowrank(factors)
        self = cls.__new__(cls)
        self.kernel = None
        self._lowrank = lowrank
        self.ground_size = lowrank.ground_size
        eigenvalues, _ = lowrank.eigh_dual()
        self._eigenvalues = eigenvalues
        self._eigenvectors = None
        self._log_normalizer = float(np.log1p(eigenvalues).sum())
        return self

    @property
    def is_lowrank(self) -> bool:
        return self._lowrank is not None

    @property
    def log_normalizer(self) -> float:
        """``log det(L + I)``, computed from eigenvalues for stability."""
        return self._log_normalizer

    def subset_log_determinant(self, subset: Sequence[int]) -> float:
        """``log det(L_S)``; see :func:`_subset_log_determinant`."""
        subset = [int(i) for i in subset]
        return _subset_log_determinant(self.kernel, self._lowrank, subset)

    def log_subset_probability(self, subset: Iterable[int]) -> float:
        return self.subset_log_determinant(list(subset)) - self._log_normalizer

    def subset_probability(self, subset: Iterable[int]) -> float:
        log_probability = self.log_subset_probability(subset)
        return math.exp(log_probability) if np.isfinite(log_probability) else 0.0

    def sample(self, rng: np.random.Generator) -> list[int]:
        """Exact DPP sample: independent eigenvector coins + projection.

        The dual path draws a full ground-set's worth of coins even though
        only the last r (matching the nonzero, ascending-sorted spectrum)
        can come up heads: the M - r zero eigenvalues keep their
        eigenvectors with probability 0/(1+0) = 0 on the dense path too,
        so a seeded dual run consumes the identical uniform stream and
        returns the same sample as its dense twin.
        """
        coins = rng.random(self.ground_size)
        if self._lowrank is not None:
            # Align the top of the ascending dual spectrum with the top of
            # the dense one.  With more factor columns than items (r > M)
            # the lowest r - M dual eigenvalues are exactly zero — rank(L)
            # <= M — and need no coin at all.
            rank = self._eigenvalues.shape[0]
            count = min(rank, self.ground_size)
            top = self._eigenvalues[rank - count :]
            keep = coins[self.ground_size - count :] < top / (1.0 + top)
            if not np.any(keep):
                return []
            vectors = self._lowrank.lift_eigenvectors(
                np.flatnonzero(keep) + (rank - count)
            )
        else:
            keep = coins < self._eigenvalues / (1.0 + self._eigenvalues)
            vectors = self._eigenvectors[:, keep]
            if vectors.shape[1] == 0:
                return []
        return _sample_from_elementary(vectors, rng)


def kdpp_spectrum_scale(eigenvalues: np.ndarray, k: int) -> float:
    """Geometric mean of the top-k eigenvalues (1.0 for deficient spectra).

    The pre-scaling applied before any ESP-table work: every inclusion
    probability in the sampler is a ratio of ESPs, hence scale-invariant,
    but dividing by this scale keeps the table entries inside float64
    range even for the huge/tiny spectra Eq. 13's exponential qualities
    produce.  Exposed so the batched serving path can reproduce the
    per-request scaling bit for bit.
    """
    top_k = np.sort(np.asarray(eigenvalues, dtype=np.float64))[-k:]
    return float(np.exp(np.mean(np.log(top_k)))) if top_k[0] > 0 else 1.0


def select_eigenvectors_from_esp_table(
    scaled_eigenvalues: np.ndarray,
    table: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> list[int]:
    """Walk a precomputed ESP table backwards (Kulesza & Taskar Alg. 8).

    ``table`` is :func:`~repro.dpp.esp.esp_table` of the scaled spectrum
    (or one row of its batched twin — the recursions are elementwise
    identical, so precomputing tables for a whole request batch leaves
    each request's walk, and hence its RNG stream, unchanged).  One
    uniform is consumed per index whose conditional is well defined.
    """
    m = scaled_eigenvalues.shape[0]
    remaining = k
    chosen: list[int] = []
    for index in range(m, 0, -1):
        if remaining == 0:
            break
        # Probability that eigenvector `index - 1` is in the selection
        # given `remaining` picks are left among the first `index`.
        denominator = table[remaining, index]
        if denominator <= 0:
            continue
        include = (
            scaled_eigenvalues[index - 1] * table[remaining - 1, index - 1] / denominator
        )
        if rng.random() < include:
            chosen.append(index - 1)
            remaining -= 1
    if remaining != 0:  # pragma: no cover - only with degenerate kernels
        raise RuntimeError(
            "k-DPP eigenvector selection failed; kernel rank is likely "
            f"below k={k}"
        )
    return chosen


def _select_k_eigenvector_indices(
    eigenvalues: np.ndarray, k: int, rng: np.random.Generator
) -> list[int]:
    """Phase 1 of k-DPP sampling: pick exactly k eigenvector indices."""
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    scaled = eigenvalues / kdpp_spectrum_scale(eigenvalues, k)
    return select_eigenvectors_from_esp_table(scaled, esp_table(scaled, k), k, rng)


def _sample_from_elementary(vectors: np.ndarray, rng: np.random.Generator) -> list[int]:
    """Sample from the elementary (projection) DPP spanned by ``vectors``.

    Standard iterative procedure: pick an item with probability
    proportional to the squared row norms of the current (orthonormal)
    basis, then restrict the basis to the subspace with zero component
    along the chosen coordinate.  The restriction is a single Householder
    reflection applied from the right — rotate the chosen row onto the
    last coordinate and drop that column — which keeps the basis exactly
    orthonormal in O(M p) per step, replacing the former per-step O(M p²)
    QR re-orthonormalization.  Returns exactly ``vectors.shape[1]``
    distinct items.
    """
    basis = np.array(vectors, dtype=np.float64, copy=True)
    sample: list[int] = []
    for remaining in range(basis.shape[1], 0, -1):
        row_norms = (basis**2).sum(axis=1)
        total = row_norms.sum()
        if total <= 0:  # pragma: no cover - degenerate basis
            raise RuntimeError("elementary DPP sampler ran out of mass")
        item = int(rng.choice(row_norms.shape[0], p=row_norms / total))
        sample.append(item)
        if remaining == 1:
            break
        row = basis[item].copy()
        norm = float(np.linalg.norm(row))
        if norm <= 0:  # pragma: no cover - contradicts a positive pick prob
            raise RuntimeError("chosen item has zero basis row")
        # Householder vector sending the row to ∓||row|| e_last; the sign
        # choice avoids cancellation.  Right-multiplying by the reflection
        # zeroes the item's coordinate in every column but the last, so
        # dropping the last column is exactly the conditioning step.
        reflector = row
        reflector[-1] += math.copysign(norm, row[-1])
        reflector /= np.linalg.norm(reflector)
        basis -= 2.0 * np.outer(basis @ reflector, reflector)
        basis = basis[:, :-1]
    return sample


def _elementary_choice(norms: np.ndarray, rng: np.random.Generator) -> int:
    """One inverse-CDF draw replicating ``rng.choice(m, p=norms/total)``.

    ``Generator.choice`` with a probability vector consumes exactly one
    uniform and inverts the normalized CDF with a right-sided
    ``searchsorted``; doing the same by hand lets the batched samplers
    share a vectorized per-step norm update while each request keeps the
    identical RNG stream (and, away from measure-zero CDF boundaries,
    the identical pick) of the per-request Householder sampler.  The
    inversion runs on the unnormalized CDF — one pass instead of three —
    which matches the normalized form up to the same boundary-width
    caveat.
    """
    cdf = np.cumsum(norms)
    total = cdf[-1]
    if total <= 0:  # pragma: no cover - degenerate basis
        raise RuntimeError("elementary DPP sampler ran out of mass")
    # u < 1 strictly, but u * total can round up to exactly total, where
    # a right-sided search would step past the last item; clamp.  (The
    # normalized form in Generator.choice sidesteps this by construction.)
    index = int(cdf.searchsorted(rng.random() * total, side="right"))
    return min(index, norms.shape[0] - 1)


def _projector_sample_steps(
    row_norm_stack: np.ndarray,
    gather_coordinates,
    apply_direction,
    rngs: Sequence[np.random.Generator],
    steps: int,
) -> list[list[int]]:
    """Shared driver of the batched projector-based elementary samplers.

    Where the per-request sampler conditions by reflecting an explicit
    ``(M, p)`` basis, the batched form tracks each request's subspace as
    a tiny ``p × p`` coordinate matrix ``A`` (projector ``P = G A Gᵀ``
    for the fixed orthonormal basis ``G``): conditioning on item ``j``
    subtracts the rank-one direction ``c = A g_j / sqrt(n_j)`` from
    ``A`` and ``(G c)²`` from the row norms.  All O(ground-size) work —
    computing ``G c`` and updating the norms — is delegated to
    ``apply_direction``, which the callers implement as one batched
    matmul per step for the whole request group.
    """
    batch = row_norm_stack.shape[0]
    coordinate_dim = steps
    projectors = np.broadcast_to(
        np.eye(coordinate_dim), (batch, coordinate_dim, coordinate_dim)
    ).copy()
    samples: list[list[int]] = [[] for _ in range(batch)]
    for step in range(steps):
        items = np.empty(batch, dtype=np.int64)
        for b in range(batch):
            items[b] = _elementary_choice(row_norm_stack[b], rngs[b])
            samples[b].append(int(items[b]))
        if step == steps - 1:
            break
        # g_j = Gᵀ e_j for each request's chosen item, in coordinates.
        g = gather_coordinates(items)  # (B, p)
        picked_norms = row_norm_stack[np.arange(batch), items]
        c = np.einsum("bpq,bq->bp", projectors, g)
        c /= np.sqrt(np.maximum(picked_norms, 1e-300))[:, None]
        projectors -= c[:, :, None] * c[:, None, :]
        # One batched pass updates every request's row norms: n -= (G c)².
        apply_direction(c, row_norm_stack)
        np.maximum(row_norm_stack, 0.0, out=row_norm_stack)
        row_norm_stack[np.arange(batch), items] = 0.0
    return samples


def batched_sample_elementary_shared(
    diversity_factors: np.ndarray,
    quality: np.ndarray,
    coefficients: np.ndarray,
    rngs: Sequence[np.random.Generator],
    gram_products: tuple[np.ndarray, tuple[np.ndarray, np.ndarray]] | None = None,
) -> list[list[int]]:
    """Elementary-DPP samples for a batch of requests sharing one ``V``.

    Each request ``b`` samples the projection DPP spanned by the columns
    of ``G_b = Diag(q_b) V W_b`` — the lifted dual eigenvectors of its
    personalized kernel — where ``V`` is the shared ``(M, r)`` catalog
    factor matrix, ``quality`` is ``(B, M)`` and ``coefficients`` holds
    the ``(B, r, p)`` lift matrices ``W_b`` (columns of ``G_b`` must be
    orthonormal, which the dual lift guarantees).  ``G_b`` is never
    materialized: every per-step quantity factors through ``V``, so the
    O(M) work of a step is a single ``(B, r) @ (r, M)`` matmul for the
    *whole batch* — the batching win over per-request sampling, which
    reads an ``(M, p)`` basis three times per step per request.

    ``gram_products`` optionally passes the catalog's ``(M, r(r+1)/2)``
    symmetric outer-product table (see
    :meth:`repro.serving.ItemCatalog.gram_products`), which turns the
    initial row norms ``n_bi = q_bi² v_iᵀ (W_b W_bᵀ) v_i`` into one
    matmul against precomputed state.

    Each request consumes one uniform per step from its own generator,
    the same stream the per-request sampler uses, so seeded batch
    results reproduce per-user :meth:`KDPP.sample` draws.
    """
    quality = np.asarray(quality, dtype=np.float64)
    batch, ground = quality.shape
    steps = coefficients.shape[2]
    if coefficients.shape != (batch, diversity_factors.shape[1], steps):
        raise ValueError(
            f"coefficients shape {coefficients.shape} does not match "
            f"(batch={batch}, rank={diversity_factors.shape[1]}, p)"
        )
    if len(rngs) != batch:
        raise ValueError(f"need {batch} generators, got {len(rngs)}")
    squared_quality = quality**2
    if gram_products is not None:
        # n_bi = q_bi² · P[i] · vec(W_b W_bᵀ): one (M, tri) @ (tri, B) matmul.
        table, (rows, cols) = gram_products
        projector = np.einsum("brp,bsp->brs", coefficients, coefficients)
        packed = projector[:, rows, cols]
        packed[:, rows != cols] *= 2.0
        norms = np.ascontiguousarray((table @ packed.T).T) * squared_quality
    else:
        flat = coefficients.transpose(1, 0, 2).reshape(
            diversity_factors.shape[1], -1
        )
        lifted = (diversity_factors @ flat).reshape(ground, batch, steps)
        norms = np.ascontiguousarray(
            np.einsum("mbp,mbp->bm", lifted, lifted)
        ) * squared_quality
        del lifted

    def gather_coordinates(items: np.ndarray) -> np.ndarray:
        rows = diversity_factors[items]  # (B, r)
        g = np.einsum("brp,br->bp", coefficients, rows)
        return g * quality[np.arange(batch), items][:, None]

    def apply_direction(c: np.ndarray, norm_stack: np.ndarray) -> None:
        # w_b = Diag(q_b) V (W_b c_b): one shared (B, r) @ (r, M) matmul.
        x = np.einsum("brp,bp->br", coefficients, c)
        w = x @ diversity_factors.T
        w *= quality
        w *= w
        norm_stack -= w

    return _projector_sample_steps(
        norms, gather_coordinates, apply_direction, rngs, steps
    )


def batched_sample_elementary_stacked(
    bases: np.ndarray, rngs: Sequence[np.random.Generator]
) -> list[list[int]]:
    """Elementary-DPP samples from an explicit ``(B, N, p)`` basis stack.

    The candidate-slice twin of :func:`batched_sample_elementary_shared`:
    when each request already gathered its own (small) ground set, the
    orthonormal bases are materialized and every per-step update is one
    batched ``einsum`` over the stack.  Column orthonormality per request
    is assumed (the dual lift provides it); RNG-stream semantics match
    the per-request sampler exactly.
    """
    bases = np.asarray(bases, dtype=np.float64)
    if bases.ndim != 3:
        raise ValueError(f"expected (B, N, p) bases, got {bases.shape}")
    batch, _, steps = bases.shape
    if len(rngs) != batch:
        raise ValueError(f"need {batch} generators, got {len(rngs)}")
    norms = np.einsum("bnp,bnp->bn", bases, bases)

    def gather_coordinates(items: np.ndarray) -> np.ndarray:
        return bases[np.arange(batch), items]

    def apply_direction(c: np.ndarray, norm_stack: np.ndarray) -> None:
        w = np.einsum("bnp,bp->bn", bases, c)
        norm_stack -= w**2

    return _projector_sample_steps(
        norms, gather_coordinates, apply_direction, rngs, steps
    )


def log_kdpp_probability(kernel: Tensor, subset: Sequence[int], k: int) -> Tensor:
    """Differentiable ``log P_k(S) = log det(L_S) - log e_k(lambda(L))``.

    This is the training-time form of Eq. 4: ``kernel`` is the autodiff
    tensor holding the personalized ground-set kernel, so gradients flow
    into the model's quality scores (and into item embeddings for the
    E-variant kernels).

    A stacked ``(B, m, m)`` kernel with a ``(B, k)`` subset array routes
    through :func:`batched_log_kdpp_probability`, returning all B
    log-probabilities from one fused graph.
    """
    if kernel.ndim == 3:
        return batched_log_kdpp_probability(kernel, np.asarray(subset), k)
    subset = [int(i) for i in subset]
    if len(subset) != k:
        raise ValueError(f"subset size {len(subset)} != k={k}")
    sub = kernel[np.ix_(subset, subset)]
    return F.logdet_psd(sub) - differentiable_log_esp(kernel, k)


def batched_log_kdpp_probability(
    kernels: Tensor, subsets: np.ndarray, k: int
) -> Tensor:
    """``log P_k(S_b)`` for every kernel of a ``(B, m, m)`` stack (Eq. 4).

    ``subsets`` is a ``(B, k)`` integer array of per-instance target
    positions.  One stacked Cholesky covers all the numerators and one
    stacked eigendecomposition (inside the batched ESP normalizer) covers
    all the denominators, replacing B per-instance graphs with a single
    fused one.
    """
    subsets = np.asarray(subsets, dtype=np.int64)
    if kernels.ndim != 3:
        raise ValueError(f"expected stacked (B, m, m) kernels, got {kernels.shape}")
    if subsets.shape != (kernels.shape[0], k):
        raise ValueError(
            f"subsets shape {subsets.shape} does not match "
            f"(batch={kernels.shape[0]}, k={k})"
        )
    sub = F.gather_submatrices(kernels, subsets)
    return F.logdet_psd(sub) - batched_differentiable_log_esp(kernels, k)
