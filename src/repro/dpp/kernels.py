"""DPP kernel construction: the quality × diversity decomposition.

Eq. 2 of the paper builds the personalized kernel

    L_u = Diag(y_u) · K · Diag(y_u),

where ``y_u`` are the model's (positive) quality scores for the ground-set
items and ``K`` is a diversity kernel.  Eq. 13 specializes the quality to
``exp(e_u · e_i)``.  This module provides both the differentiable (Tensor)
and plain-numpy versions, the Gaussian similarity kernel used by the
paper's E-variants, and the quality transforms appropriate to each
backbone (exp of a dot product for MF/GCN, a probability for NeuMF/GCMC).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, as_tensor

__all__ = [
    "LowRankKernel",
    "quality_diversity_kernel",
    "quality_diversity_kernel_np",
    "batched_quality_diversity_kernel",
    "gaussian_similarity_kernel",
    "gaussian_similarity_kernel_np",
    "batched_gaussian_similarity_kernel",
    "exp_quality",
    "sigmoid_quality",
    "identity_quality",
    "QUALITY_TRANSFORMS",
]

#: Default clip range applied to raw scores before ``exp``; keeps the
#: kernel entries (products of two exponentials) within float64 range and
#: reproduces the stabilization the paper reports needing.
SCORE_CLIP = 12.0


class LowRankKernel:
    """A PSD kernel ``L = B Bᵀ`` held in factored form — never the M×M Gram.

    ``B`` is the ``(M, r)`` factor matrix.  The paper's kernels are low
    rank by construction: the diversity kernel is ``K = V Vᵀ`` with
    ``r = 32`` (Eq. 3) and the Eq. 2 personalization only rescales rows
    and columns, so ``L = Diag(q) V (Diag(q) V)ᵀ`` keeps rank ≤ r.  All
    catalog-scale inference (spectra, normalizers, sampling, MAP) then
    runs off the ``r × r`` dual kernel ``C = Bᵀ B`` — the Gartrell,
    Paquet & Koenigstein low-rank DPP trick — at O(M r²) instead of
    O(M³).

    The dual eigendecomposition is computed once, lazily, and cached;
    instances are treated as immutable.
    """

    def __init__(self, factors: np.ndarray) -> None:
        factors = np.asarray(factors, dtype=np.float64)
        if factors.ndim != 2:
            raise ValueError(f"factors must be (M, r), got shape {factors.shape}")
        if not np.all(np.isfinite(factors)):
            raise ValueError("factors contain non-finite entries")
        self.factors = factors
        self._dual_spectrum: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_quality_diversity(
        cls, quality: np.ndarray, diversity_factors: np.ndarray
    ) -> "LowRankKernel":
        """Eq. 2 in factored form: ``Diag(q) V`` so ``L = Diag(q) V Vᵀ Diag(q)``."""
        quality = np.asarray(quality, dtype=np.float64)
        diversity_factors = np.asarray(diversity_factors, dtype=np.float64)
        if quality.ndim != 1:
            raise ValueError(f"quality must be a vector, got shape {quality.shape}")
        if diversity_factors.ndim != 2 or diversity_factors.shape[0] != quality.shape[0]:
            raise ValueError(
                f"diversity factors shape {diversity_factors.shape} does not "
                f"match quality length {quality.shape[0]}"
            )
        return cls(quality[:, None] * diversity_factors)

    # ------------------------------------------------------------------
    @property
    def ground_size(self) -> int:
        return self.factors.shape[0]

    @property
    def rank(self) -> int:
        """Upper bound on the kernel rank (the factor width r)."""
        return self.factors.shape[1]

    def diagonal(self) -> np.ndarray:
        """``diag(L)`` — the squared factor row norms."""
        return (self.factors**2).sum(axis=1)

    def gram_rows(self, items: np.ndarray) -> np.ndarray:
        """The submatrix ``L[items, items]`` as a Gram of factor rows."""
        rows = self.factors[np.asarray(items, dtype=np.int64)]
        return rows @ rows.T

    def dense(self) -> np.ndarray:
        """Materialize the full ``M × M`` kernel (tests / small fallbacks only)."""
        return self.factors @ self.factors.T

    def dual(self) -> np.ndarray:
        """The ``r × r`` dual kernel ``C = Bᵀ B``."""
        return self.factors.T @ self.factors

    def eigh_dual(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of the dual kernel, cached.

        Returns ``(eigenvalues, dual_vectors)`` with eigenvalues ascending
        and clipped at zero.  ``C = Bᵀ B`` and ``L = B Bᵀ`` share their
        nonzero spectrum, so these r eigenvalues *are* the kernel's
        spectrum — the remaining ``M - r`` eigenvalues are exactly zero.
        """
        if self._dual_spectrum is None:
            eigenvalues, dual_vectors = np.linalg.eigh(self.dual())
            self._dual_spectrum = (np.clip(eigenvalues, 0.0, None), dual_vectors)
        return self._dual_spectrum

    def lift_eigenvectors(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Primal eigenvectors ``v_i = B ĉ_i / sqrt(λ_i)`` for nonzero λ_i.

        ``indices`` selects dual eigenpairs (default: all with λ > 0); the
        lifted columns are orthonormal eigenvectors of ``L = B Bᵀ``.
        """
        eigenvalues, dual_vectors = self.eigh_dual()
        if indices is None:
            indices = np.flatnonzero(eigenvalues > 0.0)
        indices = np.asarray(indices, dtype=np.int64)
        selected = eigenvalues[indices]
        if np.any(selected <= 0.0):
            raise ValueError("cannot lift eigenvectors of zero eigenvalues")
        return (self.factors @ dual_vectors[:, indices]) / np.sqrt(selected)


def quality_diversity_kernel(quality: Tensor, diversity: Tensor | np.ndarray) -> Tensor:
    """Differentiable ``L = Diag(q) K Diag(q)`` (Eq. 2).

    ``quality`` is a length-m tensor of positive scores; ``diversity`` may
    be a fixed numpy kernel (default LkP variants, where K is pre-learned
    and frozen) or a tensor (E-variants, where K depends on trainable item
    embeddings).
    """
    quality = as_tensor(quality)
    if quality.ndim != 1:
        raise ValueError(f"quality must be a vector, got shape {quality.shape}")
    m = quality.shape[0]
    diversity = as_tensor(diversity)
    if diversity.shape != (m, m):
        raise ValueError(
            f"diversity kernel shape {diversity.shape} does not match "
            f"quality length {m}"
        )
    column = quality.reshape(m, 1)
    row = quality.reshape(1, m)
    return column * diversity * row


def batched_quality_diversity_kernel(
    quality: Tensor, diversity: Tensor | np.ndarray
) -> Tensor:
    """Stacked Eq. 2: ``L_b = Diag(q_b) K_b Diag(q_b)`` for a whole batch.

    ``quality`` is ``(B, m)``, ``diversity`` ``(B, m, m)`` (a fixed numpy
    stack for the pre-learned kernels, a tensor for the E-variants).  The
    reweighting is a pair of broadcast multiplies, so one graph node
    covers what the per-instance path spreads over B kernel assemblies.
    """
    quality = as_tensor(quality)
    if quality.ndim != 2:
        raise ValueError(f"quality must be (B, m), got shape {quality.shape}")
    batch, m = quality.shape
    diversity = as_tensor(diversity)
    if diversity.shape != (batch, m, m):
        raise ValueError(
            f"diversity stack shape {diversity.shape} does not match "
            f"quality shape {quality.shape}"
        )
    column = quality.reshape(batch, m, 1)
    row = quality.reshape(batch, 1, m)
    return column * diversity * row


def quality_diversity_kernel_np(quality: np.ndarray, diversity: np.ndarray) -> np.ndarray:
    """Numpy version of Eq. 2 for analysis-side code."""
    quality = np.asarray(quality, dtype=np.float64)
    diversity = np.asarray(diversity, dtype=np.float64)
    return quality[:, None] * diversity * quality[None, :]


def gaussian_similarity_kernel(
    embeddings: Tensor, bandwidth: float = 1.0, jitter: float = 1e-6
) -> Tensor:
    """Differentiable Gaussian (RBF) similarity kernel over item embeddings.

    ``K_ij = exp(-||e_i - e_j||^2 / (2 bandwidth^2))``.  This is the
    paper's "E" diversity-factor formulation: instead of the pre-learned
    K, item embeddings double as feature vectors and the optimization
    pushes them apart.  Gaussian kernels are PSD; a diagonal jitter keeps
    Cholesky factorizations of submatrices stable when two embeddings
    nearly coincide.
    """
    embeddings = as_tensor(embeddings)
    if embeddings.ndim != 2:
        raise ValueError(f"embeddings must be (m, d), got {embeddings.shape}")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    m = embeddings.shape[0]
    squared_norms = (embeddings * embeddings).sum(axis=1)
    gram = embeddings @ embeddings.transpose()
    distances = (
        squared_norms.reshape(m, 1) + squared_norms.reshape(1, m) - gram * 2.0
    )
    # Floating point can make tiny distances slightly negative.
    distances = distances.clip(0.0, np.inf)
    kernel = (distances * (-0.5 / bandwidth**2)).exp()
    return kernel + Tensor(jitter * np.eye(m))


def batched_gaussian_similarity_kernel(
    embeddings: Tensor, bandwidth: float = 1.0, jitter: float = 1e-6
) -> Tensor:
    """Stacked Gaussian kernels over per-instance embedding sets.

    ``embeddings`` is ``(B, m, d)``; the result is a ``(B, m, m)`` stack of
    RBF kernels, one per training instance, computed with a single batched
    Gram matmul.  Numerics (distance clipping, diagonal jitter) mirror
    :func:`gaussian_similarity_kernel` exactly so the fused E-variant path
    matches the per-instance reference.
    """
    embeddings = as_tensor(embeddings)
    if embeddings.ndim != 3:
        raise ValueError(f"embeddings must be (B, m, d), got {embeddings.shape}")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    batch, m, _ = embeddings.shape
    squared_norms = (embeddings * embeddings).sum(axis=2)
    gram = embeddings @ embeddings.mT
    distances = (
        squared_norms.reshape(batch, m, 1)
        + squared_norms.reshape(batch, 1, m)
        - gram * 2.0
    )
    distances = distances.clip(0.0, np.inf)
    kernel = (distances * (-0.5 / bandwidth**2)).exp()
    return kernel + Tensor(jitter * np.eye(m))


def gaussian_similarity_kernel_np(
    embeddings: np.ndarray, bandwidth: float = 1.0, jitter: float = 1e-6
) -> np.ndarray:
    """Numpy Gaussian kernel (evaluation-side twin of the tensor version)."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    squared = (embeddings**2).sum(axis=1)
    distances = squared[:, None] + squared[None, :] - 2.0 * embeddings @ embeddings.T
    np.clip(distances, 0.0, None, out=distances)
    kernel = np.exp(-0.5 * distances / bandwidth**2)
    return kernel + jitter * np.eye(embeddings.shape[0])


def exp_quality(scores: Tensor, clip: float = SCORE_CLIP) -> Tensor:
    """Eq. 13's quality: ``exp(score)`` with clipping for stability."""
    return as_tensor(scores).clip(-clip, clip).exp()


def sigmoid_quality(scores: Tensor, floor: float = 1e-4) -> Tensor:
    """Quality for probability-output backbones (NeuMF, GCMC).

    A small floor keeps the kernel strictly positive definite when the
    classifier is confidently negative about an item.
    """
    return as_tensor(scores).sigmoid() + floor


def identity_quality(scores: Tensor, floor: float = 1e-4) -> Tensor:
    """Pass-through for models that already emit positive quality values."""
    return as_tensor(scores).clip(floor, np.inf)


QUALITY_TRANSFORMS = {
    "exp": exp_quality,
    "sigmoid": sigmoid_quality,
    "identity": identity_quality,
}
