"""Fast greedy MAP inference for DPPs (Chen, Zhang & Zhou, NeurIPS 2018).

The related-work systems the paper cites diversify recommendations by
greedily maximizing ``log det(L_S)``; this module implements the
O(M k^2) incremental-Cholesky version of that greedy algorithm.  In this
reproduction it powers the example applications (generating a diversified
top-k list from a trained model's kernel) and serves as a baseline
post-processing re-ranker to contrast with LkP's in-training approach.

``greedy_map`` also accepts a :class:`~repro.dpp.kernels.LowRankKernel`:
the algorithm only ever touches the kernel's diagonal and one row per
round, and both are inner products of factor rows, so catalog-wide
diversified top-k runs in O(M k (r + k)) without materializing — or even
being handed — the M×M Gram matrix.
"""

from __future__ import annotations

import numpy as np

from .kernels import LowRankKernel

__all__ = [
    "greedy_map",
    "greedy_map_reference",
    "batched_greedy_map_shared",
    "batched_greedy_map_stacked",
    "batched_greedy_map_shared_session",
    "batched_greedy_map_stacked_session",
]


def greedy_map(
    kernel: np.ndarray | LowRankKernel,
    k: int,
    candidates: np.ndarray | None = None,
    epsilon: float = 1e-10,
) -> list[int]:
    """Greedily select ``k`` items maximizing ``log det(L_S)``.

    Implements the fast greedy algorithm: maintain, for every remaining
    item, the squared Cholesky residual ``d_i^2`` (its marginal determinant
    gain) and the partial Cholesky row ``c_i``, updating both in O(1) per
    item per round.

    Parameters
    ----------
    kernel:
        PSD L-ensemble kernel over the full candidate ground set — either
        a dense matrix or a :class:`LowRankKernel`, whose factor inner
        products supply the diagonal and the per-round row on demand.
    k:
        Number of items to select (the paper's fixed result-list size).
    candidates:
        Optional subset of indices to restrict the selection to.
    epsilon:
        Stop early if the best remaining marginal gain falls below this,
        which mirrors the reference implementation's stopping rule.
    """
    factors: np.ndarray | None = None
    if isinstance(kernel, LowRankKernel):
        factors = kernel.factors
        m = kernel.ground_size
    else:
        kernel = np.asarray(kernel, dtype=np.float64)
        m = kernel.shape[0]
    if candidates is None:
        candidates = np.arange(m)
    else:
        candidates = np.asarray(candidates, dtype=np.int64)
    if not 1 <= k <= candidates.shape[0]:
        raise ValueError(
            f"k must be in [1, {candidates.shape[0]}], got {k}"
        )

    num_candidates = candidates.shape[0]
    if factors is not None:
        candidate_factors = factors[candidates]
        di2 = (candidate_factors**2).sum(axis=1)
    else:
        candidate_factors = None
        di2 = kernel[candidates, candidates].copy()
    # cis[j, i]: j-th Cholesky coefficient of candidate i (row-incremental).
    cis = np.zeros((k, num_candidates), dtype=np.float64)

    selected_local = int(np.argmax(di2))
    selected = [selected_local]
    for round_index in range(1, k):
        last = selected_local
        ci_last = cis[:round_index, last]
        di_last = np.sqrt(max(di2[last], epsilon))
        if candidate_factors is not None:
            row = candidate_factors @ candidate_factors[last]
        else:
            row = kernel[candidates[last], candidates]
        eis = (row - ci_last @ cis[:round_index, :]) / di_last
        cis[round_index, :] = eis
        di2 = di2 - eis**2
        di2[selected] = -np.inf  # never re-pick
        selected_local = int(np.argmax(di2))
        if di2[selected_local] < epsilon:
            break
        selected.append(selected_local)
    return [int(candidates[i]) for i in selected]


def _batched_greedy_rounds(
    di2: np.ndarray, row_factor, project, rank: int, k: int, epsilon: float
) -> list[list[int]]:
    """Shared driver of the batched greedy-MAP variants, in factor space.

    ``di2`` is the ``(B, N)`` stack of marginal-gain residuals.  All
    kernels here are low-rank — item ``i`` of request ``b`` is a factor
    row ``b_i ∈ R^r`` — so instead of storing every request's partial
    Cholesky rows (a ``(B, k, N)`` history whose per-round correction
    matmul rereads the whole prefix, O(B·k²·N) traffic over a full run),
    the driver maintains the orthonormal directions ``u_1..u_j ∈ R^r``
    spanning the selected rows.  The classic update

        ``e_i = (L[last, i] - Σ_j c_last,j c_i,j) / d_last``

    collapses exactly to ``e_i = ⟨b_i, u_new⟩`` with
    ``u_new = (b_last - Σ_j ⟨b_last, u_j⟩ u_j) / d_last``: the
    correction becomes an O(B·k·r) Gram–Schmidt step on the tiny
    coefficient state, and the only O(N) work per round is the single
    ``project`` matmul — the same shape the batched sampler pays per
    step.

    ``row_factor(lasts)`` returns the ``(B, r)`` factor rows of the
    per-request last-selected items; ``project(u)`` returns the
    ``(B, N)`` inner products of every item's factor row with each
    request's new direction.  Per-request early stopping mirrors
    :func:`greedy_map` exactly: the first item is always kept, later
    rounds stop a request once its best remaining gain falls below
    ``epsilon`` (other requests keep running).

    Selection bookkeeping is fully vectorized: each round masks the
    just-picked item per request with one fancy-index write and takes
    one batched ``argmax`` over the masked gain stack — no per-request
    python loop (the residual cost the PR 4 Cholesky fusion left
    behind).  For a request that has already stopped, the mask falls on
    its latest (never-kept) argmax instead of a selected item; that row
    is permanently inactive, so its gain state no longer feeds any
    output and the extra masking is harmless.
    """
    batch, _ = di2.shape
    rows_index = np.arange(batch)
    ortho = np.zeros((batch, max(k - 1, 1), rank), dtype=np.float64)
    lasts = np.argmax(di2, axis=1)
    picks = np.empty((batch, k), dtype=np.int64)
    picks[:, 0] = lasts
    counts = np.ones(batch, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    for round_index in range(1, k):
        if not np.any(active):
            break
        di_last = np.sqrt(np.maximum(di2[rows_index, lasts], epsilon))
        residual = row_factor(lasts)
        if round_index > 1:
            previous = ortho[:, : round_index - 1]
            overlaps = np.einsum("bjr,br->bj", previous, residual)
            residual = residual - np.einsum("bj,bjr->br", overlaps, previous)
        direction = residual / di_last[:, None]
        ortho[:, round_index - 1] = direction
        eis = project(direction)
        di2 -= eis**2
        di2[rows_index, lasts] = -np.inf  # masked argmax: never re-pick
        lasts = np.argmax(di2, axis=1)
        active &= di2[rows_index, lasts] >= epsilon
        picks[active, round_index] = lasts[active]
        counts[active] += 1
    return [picks[b, : counts[b]].tolist() for b in range(batch)]


def batched_greedy_map_shared(
    diversity_factors: np.ndarray,
    quality: np.ndarray,
    k: int,
    epsilon: float = 1e-10,
) -> list[list[int]]:
    """Greedy MAP for a batch of kernels sharing one factor matrix ``V``.

    Request ``b``'s kernel is ``L_b = Diag(q_b) V Vᵀ Diag(q_b)`` (Eq. 2);
    the stacked factor matrices are never materialized.  Each round's
    only catalog-sized work is one shared ``(B, r) @ (r, M)`` matmul
    projecting every item onto the round's new Cholesky direction
    (``e_bi = q_bi ⟨v_i, u_b⟩``, see :func:`_batched_greedy_rounds`) —
    the per-round catalog reads that dominate sequential serving are
    paid once per batch instead of once per request, and the former
    ``(B, k, M)`` correction history is fused into an O(B·k·r)
    coefficient update.  Matches per-request
    :func:`greedy_map` on a :class:`LowRankKernel` of the same factors,
    with one caveat: when marginal gains are *exactly* tied (e.g.
    perfectly uniform quality over a unit-diagonal catalog), the two
    paths may break the tie differently — each then returns a valid
    greedy solution, just not the same one.
    """
    diversity_factors = np.asarray(diversity_factors, dtype=np.float64)
    quality = np.asarray(quality, dtype=np.float64)
    batch, ground = quality.shape
    if diversity_factors.shape[0] != ground:
        raise ValueError(
            f"factors cover {diversity_factors.shape[0]} items but quality "
            f"has {ground}"
        )
    if not 1 <= k <= ground:
        raise ValueError(f"k must be in [1, {ground}], got {k}")
    rows_index = np.arange(batch)
    di2 = quality**2 * (diversity_factors**2).sum(axis=1)[None, :]

    def row_factor(lasts: np.ndarray) -> np.ndarray:
        return diversity_factors[lasts] * quality[rows_index, lasts][:, None]

    def project(direction: np.ndarray) -> np.ndarray:
        eis = direction @ diversity_factors.T
        eis *= quality
        return eis

    return _batched_greedy_rounds(
        di2, row_factor, project, diversity_factors.shape[1], k, epsilon
    )


def batched_greedy_map_stacked(
    factor_stack: np.ndarray, k: int, epsilon: float = 1e-10
) -> list[list[int]]:
    """Greedy MAP over an explicit ``(B, N, r)`` per-request factor stack.

    The candidate-slice twin of :func:`batched_greedy_map_shared`: each
    request brings its own (small) gathered ground set and every round is
    a batched ``einsum`` over the stack.
    """
    factor_stack = np.asarray(factor_stack, dtype=np.float64)
    if factor_stack.ndim != 3:
        raise ValueError(f"expected (B, N, r) factors, got {factor_stack.shape}")
    batch, ground, _ = factor_stack.shape
    if not 1 <= k <= ground:
        raise ValueError(f"k must be in [1, {ground}], got {k}")
    di2 = np.einsum("bnr,bnr->bn", factor_stack, factor_stack)

    def row_factor(lasts: np.ndarray) -> np.ndarray:
        return factor_stack[np.arange(batch), lasts]

    def project(direction: np.ndarray) -> np.ndarray:
        return np.einsum("bnr,br->bn", factor_stack, direction)

    return _batched_greedy_rounds(
        di2, row_factor, project, factor_stack.shape[2], k, epsilon
    )


def _batched_greedy_rounds_session(
    di2: np.ndarray,
    row_factor,
    project,
    rank: int,
    k: int,
    epsilon: float,
    seeds: np.ndarray | None = None,
    pins: list | None = None,
    quota: list | None = None,
) -> list[list[int]]:
    """Constrained sibling of :func:`_batched_greedy_rounds`.

    Serves the session-aware requests the plain driver cannot: Gram–
    Schmidt state pre-seeded with conditioning directions, force-included
    pins, and per-category minimum quotas.  Unconstrained groups keep the
    original driver untouched, which is what pins the engine's
    ``alpha=1`` / empty-history bit-parity guarantee.

    ``di2`` must already be deflated against ``seeds`` (the wrappers
    subtract the seed projections); ``seeds`` is a zero-padded
    ``(B, s, r)`` stack of orthonormal directions per request (zero rows
    are inert).  ``pins[b]`` is a local-id array of force-included items
    — they occupy the front of request ``b``'s picks and their
    directions are assumed to be part of ``seeds`` (so their gains are
    zero and they are additionally hard-masked here).  ``quota[b]`` is
    ``None`` or ``(categories, {category: minimum})`` with ``categories``
    a local ``(N,)`` int array: whenever a request's remaining slots are
    all needed to close quota deficits, its argmax is restricted to the
    deficit categories.

    Early-stop rule, uniform across constraints: a request's very first
    pick (no pins) is always kept, matching the plain driver; every
    later pick — quota-restricted or not — requires a gain of at least
    ``epsilon``, so an unsatisfiable quota or an exhausted rank yields a
    partial slate rather than padding with zero-gain items.
    """
    batch, _ = di2.shape
    rows_index = np.arange(batch)
    s_max = 0 if seeds is None else seeds.shape[1]
    ortho = np.zeros((batch, s_max + k, rank), dtype=np.float64)
    if seeds is not None:
        ortho[:, :s_max] = seeds
    filled = s_max
    picks = np.full((batch, k), -1, dtype=np.int64)
    counts = np.zeros(batch, dtype=np.int64)
    cat_counts: list[dict | None] = [None] * batch
    if quota is not None:
        for b, spec in enumerate(quota):
            if spec is not None:
                cat_counts[b] = {}
    if pins is not None:
        for b, pinned in enumerate(pins):
            if pinned is None or len(pinned) == 0:
                continue
            pinned = np.asarray(pinned, dtype=np.int64)
            picks[b, : pinned.shape[0]] = pinned
            counts[b] = pinned.shape[0]
            di2[b, pinned] = -np.inf
            if cat_counts[b] is not None:
                categories = quota[b][0]
                for item in pinned:
                    cat = int(categories[item])
                    cat_counts[b][cat] = cat_counts[b].get(cat, 0) + 1
    active = counts < k
    while np.any(active):
        lasts = np.argmax(di2, axis=1)
        gains = di2[rows_index, lasts]
        if quota is not None:
            for b in np.flatnonzero(active):
                spec = quota[b]
                if spec is None:
                    continue
                categories, minimums = spec
                seen = cat_counts[b]
                deficits = {
                    cat: need - seen.get(cat, 0)
                    for cat, need in minimums.items()
                    if need - seen.get(cat, 0) > 0
                }
                if not deficits:
                    continue
                if sum(deficits.values()) >= k - counts[b]:
                    # Every remaining slot is spoken for: restrict the
                    # pick to categories still short of their minimum.
                    allowed = np.isin(categories, list(deficits))
                    row = np.where(allowed, di2[b], -np.inf)
                    lasts[b] = int(np.argmax(row))
                    gains[b] = row[lasts[b]]
        # The first pick of a pin-less request is always kept (the plain
        # driver's semantics); counts == 0 only ever holds then.
        active &= (gains >= epsilon) | (counts == 0)
        if not np.any(active):
            break
        chosen = rows_index[active]
        picks[chosen, counts[active]] = lasts[active]
        di2[chosen, lasts[active]] = -np.inf
        counts[active] += 1
        for b in chosen:
            if cat_counts[b] is not None:
                cat = int(quota[b][0][lasts[b]])
                cat_counts[b][cat] = cat_counts[b].get(cat, 0) + 1
        active &= counts < k
        if not np.any(active):
            break
        di_last = np.sqrt(np.maximum(gains, epsilon))
        residual = row_factor(lasts)
        residual[~active] = 0.0
        if filled:
            previous = ortho[:, :filled]
            overlaps = np.einsum("bjr,br->bj", previous, residual)
            residual = residual - np.einsum("bj,bjr->br", overlaps, previous)
        direction = residual / di_last[:, None]
        ortho[:, filled] = direction
        filled += 1
        eis = project(direction)
        di2 -= eis**2
    return [picks[b, : counts[b]].tolist() for b in range(batch)]


def _deflate_gains(di2: np.ndarray, projections: np.ndarray) -> np.ndarray:
    """``di2 - Σ_s projections²``, clipped at zero (deflated squared
    norms can dip a few ulp negative)."""
    di2 = di2 - np.einsum("bsn,bsn->bn", projections, projections)
    return np.clip(di2, 0.0, None, out=di2)


def batched_greedy_map_shared_session(
    diversity_factors: np.ndarray,
    quality: np.ndarray,
    k: int,
    seeds: np.ndarray | None = None,
    pins: list | None = None,
    quota: list | None = None,
    epsilon: float = 1e-10,
) -> list[list[int]]:
    """Session/constrained greedy MAP over one shared factor matrix.

    Same kernel family as :func:`batched_greedy_map_shared` (request
    ``b`` scores item ``i`` as ``q_bi v_i``), but the selection is
    conditioned and constrained: ``seeds`` is a zero-padded ``(B, s, r)``
    stack of orthonormal directions (history items already shown, plus
    the span of pinned rows) that are projected out of every marginal
    gain before the first round, ``pins``/``quota`` are forwarded to
    :func:`_batched_greedy_rounds_session`.  With no seeds, pins or
    quotas this computes exactly what the plain shared variant computes
    — but through a separate driver, so the unconstrained serving path
    stays bit-identical to its pre-session behavior.
    """
    diversity_factors = np.asarray(diversity_factors, dtype=np.float64)
    quality = np.asarray(quality, dtype=np.float64)
    batch, ground = quality.shape
    if diversity_factors.shape[0] != ground:
        raise ValueError(
            f"factors cover {diversity_factors.shape[0]} items but quality "
            f"has {ground}"
        )
    if not 1 <= k <= ground:
        raise ValueError(f"k must be in [1, {ground}], got {k}")
    rows_index = np.arange(batch)
    di2 = quality**2 * (diversity_factors**2).sum(axis=1)[None, :]
    if seeds is not None:
        projections = np.einsum("bsr,nr->bsn", seeds, diversity_factors)
        projections *= quality[:, None, :]
        di2 = _deflate_gains(di2, projections)

    def row_factor(lasts: np.ndarray) -> np.ndarray:
        return diversity_factors[lasts] * quality[rows_index, lasts][:, None]

    def project(direction: np.ndarray) -> np.ndarray:
        eis = direction @ diversity_factors.T
        eis *= quality
        return eis

    return _batched_greedy_rounds_session(
        di2,
        row_factor,
        project,
        diversity_factors.shape[1],
        k,
        epsilon,
        seeds=seeds,
        pins=pins,
        quota=quota,
    )


def batched_greedy_map_stacked_session(
    factor_stack: np.ndarray,
    k: int,
    seeds: np.ndarray | None = None,
    pins: list | None = None,
    quota: list | None = None,
    epsilon: float = 1e-10,
) -> list[list[int]]:
    """Session/constrained greedy MAP over a ``(B, N, r)`` factor stack.

    The candidate-slice twin of
    :func:`batched_greedy_map_shared_session`.  The serving engine hands
    it stacks whose rows are already deflated against the request's
    history, so ``seeds`` here carries only the pin directions (an
    orthonormal basis of each request's pinned rows, zero-padded).
    """
    factor_stack = np.asarray(factor_stack, dtype=np.float64)
    if factor_stack.ndim != 3:
        raise ValueError(f"expected (B, N, r) factors, got {factor_stack.shape}")
    batch, ground, _ = factor_stack.shape
    if not 1 <= k <= ground:
        raise ValueError(f"k must be in [1, {ground}], got {k}")
    di2 = np.einsum("bnr,bnr->bn", factor_stack, factor_stack)
    if seeds is not None:
        projections = np.einsum("bsr,bnr->bsn", seeds, factor_stack)
        di2 = _deflate_gains(di2, projections)

    def row_factor(lasts: np.ndarray) -> np.ndarray:
        return factor_stack[np.arange(batch), lasts]

    def project(direction: np.ndarray) -> np.ndarray:
        return np.einsum("bnr,br->bn", factor_stack, direction)

    return _batched_greedy_rounds_session(
        di2,
        row_factor,
        project,
        factor_stack.shape[2],
        k,
        epsilon,
        seeds=seeds,
        pins=pins,
        quota=quota,
    )


def greedy_map_reference(kernel: np.ndarray, k: int) -> list[int]:
    """O(M k^4) textbook greedy via explicit determinants.

    Used only by tests to validate :func:`greedy_map`; recomputes
    ``det(L_{S + {i}})`` from scratch for every candidate each round.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    m = kernel.shape[0]
    selected: list[int] = []
    for _ in range(k):
        best_item, best_det = -1, -np.inf
        for i in range(m):
            if i in selected:
                continue
            trial = selected + [i]
            det = np.linalg.det(kernel[np.ix_(trial, trial)])
            if det > best_det:
                best_det, best_item = det, i
        if best_item < 0 or best_det <= 0:
            break
        selected.append(best_item)
    return selected
