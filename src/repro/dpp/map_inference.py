"""Fast greedy MAP inference for DPPs (Chen, Zhang & Zhou, NeurIPS 2018).

The related-work systems the paper cites diversify recommendations by
greedily maximizing ``log det(L_S)``; this module implements the
O(M k^2) incremental-Cholesky version of that greedy algorithm.  In this
reproduction it powers the example applications (generating a diversified
top-k list from a trained model's kernel) and serves as a baseline
post-processing re-ranker to contrast with LkP's in-training approach.

``greedy_map`` also accepts a :class:`~repro.dpp.kernels.LowRankKernel`:
the algorithm only ever touches the kernel's diagonal and one row per
round, and both are inner products of factor rows, so catalog-wide
diversified top-k runs in O(M k (r + k)) without materializing — or even
being handed — the M×M Gram matrix.
"""

from __future__ import annotations

import numpy as np

from .kernels import LowRankKernel

__all__ = ["greedy_map", "greedy_map_reference"]


def greedy_map(
    kernel: np.ndarray | LowRankKernel,
    k: int,
    candidates: np.ndarray | None = None,
    epsilon: float = 1e-10,
) -> list[int]:
    """Greedily select ``k`` items maximizing ``log det(L_S)``.

    Implements the fast greedy algorithm: maintain, for every remaining
    item, the squared Cholesky residual ``d_i^2`` (its marginal determinant
    gain) and the partial Cholesky row ``c_i``, updating both in O(1) per
    item per round.

    Parameters
    ----------
    kernel:
        PSD L-ensemble kernel over the full candidate ground set — either
        a dense matrix or a :class:`LowRankKernel`, whose factor inner
        products supply the diagonal and the per-round row on demand.
    k:
        Number of items to select (the paper's fixed result-list size).
    candidates:
        Optional subset of indices to restrict the selection to.
    epsilon:
        Stop early if the best remaining marginal gain falls below this,
        which mirrors the reference implementation's stopping rule.
    """
    factors: np.ndarray | None = None
    if isinstance(kernel, LowRankKernel):
        factors = kernel.factors
        m = kernel.ground_size
    else:
        kernel = np.asarray(kernel, dtype=np.float64)
        m = kernel.shape[0]
    if candidates is None:
        candidates = np.arange(m)
    else:
        candidates = np.asarray(candidates, dtype=np.int64)
    if not 1 <= k <= candidates.shape[0]:
        raise ValueError(
            f"k must be in [1, {candidates.shape[0]}], got {k}"
        )

    num_candidates = candidates.shape[0]
    if factors is not None:
        candidate_factors = factors[candidates]
        di2 = (candidate_factors**2).sum(axis=1)
    else:
        candidate_factors = None
        di2 = kernel[candidates, candidates].copy()
    # cis[j, i]: j-th Cholesky coefficient of candidate i (row-incremental).
    cis = np.zeros((k, num_candidates), dtype=np.float64)

    selected_local = int(np.argmax(di2))
    selected = [selected_local]
    for round_index in range(1, k):
        last = selected_local
        ci_last = cis[:round_index, last]
        di_last = np.sqrt(max(di2[last], epsilon))
        if candidate_factors is not None:
            row = candidate_factors @ candidate_factors[last]
        else:
            row = kernel[candidates[last], candidates]
        eis = (row - ci_last @ cis[:round_index, :]) / di_last
        cis[round_index, :] = eis
        di2 = di2 - eis**2
        di2[selected] = -np.inf  # never re-pick
        selected_local = int(np.argmax(di2))
        if di2[selected_local] < epsilon:
            break
        selected.append(selected_local)
    return [int(candidates[i]) for i in selected]


def greedy_map_reference(kernel: np.ndarray, k: int) -> list[int]:
    """O(M k^4) textbook greedy via explicit determinants.

    Used only by tests to validate :func:`greedy_map`; recomputes
    ``det(L_{S + {i}})`` from scratch for every candidate each round.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    m = kernel.shape[0]
    selected: list[int] = []
    for _ in range(k):
        best_item, best_det = -1, -np.inf
        for i in range(m):
            if i in selected:
                continue
            trial = selected + [i]
            det = np.linalg.det(kernel[np.ix_(trial, trial)])
            if det > best_det:
                best_det, best_item = det, i
        if best_item < 0 or best_det <= 0:
            break
        selected.append(best_item)
    return selected
