"""``repro.eval`` — metrics, ranking evaluation, probability diagnostics.

* :mod:`~repro.eval.metrics` — Recall / NDCG / Category Coverage / F
  (composition reverse-engineered from Table II and pinned by tests);
* :mod:`~repro.eval.evaluate` — the top-N protocol over a split;
* :mod:`~repro.eval.probability_analysis` — Figure 4's target-count
  probability groups and the diversified-vs-monotonous comparison.
"""

from .evaluate import METRIC_FAMILIES, EvalResult, evaluate_model, evaluate_scores
from .metrics import (
    category_coverage,
    f_score,
    intra_list_distance,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
)
from .probability_analysis import (
    DiversityProbabilityReport,
    TargetGroupReport,
    diverse_vs_monotonous,
    ground_set_kernel_np,
    target_count_probabilities,
)

__all__ = [
    "EvalResult",
    "evaluate_scores",
    "evaluate_model",
    "METRIC_FAMILIES",
    "recall_at_n",
    "precision_at_n",
    "ndcg_at_n",
    "category_coverage",
    "f_score",
    "intra_list_distance",
    "ground_set_kernel_np",
    "target_count_probabilities",
    "TargetGroupReport",
    "diverse_vs_monotonous",
    "DiversityProbabilityReport",
]
