"""Top-N ranking evaluation over a dataset split.

Standard protocol: for every user with held-out items, rank the catalog
excluding the user's training (and validation, when evaluating on test)
interactions, take the top N, and average Recall / NDCG / CC / F across
users for each N in the cutoff list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.interactions import DatasetSplit
from ..models.base import Recommender
from ..utils.topk import top_k_indices
from .metrics import category_coverage, f_score, ndcg_at_n, recall_at_n

__all__ = ["EvalResult", "evaluate_scores", "evaluate_model", "METRIC_FAMILIES"]

METRIC_FAMILIES = ("Re", "Nd", "CC", "F")


@dataclass
class EvalResult:
    """Averaged metrics keyed like ``"Re@5"``, ``"CC@20"``..."""

    metrics: dict[str, float] = field(default_factory=dict)
    num_users_evaluated: int = 0

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def row(self, cutoffs: tuple[int, ...] = (5, 10, 20)) -> str:
        """Fixed-order table row matching the paper's column layout."""
        parts = []
        for family in METRIC_FAMILIES:
            for n in cutoffs:
                parts.append(f"{self.metrics[f'{family}@{n}']:.4f}")
        return " ".join(parts)


def _masked_top_k(
    scores: np.ndarray,
    split: DatasetSplit,
    max_cutoff: int,
    target: str,
) -> list[np.ndarray]:
    """Per-user top-``max_cutoff`` item lists with exclusions applied.

    The hot path of :func:`evaluate_scores` (the trainer re-runs it every
    ``eval_every`` epochs): instead of materializing each user's exclusion
    set as a Python ``set`` and ranking per user, all exclusions are
    scattered into the score matrix at once (the split already stores them
    as per-user index arrays) and one ``argpartition`` pass over axis 1
    ranks every user.  Excluded entries surface as ``-inf`` and are
    trimmed per row, matching :func:`repro.utils.topk.top_k_indices` item
    for item — including the arbitrary-but-deterministic resolution of
    score ties at the cutoff boundary: rows with at least ``max_cutoff``
    rankable items partition at the same pivot ``top_k_indices`` uses
    (identical introselect on identical data), and the rare rows with
    fewer fall back to ``top_k_indices`` itself.
    """
    num_users, num_items = scores.shape
    masked = np.array(scores, dtype=np.float64, copy=True)
    sources = (split.train, split.val) if target == "test" else (split.train,)
    for per_user_items in sources:
        lengths = [items.shape[0] for items in per_user_items]
        if sum(lengths) == 0:
            continue
        rows = np.repeat(np.arange(num_users), lengths)
        cols = np.concatenate(per_user_items)
        masked[rows, cols.astype(np.int64)] = -np.inf
    cutoff = min(max_cutoff, num_items)
    heads = np.argpartition(-masked, cutoff - 1, axis=1)[:, :cutoff]
    head_scores = np.take_along_axis(masked, heads, axis=1)
    order = np.argsort(-head_scores, axis=1, kind="stable")
    heads = np.take_along_axis(heads, order, axis=1)
    head_scores = np.take_along_axis(head_scores, order, axis=1)
    finite = np.isfinite(head_scores)
    finite_counts = np.isfinite(masked).sum(axis=1)
    return [
        heads[user, finite[user]]
        if finite_counts[user] >= cutoff
        else top_k_indices(masked[user], max_cutoff)
        for user in range(num_users)
    ]


def evaluate_scores(
    scores: np.ndarray,
    split: DatasetSplit,
    cutoffs: tuple[int, ...] = (5, 10, 20),
    target: str = "test",
) -> EvalResult:
    """Evaluate a dense score matrix against held-out interactions.

    Parameters
    ----------
    scores:
        ``num_users x num_items`` relevance scores.
    target:
        ``"test"`` — rank against test items, excluding train ∪ val;
        ``"val"`` — rank against validation items, excluding train only
        (used for model selection during training).
    """
    if target not in ("test", "val"):
        raise ValueError(f"target must be 'test' or 'val', got {target!r}")
    dataset = split.dataset
    if scores.shape != (dataset.num_users, dataset.num_items):
        raise ValueError(
            f"scores shape {scores.shape} does not match "
            f"({dataset.num_users}, {dataset.num_items})"
        )
    held_out = split.test if target == "test" else split.val
    max_cutoff = max(cutoffs)
    top_lists = _masked_top_k(scores, split, max_cutoff, target)

    sums = {f"{family}@{n}": 0.0 for family in METRIC_FAMILIES for n in cutoffs}
    evaluated = 0
    for user in range(dataset.num_users):
        relevant = set(map(int, held_out[user]))
        if not relevant:
            continue
        top = top_lists[user]
        evaluated += 1
        for n in cutoffs:
            head = top[:n]
            recall = recall_at_n(head, relevant)
            ndcg = ndcg_at_n(head, relevant)
            coverage = category_coverage(
                head, dataset.item_categories, dataset.num_categories
            )
            sums[f"Re@{n}"] += recall
            sums[f"Nd@{n}"] += ndcg
            sums[f"CC@{n}"] += coverage
            sums[f"F@{n}"] += f_score(recall, ndcg, coverage)
    if evaluated == 0:
        raise ValueError(f"no user has held-out items in the {target} target")
    metrics = {key: value / evaluated for key, value in sums.items()}
    return EvalResult(metrics=metrics, num_users_evaluated=evaluated)


def evaluate_model(
    model: Recommender,
    split: DatasetSplit,
    cutoffs: tuple[int, ...] = (5, 10, 20),
    target: str = "test",
) -> EvalResult:
    """Score the full catalog with the model and evaluate."""
    return evaluate_scores(model.full_scores(), split, cutoffs=cutoffs, target=target)
