"""Evaluation metrics: Recall@N, NDCG@N, Category Coverage@N, F@N, ILD.

The paper evaluates with "two types of accuracy related metrics, i.e.,
NDCG@N (Nd) and Recall@N (Re), the popular and intuitive diversity metric
— Category Coverage (CC), and a harmonic F-score (F) between quality
(accuracy) and diversity".

The F-score composition is not spelled out in the text; we reverse-
engineered it from Table II: for every reported cell,
``F@N = harmonic_mean((Re@N + Nd@N) / 2, CC@N)`` reproduces the paper's
numbers to the fourth decimal (e.g. Beauty/PR: quality = (0.0788 +
0.0808)/2 = 0.0798, harmonic with CC 0.0579 → 0.0671 = the printed F@5).
:func:`f_score` implements that composition and the test suite pins the
Table II examples.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "recall_at_n",
    "ndcg_at_n",
    "category_coverage",
    "f_score",
    "intra_list_distance",
    "precision_at_n",
]


def recall_at_n(recommended: np.ndarray, relevant: set[int]) -> float:
    """Fraction of the user's held-out items present in the top-N list."""
    if not relevant:
        raise ValueError("recall is undefined for an empty relevant set")
    hits = sum(1 for item in recommended if int(item) in relevant)
    return hits / len(relevant)


def precision_at_n(recommended: np.ndarray, relevant: set[int]) -> float:
    """Fraction of the top-N list that is relevant."""
    if len(recommended) == 0:
        return 0.0
    hits = sum(1 for item in recommended if int(item) in relevant)
    return hits / len(recommended)


def ndcg_at_n(recommended: np.ndarray, relevant: set[int]) -> float:
    """Binary-relevance NDCG with the ideal DCG of ``min(N, |relevant|)``."""
    if not relevant:
        raise ValueError("NDCG is undefined for an empty relevant set")
    dcg = 0.0
    for position, item in enumerate(recommended):
        if int(item) in relevant:
            dcg += 1.0 / np.log2(position + 2.0)
    ideal_hits = min(len(recommended), len(relevant))
    idcg = sum(1.0 / np.log2(position + 2.0) for position in range(ideal_hits))
    return dcg / idcg if idcg > 0 else 0.0


def category_coverage(
    recommended: np.ndarray,
    item_categories: list[frozenset[int]],
    num_categories: int,
) -> float:
    """|union of categories in the list| / |category vocabulary|.

    Items are multi-label (an Amazon product carries a category path, a
    movie several genres), which is why the paper's CC@5 values can
    exceed ``5 / num_categories``.
    """
    if num_categories <= 0:
        raise ValueError("num_categories must be positive")
    covered: set[int] = set()
    for item in recommended:
        covered |= item_categories[int(item)]
    return len(covered) / num_categories


def f_score(recall: float, ndcg: float, coverage: float) -> float:
    """Harmonic mean of mean(Re, Nd) and CC (see module docstring)."""
    quality = 0.5 * (recall + ndcg)
    if quality + coverage <= 0:
        return 0.0
    return 2.0 * quality * coverage / (quality + coverage)


def intra_list_distance(
    recommended: np.ndarray, item_features: np.ndarray
) -> float:
    """Mean pairwise Euclidean distance between list items' features.

    The paper mentions ILD but does not report it (no explicit features
    under implicit feedback); we expose it as a diagnostic for the
    E-variants, whose training explicitly widens embedding distances.
    """
    items = np.asarray(recommended, dtype=np.int64)
    if items.shape[0] < 2:
        return 0.0
    features = item_features[items]
    total, count = 0.0, 0
    for i in range(items.shape[0]):
        for j in range(i + 1, items.shape[0]):
            total += float(np.linalg.norm(features[i] - features[j]))
            count += 1
    return total / count
