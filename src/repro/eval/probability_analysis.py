"""k-DPP probability diagnostics (Figure 4 and the §IV-B2 analyses).

The paper visualizes the *ranking interpretation* of LkP by grouping all
``C(k+n, k)`` subsets of sampled training ground sets by how many targets
they contain, then plotting the group-averaged k-DPP probabilities over
training epochs: before training every group sits near the uniform
``1 / C(k+n, k)``; as training proceeds, target-rich groups rise and
target-poor groups sink.

It also compares the average probability of *diversified* target subsets
(many categories) against *monotonous* ones (few categories), showing the
pre-learned kernel K hands diverse targets a head start.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from ..autodiff import no_grad
from ..data.interactions import DatasetSplit
from ..data.samplers import GroundSetInstance
from ..dpp.kdpp import KDPP
from ..dpp.kernels import LowRankKernel, quality_diversity_kernel_np
from ..models.base import Recommender

__all__ = [
    "ground_set_kernel_np",
    "target_count_probabilities",
    "TargetGroupReport",
    "diverse_vs_monotonous",
    "DiversityProbabilityReport",
]


def ground_set_kernel_np(
    model: Recommender,
    diversity_kernel: np.ndarray | LowRankKernel,
    instance: GroundSetInstance,
    jitter: float = 1e-6,
    score_clip: float = 12.0,
) -> np.ndarray:
    """Numpy twin of :meth:`LkPCriterion.instance_kernel` (no gradients).

    ``diversity_kernel`` may be the dense ``M × M`` matrix or a
    :class:`LowRankKernel` over its factors, in which case the ground-set
    block is a Gram of r-dimensional factor rows and no M×M slice (let
    alone the full kernel) is ever formed.
    """
    ground = instance.ground_set
    with no_grad():
        scores = model.score_items(instance.user, ground).data
    transform = getattr(model, "quality_transform", "exp")
    if transform == "exp":
        quality = np.exp(np.clip(scores, -score_clip, score_clip))
    elif transform == "sigmoid":
        quality = 1.0 / (1.0 + np.exp(-np.clip(scores, -50, 50))) + 1e-4
    else:
        quality = np.clip(scores, 1e-4, None)
    if isinstance(diversity_kernel, LowRankKernel):
        sub = diversity_kernel.gram_rows(ground)
    else:
        sub = diversity_kernel[np.ix_(ground, ground)]
    return quality_diversity_kernel_np(quality, sub) + jitter * np.eye(ground.shape[0])


@dataclass
class TargetGroupReport:
    """Average k-DPP probability per number-of-targets group (Fig. 4)."""

    k: int
    n: int
    #: ``mean_probability[z]`` averages subsets containing exactly z targets
    mean_probability: np.ndarray
    #: the uniform reference line 1 / C(k+n, k)
    uniform: float
    num_instances: int

    def as_rows(self) -> list[str]:
        lines = [f"uniform = {self.uniform:.6f} (1/C({self.k + self.n},{self.k}))"]
        for z, value in enumerate(self.mean_probability):
            marker = " <- target subset" if z == self.k else ""
            lines.append(f"targets={z}: mean P = {value:.6f}{marker}")
        return lines


def target_count_probabilities(
    model: Recommender,
    diversity_kernel: np.ndarray | LowRankKernel,
    instances: list[GroundSetInstance],
    jitter: float = 1e-6,
) -> TargetGroupReport:
    """Group-averaged k-DPP probabilities over training instances.

    For each instance the full k-subset probability table is enumerated
    (252 subsets for the paper's 5+5 setting) and every subset is binned
    by its target count ``z`` (positions ``< k`` of the ground set are
    targets by construction).
    """
    if not instances:
        raise ValueError("need at least one ground-set instance")
    k = instances[0].k
    n = instances[0].n
    sums = np.zeros(k + 1)
    counts = np.zeros(k + 1)
    for instance in instances:
        if instance.k != k or instance.n != n:
            raise ValueError("all instances must share the same (k, n)")
        kernel = ground_set_kernel_np(model, diversity_kernel, instance, jitter=jitter)
        distribution = KDPP(kernel, k, validate=False)
        for subset, probability in distribution.enumerate_probabilities().items():
            z = sum(1 for position in subset if position < k)
            sums[z] += probability
            counts[z] += 1
    return TargetGroupReport(
        k=k,
        n=n,
        mean_probability=sums / counts,
        uniform=1.0 / comb(k + n, k),
        num_instances=len(instances),
    )


@dataclass
class DiversityProbabilityReport:
    """Diversified vs monotonous target subsets (§IV-B2's 0.0041 vs 0.0040)."""

    diverse_mean: float
    monotonous_mean: float
    diverse_count: int
    monotonous_count: int
    diverse_threshold: int
    monotonous_threshold: int


def diverse_vs_monotonous(
    model: Recommender,
    diversity_kernel: np.ndarray | LowRankKernel,
    instances: list[GroundSetInstance],
    split: DatasetSplit,
    diverse_threshold: int | None = None,
    monotonous_threshold: int | None = None,
    jitter: float = 1e-6,
) -> DiversityProbabilityReport:
    """Average target-subset probability split by target category breadth.

    Instances whose k targets span ``>= diverse_threshold`` categories go
    to the diversified pool, ``< monotonous_threshold`` to the monotonous
    pool; the rest are ignored.  The paper uses > 5 vs < 4 with k = 5 on
    single-digit-breadth data; with multi-label items the absolute
    breadths shift, so by default the thresholds adapt to the observed
    breadth distribution (upper tercile vs lower tercile), which keeps
    both pools populated on any dataset.
    """
    if not instances:
        raise ValueError("need at least one ground-set instance")
    dataset = split.dataset
    breadths = [len(dataset.categories_of(inst.targets)) for inst in instances]
    if diverse_threshold is None:
        diverse_threshold = int(np.ceil(np.percentile(breadths, 67)))
    if monotonous_threshold is None:
        monotonous_threshold = int(np.floor(np.percentile(breadths, 33))) + 1
    diverse: list[float] = []
    monotonous: list[float] = []
    for instance, breadth in zip(instances, breadths):
        k = instance.k
        kernel = ground_set_kernel_np(model, diversity_kernel, instance, jitter=jitter)
        distribution = KDPP(kernel, k, validate=False)
        probability = distribution.subset_probability(list(range(k)))
        if breadth >= diverse_threshold:
            diverse.append(probability)
        elif breadth < monotonous_threshold:
            monotonous.append(probability)
    return DiversityProbabilityReport(
        diverse_mean=float(np.mean(diverse)) if diverse else float("nan"),
        monotonous_mean=float(np.mean(monotonous)) if monotonous else float("nan"),
        diverse_count=len(diverse),
        monotonous_count=len(monotonous),
        diverse_threshold=diverse_threshold,
        monotonous_threshold=monotonous_threshold,
    )
