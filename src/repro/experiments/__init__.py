"""``repro.experiments`` — regenerating the paper's tables and figures.

* :mod:`~repro.experiments.common` — scales, dataset preparation, model /
  criterion factories, the per-cell runner;
* :mod:`~repro.experiments.tables` — Tables I-IV;
* :mod:`~repro.experiments.figures` — Figures 2-4 and the §IV-B2
  ablations (standard-DPP normalization, diverse-vs-monotonous targets);
* :mod:`~repro.experiments.case_study` — Figure 5's user walk-through;
* ``python -m repro.experiments.run_all`` — CLI regenerating everything.
"""

from .case_study import CaseStudyReport, run_case_study
from .common import (
    BASELINE_CODES,
    FULL,
    QUICK,
    SCALES,
    SMALL,
    CellResult,
    ExperimentScale,
    PreparedData,
    build_criterion,
    build_model,
    prepare_dataset,
    run_cell,
)
from .figures import (
    Fig4Report,
    SweepPoint,
    SweepReport,
    ablation_diverse_vs_monotonous,
    ablation_standard_dpp,
    fig2_k_sweep,
    fig3_n_sweep,
    fig4_probability_evolution,
)
from .reporting import render_improvements, render_rework_table, render_table
from .tables import (
    TABLE2_METHODS,
    TABLE3_METHODS,
    TableReport,
    table1_dataset_statistics,
    table2_gcn_comparison,
    table3_mf_comparison,
    table4_reworked_models,
)

__all__ = [
    "ExperimentScale",
    "QUICK",
    "SMALL",
    "FULL",
    "SCALES",
    "PreparedData",
    "prepare_dataset",
    "build_model",
    "build_criterion",
    "run_cell",
    "CellResult",
    "BASELINE_CODES",
    "TableReport",
    "table1_dataset_statistics",
    "table2_gcn_comparison",
    "table3_mf_comparison",
    "table4_reworked_models",
    "TABLE2_METHODS",
    "TABLE3_METHODS",
    "SweepPoint",
    "SweepReport",
    "Fig4Report",
    "fig2_k_sweep",
    "fig3_n_sweep",
    "fig4_probability_evolution",
    "ablation_standard_dpp",
    "ablation_diverse_vs_monotonous",
    "CaseStudyReport",
    "run_case_study",
    "render_table",
    "render_improvements",
    "render_rework_table",
]
