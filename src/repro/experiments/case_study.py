"""Figure 5's case study: one user's Top-5 lists under three criteria.

The paper walks through user u1518 of ML-1M: BPR and Set2SetRank surface
targets from the user's dominant genres only, while LkP also surfaces a
hidden target from an under-represented genre; and among 3-subsets of the
user's test movies, the diversified subset gets the highest k-DPP
probability.  This module reproduces that analysis end to end on the
ML-like synthetic dataset, choosing a user whose test items span several
categories.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..dpp.kdpp import KDPP
from ..dpp.kernels import quality_diversity_kernel_np
from ..utils.topk import top_k_indices
from .common import SCALES, CellResult, ExperimentScale, prepare_dataset, run_cell

__all__ = ["CaseStudyReport", "run_case_study"]


@dataclass
class CaseStudyReport:
    """Everything Figure 5 shows for one user."""

    user: int
    train_category_counts: dict[int, int]
    top5: dict[str, list[tuple[int, bool, frozenset[int]]]]
    subset_probabilities: list[tuple[tuple[int, ...], int, float]]
    text: str = ""
    cells: list[CellResult] = field(default_factory=list)


def _pick_user(prepared, min_test: int = 5, min_test_categories: int = 4) -> int:
    """A user whose held-out items span several categories (like u1518)."""
    dataset = prepared.dataset
    best_user, best_breadth = -1, -1
    for user in range(dataset.num_users):
        test_items = prepared.split.test[user]
        if test_items.shape[0] < min_test:
            continue
        breadth = len(dataset.categories_of(test_items))
        if breadth > best_breadth:
            best_breadth, best_user = breadth, user
        if breadth >= min_test_categories:
            return user
    if best_user < 0:
        raise ValueError("no user has enough held-out items for the case study")
    return best_user


def run_case_study(
    scale: str | ExperimentScale = "quick",
    dataset: str = "ml-like",
    model_kind: str = "mf",
    methods: tuple[str, ...] = ("BPR", "S2SRank", "PS"),
    subset_size: int = 3,
) -> CaseStudyReport:
    """Train the three criteria and contrast their Top-5 for one user."""
    resolved = SCALES[scale] if isinstance(scale, str) else scale
    prepared = prepare_dataset(dataset, resolved)
    data = prepared.dataset
    user = _pick_user(prepared)
    test_set = set(map(int, prepared.split.test[user]))

    cells = [run_cell(model_kind, method, prepared) for method in methods]

    top5: dict[str, list[tuple[int, bool, frozenset[int]]]] = {}
    for cell in cells:
        scores = cell.model.full_scores()[user]
        exclude = np.fromiter(prepared.split.known_set(user), dtype=np.int64)
        ranked = top_k_indices(scores, 5, exclude=exclude)
        top5[cell.method] = [
            (int(item), int(item) in test_set, data.item_categories[int(item)])
            for item in ranked
        ]

    # k-DPP probabilities over subsets of the user's first 5 test items,
    # using the LkP-trained model's kernel (the paper analyses 3-subsets).
    lkp_cell = cells[-1]
    probe_items = prepared.split.test[user][:5]
    with_scores = lkp_cell.model.full_scores()[user][probe_items]
    quality = np.exp(np.clip(with_scores, -12, 12))
    diversity = prepared.diversity_submatrix(probe_items)
    kernel = quality_diversity_kernel_np(quality, diversity) + 1e-6 * np.eye(
        probe_items.shape[0]
    )
    distribution = KDPP(kernel, subset_size, validate=False)
    subset_rows: list[tuple[tuple[int, ...], int, float]] = []
    for combo in itertools.combinations(range(probe_items.shape[0]), subset_size):
        items = tuple(int(probe_items[i]) for i in combo)
        breadth = len(data.categories_of(np.asarray(items)))
        subset_rows.append((items, breadth, distribution.subset_probability(combo)))
    subset_rows.sort(key=lambda row: -row[2])

    train_counts: dict[int, int] = {}
    for item in prepared.split.train[user]:
        for category in data.item_categories[int(item)]:
            train_counts[category] = train_counts.get(category, 0) + 1

    lines = [f"Case study: user {user} on {data.name} (scale={resolved.name})"]
    lines.append(
        "train category histogram: "
        + ", ".join(f"c{c}x{v}" for c, v in sorted(train_counts.items(), key=lambda kv: -kv[1]))
    )
    for method, entries in top5.items():
        rendered = " ".join(
            f"[{'HIT' if hit else ' . '}]v{item}({','.join(f'c{c}' for c in sorted(cats))})"
            for item, hit, cats in entries
        )
        hits = sum(1 for _, hit, _ in entries if hit)
        lines.append(f"{method:<10} hits={hits}  {rendered}")
    lines.append(f"top {min(5, len(subset_rows))} of {len(subset_rows)} "
                 f"{subset_size}-subsets of the user's test items by k-DPP probability:")
    for items, breadth, probability in subset_rows[:5]:
        lines.append(
            f"  P={probability:.4f}  categories={breadth}  items={items}"
        )

    return CaseStudyReport(
        user=user,
        train_category_counts=train_counts,
        top5=top5,
        subset_probabilities=subset_rows,
        text="\n".join(lines),
        cells=cells,
    )
