"""Shared infrastructure for the paper's experiment suite.

Every table and figure is expressed as a composition of:

* an :class:`ExperimentScale` — bundles dataset scale, training length
  and model sizes so the same experiment can run as a quick benchmark or
  a full reproduction;
* :func:`prepare_dataset` — generate + filter + split a dataset and
  pre-train its Eq. 3 diversity kernel (cached per process);
* :func:`build_model` / :func:`build_criterion` — backbone and criterion
  factories keyed by the names used in the paper's tables;
* :func:`run_cell` — train one (backbone, criterion, dataset) cell and
  return its test metrics, the unit of every comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import (
    DATASET_FACTORIES,
    DatasetSplit,
    InteractionDataset,
    mine_diversity_pairs,
)
from ..dpp import (
    DiversityKernelConfig,
    DiversityKernelLearner,
    LowRankKernel,
    category_jaccard_kernel,
)
from ..eval import EvalResult
from ..losses import (
    BCECriterion,
    BPRCriterion,
    Criterion,
    GCMCNLLCriterion,
    Set2SetRankCriterion,
    SetRankCriterion,
    make_lkp_variant,
)
from ..losses.lkp import LKP_VARIANTS, LkPCriterion
from ..models import (
    GCMCRecommender,
    GCNRecommender,
    MFRecommender,
    NeuMFRecommender,
    Recommender,
)
from ..train import TrainConfig, Trainer, TrainResult
from ..utils.rng import ensure_rng

__all__ = [
    "ExperimentScale",
    "QUICK",
    "SMALL",
    "FULL",
    "SCALES",
    "PreparedData",
    "prepare_dataset",
    "build_model",
    "build_criterion",
    "run_cell",
    "CellResult",
    "BASELINE_CODES",
]

BASELINE_CODES = ("BPR", "BCE", "SetRank", "S2SRank")


@dataclass(frozen=True)
class ExperimentScale:
    """One consistent operating point for the whole experiment suite.

    ``quick`` is sized for pytest-benchmark runs (seconds per cell),
    ``small`` for local iteration, ``full`` for the recorded
    EXPERIMENTS.md numbers.  LkP converges markedly slower than the
    baselines (the paper's Figure 2 reports 150–500 epochs), hence the
    separate ``lkp_lr`` — at tiny scales a hotter rate compensates for
    the shorter training budget.
    """

    name: str
    dataset_scale: float
    min_interactions: int
    dim: int
    epochs: int
    patience: int
    batch_size: int
    base_lr: float
    lkp_lr: float
    kernel_rank: int
    kernel_epochs: int
    kernel_pairs_per_user: int
    gcn_layers: int = 2
    k: int = 5
    n: int = 5
    seed: int = 0


QUICK = ExperimentScale(
    name="quick",
    dataset_scale=0.35,
    min_interactions=5,
    dim=16,
    epochs=45,
    patience=10,
    batch_size=32,
    base_lr=0.02,
    lkp_lr=0.1,
    kernel_rank=16,
    kernel_epochs=10,
    kernel_pairs_per_user=2,
)

SMALL = ExperimentScale(
    name="small",
    dataset_scale=0.5,
    min_interactions=5,
    dim=16,
    epochs=120,
    patience=15,
    batch_size=32,
    base_lr=0.02,
    lkp_lr=0.05,
    kernel_rank=16,
    kernel_epochs=20,
    kernel_pairs_per_user=3,
)

FULL = ExperimentScale(
    name="full",
    dataset_scale=1.0,
    min_interactions=8,
    dim=16,
    epochs=300,
    patience=25,
    batch_size=32,
    base_lr=0.02,
    lkp_lr=0.02,
    kernel_rank=16,
    kernel_epochs=20,
    kernel_pairs_per_user=4,
)

SCALES = {"quick": QUICK, "small": SMALL, "full": FULL}


@dataclass
class PreparedData:
    """A dataset ready for experiments: split + frozen diversity kernel.

    The learned Eq. 3 kernel is carried in **factored form**
    (``diversity_factors``, with ``K = V Vᵀ``) so training and analysis
    gather r-dimensional rows instead of slicing an M×M matrix; only the
    closed-form category kernel (``kernel_source="category"``), which
    is full rank, stays dense in ``diversity_kernel_dense``.
    """

    dataset: InteractionDataset
    split: DatasetSplit
    scale: ExperimentScale
    #: learned low-rank factors V with K = V Vᵀ (None for category mode)
    diversity_factors: np.ndarray | None = None
    #: dense kernel for sources with no factored form (category mode);
    #: also caches the materialized Gram after a `diversity_kernel` call
    diversity_kernel_dense: np.ndarray | None = None
    #: reference kernel built directly from category overlap (ablations)
    category_kernel: np.ndarray | None = None

    @property
    def diversity_kernel(self) -> np.ndarray:
        """The dense M×M kernel, materialized on demand (analysis only)."""
        if self.diversity_kernel_dense is None:
            self.diversity_kernel_dense = (
                self.diversity_factors @ self.diversity_factors.T
            )
        return self.diversity_kernel_dense

    def diversity(self) -> LowRankKernel | np.ndarray:
        """The kernel in its cheapest exact form (factored when possible)."""
        if self.diversity_factors is not None:
            return LowRankKernel(self.diversity_factors)
        return self.diversity_kernel_dense

    def diversity_submatrix(self, items: np.ndarray) -> np.ndarray:
        """``K`` restricted to ``items`` without materializing all of K."""
        if self.diversity_factors is not None:
            rows = self.diversity_factors[np.asarray(items, dtype=np.int64)]
            return rows @ rows.T
        return self.diversity_kernel_dense[np.ix_(items, items)]


_PREPARED_CACHE: dict[tuple[str, str, str], PreparedData] = {}


def prepare_dataset(
    name: str,
    scale: ExperimentScale,
    kernel_source: str = "learned",
    use_cache: bool = True,
) -> PreparedData:
    """Generate, filter, split and equip a dataset with its kernel.

    Parameters
    ----------
    name:
        One of ``beauty-like``, ``ml-like``, ``anime-like``.
    kernel_source:
        ``"learned"`` — the paper's Eq. 3 pre-training; ``"category"`` —
        the closed-form Jaccard reference kernel (ablation).
    """
    if name not in DATASET_FACTORIES:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(DATASET_FACTORIES)}")
    if kernel_source not in ("learned", "category"):
        raise ValueError(f"kernel_source must be 'learned' or 'category', got {kernel_source!r}")
    cache_key = (name, scale.name, kernel_source)
    if use_cache and cache_key in _PREPARED_CACHE:
        return _PREPARED_CACHE[cache_key]

    dataset = DATASET_FACTORIES[name](scale=scale.dataset_scale).filter_min_interactions(
        scale.min_interactions
    )
    split = dataset.split(np.random.default_rng(scale.seed))

    if kernel_source == "learned":
        pairs = mine_diversity_pairs(
            split,
            set_size=scale.k,
            pairs_per_user=scale.kernel_pairs_per_user,
            mode="monotonous",
            rng=np.random.default_rng(scale.seed + 1),
        )
        learner = DiversityKernelLearner(
            dataset.num_items,
            DiversityKernelConfig(
                rank=scale.kernel_rank,
                epochs=scale.kernel_epochs,
                lr=0.03,
                seed=scale.seed + 2,
            ),
        )
        learner.fit(pairs)
        factors, kernel = learner.factors_normalized(), None
    else:
        kernel = category_jaccard_kernel(dataset.item_categories, scale=0.8, floor=0.2)
        diagonal = np.sqrt(np.diagonal(kernel))
        kernel = kernel / np.outer(diagonal, diagonal)
        factors = None

    prepared = PreparedData(
        dataset=dataset,
        split=split,
        scale=scale,
        diversity_factors=factors,
        diversity_kernel_dense=kernel,
    )
    if use_cache:
        _PREPARED_CACHE[cache_key] = prepared
    return prepared


def build_model(
    kind: str, prepared: PreparedData, rng: np.random.Generator | int | None = None
) -> Recommender:
    """Backbone factory: ``mf`` / ``gcn`` / ``lightgcn`` / ``neumf`` / ``gcmc``."""
    scale = prepared.scale
    dataset = prepared.dataset
    rng = ensure_rng(scale.seed + 10 if rng is None else rng)
    if kind == "mf":
        return MFRecommender(dataset.num_users, dataset.num_items, dim=scale.dim, rng=rng)
    if kind in ("gcn", "lightgcn"):
        return GCNRecommender(
            dataset.num_users,
            dataset.num_items,
            prepared.split.train_matrix(),
            dim=scale.dim,
            num_layers=scale.gcn_layers,
            variant="ngcf" if kind == "gcn" else "lightgcn",
            rng=rng,
        )
    if kind == "neumf":
        return NeuMFRecommender(
            dataset.num_users,
            dataset.num_items,
            dim=scale.dim,
            mlp_layers=(2 * scale.dim, scale.dim, scale.dim // 2),
            rng=rng,
        )
    if kind == "gcmc":
        return GCMCRecommender(
            dataset.num_users,
            dataset.num_items,
            prepared.split.train_matrix(),
            dim=scale.dim,
            hidden_dim=scale.dim,
            rng=rng,
        )
    raise ValueError(f"unknown model kind {kind!r}")


def build_criterion(
    code: str,
    prepared: PreparedData,
    k: int | None = None,
    n: int | None = None,
    normalization: str = "kdpp",
) -> Criterion:
    """Criterion factory keyed by the paper's method names."""
    scale = prepared.scale
    k = scale.k if k is None else k
    n = scale.n if n is None else n
    code_upper = code.upper()
    if code_upper in LKP_VARIANTS:
        # The criterion gathers factor rows when they exist (the learned
        # kernel); the dense matrix is reserved for kernels with no
        # factored form (category mode).
        if prepared.diversity_factors is not None:
            return make_lkp_variant(
                code_upper,
                diversity_factors=prepared.diversity_factors,
                k=k,
                n=n,
                normalization=normalization,
            )
        return make_lkp_variant(
            code_upper,
            diversity_kernel=prepared.diversity_kernel,
            k=k,
            n=n,
            normalization=normalization,
        )
    if code_upper == "BPR":
        return BPRCriterion()
    if code_upper == "BCE":
        return BCECriterion()
    if code_upper == "SETRANK":
        return SetRankCriterion(num_negatives=n)
    if code_upper == "S2SRANK":
        return Set2SetRankCriterion(k=k, n=n)
    if code_upper == "GCMC-NLL":
        return GCMCNLLCriterion()
    raise ValueError(f"unknown criterion code {code!r}")


@dataclass
class CellResult:
    """One table cell: test metrics, the training record, the model."""

    method: str
    model_kind: str
    dataset: str
    eval_result: EvalResult
    train_result: TrainResult
    model: Recommender | None = None

    @property
    def metrics(self) -> dict[str, float]:
        return self.eval_result.metrics


def _is_lkp(code: str) -> bool:
    return code.upper() in LKP_VARIANTS


def run_cell(
    model_kind: str,
    criterion_code: str,
    prepared: PreparedData,
    k: int | None = None,
    n: int | None = None,
    lr: float | None = None,
    epochs: int | None = None,
    criterion: Criterion | None = None,
    epoch_callback=None,
    verbose: bool = False,
) -> CellResult:
    """Train one (backbone, criterion) pair and evaluate on test."""
    scale = prepared.scale
    if criterion is None:
        criterion = build_criterion(criterion_code, prepared, k=k, n=n)
    if lr is None:
        lr = scale.lkp_lr if _is_lkp(criterion_code) else scale.base_lr
    config = TrainConfig(
        epochs=scale.epochs if epochs is None else epochs,
        batch_size=scale.batch_size,
        lr=lr,
        weight_decay=1e-5,
        patience=scale.patience,
        monitor="Nd@5",
        seed=scale.seed + 20,
        verbose=verbose,
    )
    model = build_model(model_kind, prepared)
    trainer = Trainer(model, criterion, prepared.split, config, epoch_callback=epoch_callback)
    train_result = trainer.fit()
    eval_result = trainer.evaluate(target="test")
    return CellResult(
        method=criterion.name,
        model_kind=model_kind,
        dataset=prepared.dataset.name,
        eval_result=eval_result,
        train_result=train_result,
        model=model,
    )
