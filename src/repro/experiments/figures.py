"""Runners for the paper's Figures 2-4 and the §IV-B2 ablations.

Figures are regenerated as *data series* (printed as aligned text): this
library deliberately produces the numbers behind each plot rather than
image files, so the benchmark harness can assert on them and EXPERIMENTS.md
can quote them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.samplers import GroundSetSampler
from ..eval.probability_analysis import (
    DiversityProbabilityReport,
    TargetGroupReport,
    diverse_vs_monotonous,
    target_count_probabilities,
)
from .common import (
    SCALES,
    CellResult,
    ExperimentScale,
    build_criterion,
    prepare_dataset,
    run_cell,
)

__all__ = [
    "SweepPoint",
    "SweepReport",
    "fig2_k_sweep",
    "fig3_n_sweep",
    "Fig4Report",
    "fig4_probability_evolution",
    "ablation_standard_dpp",
    "ablation_diverse_vs_monotonous",
]


@dataclass
class SweepPoint:
    """One parameter setting's outcome in a sweep."""

    parameter: int
    metrics: dict[str, float]
    epochs_to_best: int


@dataclass
class SweepReport:
    """A full parameter sweep (Figure 2 or 3)."""

    name: str
    variant: str
    points: list[SweepPoint] = field(default_factory=list)
    text: str = ""

    def series(self, metric: str) -> list[float]:
        return [point.metrics[metric] for point in self.points]


def _resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    return SCALES[scale]


def fig2_k_sweep(
    variant: str = "PS",
    scale: str | ExperimentScale = "quick",
    dataset: str = "beauty-like",
    ks: tuple[int, ...] = (2, 3, 4, 5, 6),
    model_kind: str = "gcn",
) -> SweepReport:
    """Figure 2: performance and epochs-to-best across target-set sizes k.

    The paper sweeps k in {2..6} with n = k on Beauty, reporting NDCG@5,
    CC@5, F@5 and the epochs needed to reach the best validation score.
    """
    resolved = _resolve_scale(scale)
    prepared = prepare_dataset(dataset, resolved)
    report = SweepReport(name="fig2", variant=variant)
    lines = [f"Figure 2 ({variant}, {dataset}, {model_kind}, scale={resolved.name})"]
    lines.append(f"{'k':>3} {'Nd@5':>8} {'CC@5':>8} {'F@5':>8} {'epochs':>7}")
    for k in ks:
        cell = run_cell(model_kind, variant, prepared, k=k, n=k)
        point = SweepPoint(
            parameter=k,
            metrics=cell.metrics,
            epochs_to_best=cell.train_result.epochs_to_best,
        )
        report.points.append(point)
        lines.append(
            f"{k:>3} {point.metrics['Nd@5']:>8.4f} {point.metrics['CC@5']:>8.4f} "
            f"{point.metrics['F@5']:>8.4f} {point.epochs_to_best:>7}"
        )
    report.text = "\n".join(lines)
    return report


def fig3_n_sweep(
    scale: str | ExperimentScale = "quick",
    dataset: str = "beauty-like",
    ns: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    k: int = 5,
    model_kind: str = "gcn",
) -> SweepReport:
    """Figure 3: LkP-PS performance across negative-sample counts n.

    Top-5 and Top-20 metrics at fixed k = 5 (the PS objective does not
    require n == k, so the full range is valid).
    """
    resolved = _resolve_scale(scale)
    prepared = prepare_dataset(dataset, resolved)
    report = SweepReport(name="fig3", variant="PS")
    lines = [f"Figure 3 (PS, {dataset}, {model_kind}, k={k}, scale={resolved.name})"]
    lines.append(
        f"{'n':>3} {'Nd@5':>8} {'CC@5':>8} {'F@5':>8} {'Nd@20':>8} {'CC@20':>8} {'F@20':>8}"
    )
    for n in ns:
        cell = run_cell(model_kind, "PS", prepared, k=k, n=n)
        point = SweepPoint(
            parameter=n,
            metrics=cell.metrics,
            epochs_to_best=cell.train_result.epochs_to_best,
        )
        report.points.append(point)
        lines.append(
            f"{n:>3} "
            f"{point.metrics['Nd@5']:>8.4f} {point.metrics['CC@5']:>8.4f} {point.metrics['F@5']:>8.4f} "
            f"{point.metrics['Nd@20']:>8.4f} {point.metrics['CC@20']:>8.4f} {point.metrics['F@20']:>8.4f}"
        )
    report.text = "\n".join(lines)
    return report


@dataclass
class Fig4Report:
    """Probability-group snapshots across training epochs (Figure 4)."""

    variant: str
    snapshots: dict[int, TargetGroupReport] = field(default_factory=dict)
    text: str = ""
    cell: CellResult | None = None


def fig4_probability_evolution(
    variant: str = "PS",
    scale: str | ExperimentScale = "quick",
    dataset: str = "anime-like",
    snapshot_epochs: tuple[int, ...] | None = None,
    num_instances: int = 50,
    model_kind: str = "mf",
) -> Fig4Report:
    """Figure 4: k-DPP subset probabilities grouped by target count.

    Trains an LkP model while snapshotting, at chosen epochs, the
    group-averaged probabilities of all k-subsets of ``num_instances``
    sampled ground sets.  The paper uses epochs {0, 30, 100, 200}; the
    defaults scale those to the configured training length.
    """
    resolved = _resolve_scale(scale)
    if snapshot_epochs is None:
        last = resolved.epochs
        snapshot_epochs = tuple(sorted({0, max(1, last // 8), last // 3, last}))
    prepared = prepare_dataset(dataset, resolved)
    sampler = GroundSetSampler(prepared.split, k=resolved.k, n=resolved.n, mode="S")
    instance_rng = np.random.default_rng(resolved.seed + 30)
    instances = sampler.instances(instance_rng)
    if len(instances) > num_instances:
        chosen = instance_rng.choice(len(instances), size=num_instances, replace=False)
        instances = [instances[i] for i in chosen]

    report = Fig4Report(variant=variant)

    def callback(epoch: int, model) -> None:
        if epoch in snapshot_epochs and epoch not in report.snapshots:
            report.snapshots[epoch] = target_count_probabilities(
                model, prepared.diversity(), instances
            )

    cell = run_cell(
        model_kind,
        variant,
        prepared,
        epoch_callback=callback,
        epochs=max(snapshot_epochs),
    )
    lines = [
        f"Figure 4 ({variant}, {dataset}, {model_kind}, scale={resolved.name}, "
        f"{len(instances)} ground sets)"
    ]
    for epoch in sorted(report.snapshots):
        group = report.snapshots[epoch]
        values = " ".join(f"{p:.5f}" for p in group.mean_probability)
        lines.append(f"epoch {epoch:>4}: P(z=0..{group.k}) = [{values}]  uniform={group.uniform:.5f}")
    report.text = "\n".join(lines)
    report.cell = cell
    return report


def ablation_standard_dpp(
    scale: str | ExperimentScale = "quick",
    dataset: str = "ml-like",
    model_kind: str = "mf",
) -> tuple[CellResult, CellResult, str]:
    """§IV-B2 ablation: k-DPP normalization vs the standard-DPP normalizer.

    The paper reports that replacing Eq. 6's ``e_k`` with the standard
    DPP's ``det(L + I)`` (letting subsets of every size compete) destroys
    the ranking interpretation and underperforms BPR.
    """
    resolved = _resolve_scale(scale)
    prepared = prepare_dataset(dataset, resolved)
    kdpp_cell = run_cell(model_kind, "PS", prepared)
    standard_criterion = build_criterion("PS", prepared, normalization="standard_dpp")
    standard_criterion.name = "LkP-PS(stdDPP)"
    standard_cell = run_cell(
        model_kind, "PS", prepared, criterion=standard_criterion
    )
    text = "\n".join(
        [
            f"Standard-DPP normalization ablation ({dataset}, {model_kind}, scale={resolved.name})",
            f"{'k-DPP (Eq. 6)':<18} Nd@5={kdpp_cell.metrics['Nd@5']:.4f} Nd@20={kdpp_cell.metrics['Nd@20']:.4f}",
            f"{'standard DPP':<18} Nd@5={standard_cell.metrics['Nd@5']:.4f} Nd@20={standard_cell.metrics['Nd@20']:.4f}",
        ]
    )
    return kdpp_cell, standard_cell, text


def ablation_diverse_vs_monotonous(
    scale: str | ExperimentScale = "quick",
    dataset: str = "anime-like",
    model_kind: str = "mf",
    num_instances: int = 80,
) -> tuple[DiversityProbabilityReport, str]:
    """§IV-B2: diversified vs monotonous target subsets' probabilities."""
    resolved = _resolve_scale(scale)
    prepared = prepare_dataset(dataset, resolved)
    cell = run_cell(model_kind, "PS", prepared)
    sampler = GroundSetSampler(prepared.split, k=resolved.k, n=resolved.n, mode="S")
    rng = np.random.default_rng(resolved.seed + 40)
    instances = sampler.instances(rng)
    if len(instances) > num_instances:
        chosen = rng.choice(len(instances), size=num_instances, replace=False)
        instances = [instances[i] for i in chosen]
    report = diverse_vs_monotonous(
        cell.model, prepared.diversity(), instances, prepared.split
    )
    text = (
        f"Diversified vs monotonous target subsets ({dataset}, scale={resolved.name}):\n"
        f"  diversified (>= {report.diverse_threshold} categories): "
        f"mean P = {report.diverse_mean:.5f} over {report.diverse_count} sets\n"
        f"  monotonous  (<  {report.monotonous_threshold} categories): "
        f"mean P = {report.monotonous_mean:.5f} over {report.monotonous_count} sets"
    )
    return report, text
