"""Rendering experiment results as paper-style text tables."""

from __future__ import annotations

import numpy as np

from .common import CellResult

__all__ = ["render_table", "render_improvements", "render_rework_table"]

_METRIC_COLUMNS = [
    "Re@5", "Re@10", "Re@20",
    "Nd@5", "Nd@10", "Nd@20",
    "CC@5", "CC@10", "CC@20",
    "F@5", "F@10", "F@20",
]


def _header() -> str:
    cells = " ".join(f"{name:>7}" for name in _METRIC_COLUMNS)
    return f"{'method':<14} {cells}"


def _row(label: str, metrics: dict[str, float]) -> str:
    cells = " ".join(f"{metrics.get(name, float('nan')):>7.4f}" for name in _METRIC_COLUMNS)
    return f"{label:<14} {cells}"


def render_table(results: list[CellResult], title: str = "") -> str:
    """Paper-style metric table, one row per method."""
    lines = []
    if title:
        lines.append(title)
    lines.append(_header())
    lines.append("-" * len(_header()))
    for cell in results:
        lines.append(_row(cell.method, cell.metrics))
    return "\n".join(lines)


def render_improvements(
    results: list[CellResult], ours_prefix: str = "LkP"
) -> str:
    """The paper's "max vs max" / "max vs min" improvement rows.

    For every metric column: best of our methods vs the best and the
    worst of the baselines, in percent.
    """
    ours = [cell for cell in results if cell.method.startswith(ours_prefix)]
    baselines = [cell for cell in results if not cell.method.startswith(ours_prefix)]
    if not ours or not baselines:
        return "(improvements need both LkP and baseline rows)"
    lines = []
    for label, reducer in (("max vs max (%)", max), ("max vs min (%)", min)):
        cells = []
        for metric in _METRIC_COLUMNS:
            best_ours = max(cell.metrics[metric] for cell in ours)
            reference = reducer(cell.metrics[metric] for cell in baselines)
            if reference <= 0:
                cells.append(f"{'n/a':>7}")
            else:
                cells.append(f"{100.0 * (best_ours - reference) / reference:>7.2f}")
        lines.append(f"{label:<14} " + " ".join(cells))
    return "\n".join(lines)


def render_rework_table(
    baseline: CellResult, reworked: list[CellResult], title: str = ""
) -> str:
    """Table IV style block: a native model, its LkP reworks, and Improv%."""
    lines = []
    if title:
        lines.append(title)
    lines.append(_header())
    lines.append("-" * len(_header()))
    lines.append(_row(baseline.method, baseline.metrics))
    for cell in reworked:
        lines.append(_row(cell.method, cell.metrics))
    cells = []
    for metric in _METRIC_COLUMNS:
        best = max(cell.metrics[metric] for cell in reworked)
        reference = baseline.metrics[metric]
        if reference <= 0:
            cells.append(f"{'n/a':>7}")
        else:
            cells.append(f"{100.0 * (best - reference) / reference:>7.2f}")
    lines.append(f"{'Improv (%)':<14} " + " ".join(cells))
    return "\n".join(lines)
