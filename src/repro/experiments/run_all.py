"""Command-line entry point regenerating every table and figure.

Usage::

    python -m repro.experiments.run_all --scale quick --only table2,fig2
    python -m repro.experiments.run_all --scale full            # everything

Output is plain text (the same renderings the benchmarks assert on),
suitable for pasting into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from .case_study import run_case_study
from .figures import (
    ablation_diverse_vs_monotonous,
    ablation_standard_dpp,
    fig2_k_sweep,
    fig3_n_sweep,
    fig4_probability_evolution,
)
from .tables import (
    table1_dataset_statistics,
    table2_gcn_comparison,
    table3_mf_comparison,
    table4_reworked_models,
)

EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "ablation_std_dpp",
    "ablation_diverse",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick", choices=("quick", "small", "full"))
    parser.add_argument(
        "--only",
        default=",".join(EXPERIMENTS),
        help="comma-separated subset of: " + ", ".join(EXPERIMENTS),
    )
    args = parser.parse_args(argv)
    requested = [name.strip() for name in args.only.split(",") if name.strip()]
    unknown = set(requested) - set(EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiments: {sorted(unknown)}")

    for name in requested:
        start = time.time()
        print(f"\n{'=' * 72}\n>>> {name} (scale={args.scale})\n{'=' * 72}")
        if name == "table1":
            print(table1_dataset_statistics(args.scale).text)
        elif name == "table2":
            print(table2_gcn_comparison(args.scale).text)
        elif name == "table3":
            print(table3_mf_comparison(args.scale).text)
        elif name == "table4":
            print(table4_reworked_models(args.scale).text)
        elif name == "fig2":
            for variant in ("PS", "NPS"):
                print(fig2_k_sweep(variant=variant, scale=args.scale).text)
        elif name == "fig3":
            print(fig3_n_sweep(scale=args.scale).text)
        elif name == "fig4":
            for variant in ("PS", "NPS"):
                print(fig4_probability_evolution(variant=variant, scale=args.scale).text)
        elif name == "fig5":
            print(run_case_study(scale=args.scale).text)
        elif name == "ablation_std_dpp":
            print(ablation_standard_dpp(scale=args.scale)[2])
        elif name == "ablation_diverse":
            print(ablation_diverse_vs_monotonous(scale=args.scale)[1])
        print(f"[{name} done in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
