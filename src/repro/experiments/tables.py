"""Runners for the paper's Tables I-IV.

Each function regenerates one table at a chosen
:class:`~repro.experiments.common.ExperimentScale` and returns both the
raw :class:`CellResult` grid and a printable rendering.  The benchmark
suite calls these with ``scale="quick"``; EXPERIMENTS.md records the
``full``-scale outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .common import (
    SCALES,
    CellResult,
    ExperimentScale,
    prepare_dataset,
    run_cell,
)
from .reporting import render_improvements, render_rework_table, render_table

__all__ = [
    "TableReport",
    "table1_dataset_statistics",
    "table2_gcn_comparison",
    "table3_mf_comparison",
    "table4_reworked_models",
    "TABLE2_METHODS",
    "TABLE3_METHODS",
]

#: Table II method list: the six LkP variants plus the four baselines.
TABLE2_METHODS = ("PR", "PS", "NPR", "NPS", "PSE", "NPSE", "BPR", "BCE", "SetRank", "S2SRank")
#: Table III restricts to the two main variants and the ranking baselines.
TABLE3_METHODS = ("PS", "NPS", "BPR", "SetRank", "S2SRank")
DEFAULT_DATASETS = ("beauty-like", "ml-like", "anime-like")


@dataclass
class TableReport:
    """Results and rendering of one regenerated table."""

    name: str
    cells: list[CellResult] = field(default_factory=list)
    text: str = ""

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.text)


def _resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return SCALES[scale]


def table1_dataset_statistics(scale: str | ExperimentScale = "quick") -> TableReport:
    """Table I: statistics of the (synthetic stand-in) datasets."""
    resolved = _resolve_scale(scale)
    header = (
        f"{'Dataset':<14} {'#Users':>7} {'#Items':>7} {'#Interactions':>13} "
        f"{'#Categories':>11} {'Density':>9}"
    )
    lines = [f"Table I (scale={resolved.name})", header, "-" * len(header)]
    for name in DEFAULT_DATASETS:
        prepared = prepare_dataset(name, resolved)
        lines.append(prepared.dataset.stats().as_row())
    return TableReport(name="table1", text="\n".join(lines))


def _comparison_table(
    name: str,
    model_kind: str,
    methods: tuple[str, ...],
    datasets: tuple[str, ...],
    scale: ExperimentScale,
    verbose: bool,
) -> TableReport:
    report = TableReport(name=name)
    blocks: list[str] = [f"{name} ({model_kind} backbone, scale={scale.name}, k=n={scale.k})"]
    for dataset_name in datasets:
        prepared = prepare_dataset(dataset_name, scale)
        cells = []
        for method in methods:
            cell = run_cell(model_kind, method, prepared, verbose=verbose)
            cells.append(cell)
            report.cells.append(cell)
        blocks.append(render_table(cells, title=f"== {dataset_name} =="))
        blocks.append(render_improvements(cells))
    report.text = "\n\n".join(blocks)
    return report


def table2_gcn_comparison(
    scale: str | ExperimentScale = "quick",
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    methods: tuple[str, ...] = TABLE2_METHODS,
    verbose: bool = False,
) -> TableReport:
    """Table II: every criterion on the GCN backbone across datasets."""
    return _comparison_table(
        "Table II", "gcn", methods, datasets, _resolve_scale(scale), verbose
    )


def table3_mf_comparison(
    scale: str | ExperimentScale = "quick",
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    methods: tuple[str, ...] = TABLE3_METHODS,
    verbose: bool = False,
) -> TableReport:
    """Table III: ranking criteria on the plain MF backbone."""
    return _comparison_table(
        "Table III", "mf", methods, datasets, _resolve_scale(scale), verbose
    )


def table4_reworked_models(
    scale: str | ExperimentScale = "quick",
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    backbones: tuple[str, ...] = ("gcmc", "neumf"),
    verbose: bool = False,
) -> TableReport:
    """Table IV: GCMC / NeuMF with native losses vs their LkP reworks."""
    resolved = _resolve_scale(scale)
    report = TableReport(name="table4")
    blocks: list[str] = [f"Table IV (scale={resolved.name}, k=n={resolved.k})"]
    native_criterion = {"gcmc": "GCMC-NLL", "neumf": "BCE"}
    for dataset_name in datasets:
        prepared = prepare_dataset(dataset_name, resolved)
        for backbone in backbones:
            baseline = run_cell(
                backbone, native_criterion[backbone], prepared, verbose=verbose
            )
            baseline.method = backbone.upper()
            reworked = []
            for variant in ("PS", "NPS"):
                cell = run_cell(backbone, variant, prepared, verbose=verbose)
                cell.method = f"{backbone.upper()}-{variant}"
                reworked.append(cell)
            report.cells.extend([baseline, *reworked])
            blocks.append(
                render_rework_table(
                    baseline, reworked, title=f"== {dataset_name} / {backbone.upper()} =="
                )
            )
    report.text = "\n\n".join(blocks)
    return report
