"""``repro.losses`` — optimization criteria.

The paper's contribution and every baseline it compares against, all
satisfying the :class:`~repro.losses.base.Criterion` interface:

* :class:`~repro.losses.lkp.LkPCriterion` — the set-level k-DPP criterion
  (variants PS / PR / NPS / NPR / PSE / NPSE via
  :func:`~repro.losses.lkp.make_lkp_variant`);
* :class:`~repro.losses.pointwise.BCECriterion` — binary cross-entropy;
* :class:`~repro.losses.pairwise.BPRCriterion` — Bayesian personalized
  ranking;
* :class:`~repro.losses.setrank.SetRankCriterion` — Plackett–Luce top-1
  setwise ranking;
* :class:`~repro.losses.set2setrank.Set2SetRankCriterion` — three-level
  set-to-set margins;
* :class:`~repro.losses.pointwise.GCMCNLLCriterion` — GCMC's native
  rating-level NLL;
* :mod:`~repro.losses.gradients` — the paper's analytic Eq. 12/14/15
  gradients, used to validate the autodiff path.
"""

from .base import Criterion
from .gradients import AnalyticLkPGradients, build_mf_kernel, lkp_analytic_gradients
from .lkp import LKP_BACKENDS, LKP_VARIANTS, LkPCriterion, make_lkp_variant
from .pairwise import BPRCriterion
from .pointwise import BCECriterion, GCMCNLLCriterion
from .set2setrank import Set2SetRankCriterion
from .setrank import SetRankCriterion

__all__ = [
    "Criterion",
    "LkPCriterion",
    "make_lkp_variant",
    "LKP_VARIANTS",
    "LKP_BACKENDS",
    "BPRCriterion",
    "BCECriterion",
    "GCMCNLLCriterion",
    "SetRankCriterion",
    "Set2SetRankCriterion",
    "AnalyticLkPGradients",
    "build_mf_kernel",
    "lkp_analytic_gradients",
]
