"""The optimization-criterion interface.

A :class:`Criterion` pairs (1) a *sampler factory* producing one epoch of
training instances from a dataset split with (2) a differentiable *batch
loss* over those instances given a model's representations.  The trainer
is therefore completely generic: the paper's comparison grid (every
criterion × every backbone × every dataset) is a triple nested loop over
interchangeable parts.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..autodiff import Tensor
from ..data.interactions import DatasetSplit
from ..models.base import Recommender

__all__ = ["Criterion"]


class Criterion:
    """Abstract optimization criterion."""

    #: short identifier used in experiment tables ("BPR", "LkP-NPS", ...)
    name: str = "criterion"

    def make_sampler(self, split: DatasetSplit) -> Any:  # pragma: no cover
        """Return an object with ``instances(rng) -> list`` for the split."""
        raise NotImplementedError

    def batch_loss(
        self,
        model: Recommender,
        representations: Any,
        batch: Sequence[Any],
    ) -> Tensor:  # pragma: no cover - abstract
        """Mean loss over a minibatch of sampler instances."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------
    @staticmethod
    def _flat_pairs(
        batch_users: list[np.ndarray], batch_items: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[int, int]]]:
        """Concatenate per-instance index arrays into one scoring call.

        Returns flat user / item arrays plus per-instance (start, stop)
        slices, letting criteria score a whole minibatch through a single
        ``scores_for_pairs`` (one gather instead of hundreds).
        """
        spans: list[tuple[int, int]] = []
        cursor = 0
        for items in batch_items:
            spans.append((cursor, cursor + items.shape[0]))
            cursor += items.shape[0]
        return (
            np.concatenate(batch_users),
            np.concatenate(batch_items),
            spans,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
