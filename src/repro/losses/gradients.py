"""Analytic LkP gradients for matrix factorization (Eq. 12, 14, 15).

The paper derives closed-form gradients of the LkP log-likelihood for the
MF parameterization ``L_ij = exp(e_u · e_i) K_ij exp(e_u · e_j)``
(Eq. 13):

* Eq. 12 — generic kernel-parameter gradient: the target-submatrix trace
  term minus the *probability-weighted* sum of traces over every k-subset
  of the ground set (weights ``w_S'`` are the normalized k-DPP
  probabilities);
* Eq. 14 — user-embedding gradient with ``R_ij = L_ij (e_i^d + e_j^d)``;
* Eq. 15 — item-embedding gradient with ``G_ij = L_ij e_u^d`` placed on
  item i's row and column (the diagonal entry receives both
  contributions, i.e. the factor 2 of differentiating ``exp(...)^2``).

This module implements those formulas literally — enumerating all
``C(k+n, k)`` subsets — as an *independent reference*: the test suite
checks that the autodiff engine's gradients of
:class:`~repro.losses.lkp.LkPCriterion` coincide with them, validating
both the engine and the paper's algebra at once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

__all__ = ["AnalyticLkPGradients", "build_mf_kernel", "lkp_analytic_gradients"]


@dataclass
class AnalyticLkPGradients:
    """Loss value and parameter gradients for one LkP instance."""

    loss: float
    user_grad: np.ndarray  # (d,)
    item_grads: np.ndarray  # (m, d), rows aligned with the ground set


def build_mf_kernel(
    user_vec: np.ndarray,
    item_vecs: np.ndarray,
    diversity: np.ndarray,
    jitter: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 13 kernel for one ground set: returns (L, quality)."""
    user_vec = np.asarray(user_vec, dtype=np.float64)
    item_vecs = np.asarray(item_vecs, dtype=np.float64)
    diversity = np.asarray(diversity, dtype=np.float64)
    m = item_vecs.shape[0]
    if diversity.shape != (m, m):
        raise ValueError(
            f"diversity kernel shape {diversity.shape} does not match {m} items"
        )
    quality = np.exp(item_vecs @ user_vec)
    kernel = quality[:, None] * diversity * quality[None, :] + jitter * np.eye(m)
    return kernel, quality


def _subset_weights(
    kernel: np.ndarray, k: int
) -> tuple[list[tuple[int, ...]], np.ndarray, float]:
    """All k-subsets with their normalized k-DPP probabilities ``w_S'``."""
    m = kernel.shape[0]
    subsets = list(itertools.combinations(range(m), k))
    dets = np.array(
        [np.linalg.det(kernel[np.ix_(s, s)]) for s in subsets], dtype=np.float64
    )
    normalizer = dets.sum()
    if normalizer <= 0:
        raise FloatingPointError("k-DPP normalizer is non-positive")
    return subsets, dets / normalizer, float(normalizer)


def _trace_inverse_times(
    kernel_sub_inv: np.ndarray, derivative_sub: np.ndarray
) -> float:
    return float(np.trace(kernel_sub_inv @ derivative_sub))


def _kernel_derivative_user(
    kernel: np.ndarray, item_vecs: np.ndarray, dim: int
) -> np.ndarray:
    """Eq. 14's ``R^(d)``: ``R_ij = L_ij (e_i^d + e_j^d)``."""
    feature = item_vecs[:, dim]
    return kernel * (feature[:, None] + feature[None, :])


def _kernel_derivative_item(
    kernel: np.ndarray, user_component: float, item: int
) -> np.ndarray:
    """Eq. 15's ``G^(d)`` for one item: row + column i scaled by ``e_u^d``.

    The diagonal entry picks up both the row and the column contribution
    (the quality of item i enters ``L_ii`` squared).
    """
    m = kernel.shape[0]
    derivative = np.zeros((m, m), dtype=np.float64)
    derivative[item, :] = kernel[item, :] * user_component
    derivative[:, item] += kernel[:, item] * user_component
    return derivative


def lkp_analytic_gradients(
    user_vec: np.ndarray,
    item_vecs: np.ndarray,
    diversity: np.ndarray,
    k: int,
    use_negative_set: bool = False,
    jitter: float = 1e-6,
) -> AnalyticLkPGradients:
    """Loss and gradients of one LkP instance per Eq. 12/14/15.

    Ground-set convention matches :class:`GroundSetInstance`: the first
    ``k`` rows of ``item_vecs`` are the targets; with
    ``use_negative_set=True`` the remaining rows form the excluded
    negative subset (``n == k`` required) and the Eq. 10 term
    ``-log(1 - P(S-))`` is added.

    Returns gradients of the *loss* (the negative of the paper's
    maximization objective), matching what autodiff produces for
    :meth:`LkPCriterion.instance_loss`.
    """
    user_vec = np.asarray(user_vec, dtype=np.float64)
    item_vecs = np.asarray(item_vecs, dtype=np.float64)
    m, d = item_vecs.shape
    if use_negative_set and m != 2 * k:
        raise ValueError(f"NP objective needs m == 2k, got m={m}, k={k}")

    kernel, _ = build_mf_kernel(user_vec, item_vecs, diversity, jitter=jitter)
    # Derivative formulas apply to the pure quality-diversity product; the
    # jitter term is a constant and must not appear in dL/dtheta.
    pure_kernel = kernel - jitter * np.eye(m)
    subsets, weights, normalizer = _subset_weights(kernel, k)

    target = tuple(range(k))
    target_inv = np.linalg.inv(kernel[np.ix_(target, target)])
    target_det = np.linalg.det(kernel[np.ix_(target, target)])
    log_p_target = np.log(target_det) - np.log(normalizer)
    loss = -log_p_target

    subset_inverses = {
        subset: np.linalg.inv(kernel[np.ix_(subset, subset)]) for subset in subsets
    }

    if use_negative_set:
        negative = tuple(range(k, m))
        negative_det = np.linalg.det(kernel[np.ix_(negative, negative)])
        p_negative = negative_det / normalizer
        loss -= np.log(1.0 - p_negative)
        negative_inv = subset_inverses[negative]

    def objective_gradient(derivative: np.ndarray) -> float:
        """d loss / d theta given the full-kernel derivative d L / d theta."""
        # d/dθ [-log det(L_S+) + log Z_k]
        grad = -_trace_inverse_times(
            target_inv, derivative[np.ix_(target, target)]
        )
        z_term = sum(
            w * _trace_inverse_times(subset_inverses[s], derivative[np.ix_(s, s)])
            for s, w in zip(subsets, weights)
        )
        grad += z_term
        if use_negative_set:
            # d/dθ [-log(1 - P(S-))] = P/(1-P) * d log P(S-) / dθ
            d_log_p_neg = (
                _trace_inverse_times(
                    negative_inv, derivative[np.ix_(negative, negative)]
                )
                - z_term
            )
            grad += p_negative / (1.0 - p_negative) * d_log_p_neg
        return grad

    user_grad = np.zeros(d)
    for dim in range(d):
        user_grad[dim] = objective_gradient(
            _kernel_derivative_user(pure_kernel, item_vecs, dim)
        )

    item_grads = np.zeros((m, d))
    for item in range(m):
        for dim in range(d):
            item_grads[item, dim] = objective_gradient(
                _kernel_derivative_item(pure_kernel, user_vec[dim], item)
            )

    return AnalyticLkPGradients(loss=float(loss), user_grad=user_grad, item_grads=item_grads)
