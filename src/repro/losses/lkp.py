"""LkP — the paper's set-level k-DPP optimization criterion.

For each training instance (user u, ground set of k observed + n
unobserved items) the criterion:

1. obtains raw model scores for the k+n items and maps them to positive
   *quality* values (Eq. 13: ``exp(score)`` for inner-product models,
   the predicted probability for classifier models);
2. assembles the personalized kernel ``L = Diag(q) K Diag(q)`` (Eq. 2),
   where ``K`` is either the **pre-learned, frozen** diversity kernel
   (default variants) or a **Gaussian kernel over the trainable item
   embeddings** (the E-variants, where diversity gradients flow into the
   embeddings directly);
3. evaluates the tailored k-DPP log-probability of the target subset
   (Eq. 4) with the differentiable Newton-identity normalizer (Eq. 6);
4. for the NP variants additionally drives down the probability of the
   all-negative k-subset via ``log(1 - P(S-))`` (Eq. 10).

The loss is the negative of the paper's maximization objective
(Eq. 7 / Eq. 10), averaged over the minibatch.

Variant naming follows the paper:

=======  =========  =============  ==================
variant  objective  sampling mode  diversity kernel
=======  =========  =============  ==================
PS       Eq. 7      S (window)     pre-learned K
PR       Eq. 7      R (random)     pre-learned K
NPS      Eq. 10     S              pre-learned K
NPR      Eq. 10     R              pre-learned K
PSE      Eq. 7      S              embedding Gaussian
NPSE     Eq. 10     S              embedding Gaussian
=======  =========  =============  ==================

``normalization="standard_dpp"`` swaps Eq. 6's ``e_k`` for the standard
DPP's ``det(L + I)``, reproducing the paper's ablation showing that the
unconditioned normalizer (where subsets of all sizes compete) destroys
the ranking interpretation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from ..data.interactions import DatasetSplit
from ..data.samplers import GroundSetInstance, GroundSetSampler
from ..dpp.esp import batched_differentiable_log_esp, differentiable_log_esp
from ..dpp.kernels import (
    batched_gaussian_similarity_kernel,
    batched_quality_diversity_kernel,
    exp_quality,
    gaussian_similarity_kernel,
    identity_quality,
    quality_diversity_kernel,
    sigmoid_quality,
)
from ..models.base import Recommender
from .base import Criterion

__all__ = ["LkPCriterion", "make_lkp_variant", "LKP_VARIANTS", "LKP_BACKENDS"]

LKP_VARIANTS = ("PS", "PR", "NPS", "NPR", "PSE", "NPSE")

#: ``"batched"`` — one fused (B, k+n, k+n) graph per step (the default);
#: ``"reference"`` — the original loop of per-instance graphs, kept as the
#: parity oracle for tests and debugging.
LKP_BACKENDS = ("batched", "reference")


class LkPCriterion(Criterion):
    """The LkP set-level optimization criterion (all paper variants).

    Parameters
    ----------
    k / n:
        Target-set size and negative count of the k+n ground set.  The
        NP objective requires ``n == k`` (the paper fixes this "to avoid
        extra comparisons between unobserved items").
    sampling:
        ``"S"`` — sequential sliding-window targets; ``"R"`` — random.
    use_negative_set:
        False → Eq. 7 (inclusion only, the P objective); True → Eq. 10
        (inclusion + exclusion, the NP objective).
    kernel_mode:
        ``"pretrained"`` — frozen diversity kernel ``diversity_kernel``
        indexed per ground set; ``"embedding"`` — Gaussian kernel over the
        model's item vectors (the E formulation).
    diversity_kernel:
        Dense ``M x M`` PSD matrix (``"pretrained"`` mode needs either
        this or ``diversity_factors``).
    diversity_factors:
        ``M x r`` factor matrix ``V`` with ``K = V Vᵀ`` (e.g. from
        :meth:`DiversityKernelLearner.factors_normalized`).  The per-set
        diversity blocks are then Grams of r-dimensional factor rows, so
        the dense M×M kernel is never materialized — the catalog-scale
        form of ``"pretrained"`` mode.
    bandwidth:
        Gaussian kernel bandwidth for ``"embedding"`` mode.
    normalization:
        ``"kdpp"`` (Eq. 6) or ``"standard_dpp"`` (ablation).
    jitter:
        Diagonal stabilizer added to the assembled ground-set kernel.
    backend:
        ``"batched"`` (default) evaluates a minibatch as one stacked
        ``(B, k+n, k+n)`` kernel — one stacked eigendecomposition, one
        batched ESP recursion, one fused backward pass.  ``"reference"``
        keeps the original per-instance loop; the two agree to within
        float64 round-off and the tests assert it.
    """

    def __init__(
        self,
        k: int = 5,
        n: int = 5,
        sampling: str = "S",
        use_negative_set: bool = False,
        kernel_mode: str = "pretrained",
        diversity_kernel: np.ndarray | None = None,
        diversity_factors: np.ndarray | None = None,
        bandwidth: float = 1.0,
        normalization: str = "kdpp",
        jitter: float = 1e-6,
        name: str | None = None,
        backend: str = "batched",
    ) -> None:
        if sampling not in ("S", "R"):
            raise ValueError(f"sampling must be 'S' or 'R', got {sampling!r}")
        if kernel_mode not in ("pretrained", "embedding"):
            raise ValueError(
                f"kernel_mode must be 'pretrained' or 'embedding', got {kernel_mode!r}"
            )
        if normalization not in ("kdpp", "standard_dpp"):
            raise ValueError(
                f"normalization must be 'kdpp' or 'standard_dpp', got {normalization!r}"
            )
        if backend not in LKP_BACKENDS:
            raise ValueError(
                f"backend must be one of {LKP_BACKENDS}, got {backend!r}"
            )
        if use_negative_set and n != k:
            raise ValueError(
                "the NP objective (Eq. 10) requires n == k so the excluded "
                f"negative subset has cardinality k; got k={k}, n={n}"
            )
        if kernel_mode == "pretrained":
            if diversity_kernel is None and diversity_factors is None:
                raise ValueError(
                    "kernel_mode='pretrained' needs the pre-learned diversity "
                    "kernel or its low-rank factors (see "
                    "repro.dpp.DiversityKernelLearner)"
                )
            if diversity_kernel is not None and diversity_factors is not None:
                raise ValueError(
                    "pass either diversity_kernel or diversity_factors, not both"
                )
            if diversity_kernel is not None:
                diversity_kernel = np.asarray(diversity_kernel, dtype=np.float64)
                if (
                    diversity_kernel.ndim != 2
                    or diversity_kernel.shape[0] != diversity_kernel.shape[1]
                ):
                    raise ValueError(
                        f"diversity kernel must be square, got {diversity_kernel.shape}"
                    )
            else:
                diversity_factors = np.asarray(diversity_factors, dtype=np.float64)
                if diversity_factors.ndim != 2:
                    raise ValueError(
                        f"diversity factors must be (M, r), got {diversity_factors.shape}"
                    )
        self.k = k
        self.n = n
        self.sampling = sampling
        self.use_negative_set = use_negative_set
        self.kernel_mode = kernel_mode
        self.diversity_kernel = diversity_kernel
        self.diversity_factors = diversity_factors
        self.bandwidth = bandwidth
        self.normalization = normalization
        self.jitter = jitter
        self.backend = backend
        if name is None:
            code = ("NP" if use_negative_set else "P") + sampling
            if kernel_mode == "embedding":
                code += "E"
            name = f"LkP-{code}"
        self.name = name

    # ------------------------------------------------------------------
    def make_sampler(self, split: DatasetSplit) -> GroundSetSampler:
        if self.kernel_mode == "pretrained":
            source = (
                self.diversity_kernel
                if self.diversity_kernel is not None
                else self.diversity_factors
            )
            if source.shape[0] != split.dataset.num_items:
                raise ValueError(
                    f"diversity kernel covers {source.shape[0]} items "
                    f"but the dataset has {split.dataset.num_items}"
                )
        return GroundSetSampler(split, k=self.k, n=self.n, mode=self.sampling)

    # ------------------------------------------------------------------
    def _quality(self, model: Recommender, scores: Tensor) -> Tensor:
        transform = getattr(model, "quality_transform", "exp")
        if transform == "exp":
            return exp_quality(scores)
        if transform == "sigmoid":
            return sigmoid_quality(scores)
        return identity_quality(scores)

    def instance_kernel(
        self,
        model: Recommender,
        representations,
        instance: GroundSetInstance,
        scores: Tensor | None = None,
    ) -> Tensor:
        """Assemble the differentiable ground-set kernel L (Eq. 2).

        ``scores`` may be passed in when the caller already scored the
        instance as part of a batched gather.
        """
        ground = instance.ground_set
        if scores is None:
            users = np.full(ground.shape[0], instance.user, dtype=np.int64)
            scores = model.scores_for_pairs(representations, users, ground)
        quality = self._quality(model, scores)
        if self.kernel_mode == "pretrained":
            if self.diversity_factors is not None:
                rows = self.diversity_factors[ground]
                diversity = Tensor(rows @ rows.T)
            else:
                diversity = Tensor(self.diversity_kernel[np.ix_(ground, ground)])
        else:
            vectors = model.item_vectors(representations, ground)
            diversity = gaussian_similarity_kernel(vectors, bandwidth=self.bandwidth)
        kernel = quality_diversity_kernel(quality, diversity)
        return kernel + Tensor(self.jitter * np.eye(ground.shape[0]))

    def _log_normalizer(self, kernel: Tensor) -> Tensor:
        if self.normalization == "kdpp":
            return differentiable_log_esp(kernel, self.k)
        identity = Tensor(np.eye(kernel.shape[0]))
        return F.logdet_psd(kernel + identity)

    def instance_loss(
        self,
        model: Recommender,
        representations,
        instance: GroundSetInstance,
        scores: Tensor | None = None,
    ) -> Tensor:
        """Negative Eq. 7 / Eq. 10 contribution of a single instance."""
        k = instance.k
        kernel = self.instance_kernel(model, representations, instance, scores)
        log_z = self._log_normalizer(kernel)
        target_block = kernel[np.ix_(np.arange(k), np.arange(k))]
        log_p_target = F.logdet_psd(target_block) - log_z
        loss = -log_p_target
        if self.use_negative_set:
            size = instance.k + instance.n
            negative_positions = np.arange(k, size)
            negative_block = kernel[np.ix_(negative_positions, negative_positions)]
            log_p_negative = F.logdet_psd(negative_block) - log_z
            # P(S-) in (0, 1); clamp to keep log(1 - P) finite when the
            # model is still uncalibrated early in training.
            p_negative = log_p_negative.exp().clip(0.0, 1.0 - 1e-9)
            loss = loss - (1.0 - p_negative).log()
        return loss

    def batch_loss(
        self,
        model: Recommender,
        representations,
        batch: Sequence[GroundSetInstance],
    ) -> Tensor:
        """Mean loss over a minibatch (fused by default).

        The fused path needs every instance to share the criterion's
        ``(k, n)`` ground-set geometry (the sampler guarantees this);
        hand-built heterogeneous batches fall back to the reference loop.
        """
        homogeneous = all(
            inst.k == self.k and inst.n == self.n for inst in batch
        )
        if self.backend == "reference" or not homogeneous:
            return self.batch_loss_reference(model, representations, batch)
        return self._batch_loss_batched(model, representations, batch)

    def batch_loss_reference(
        self,
        model: Recommender,
        representations,
        batch: Sequence[GroundSetInstance],
    ) -> Tensor:
        """The original per-instance loop, kept as the parity oracle.

        Scores every ground set in one call, then builds per-instance
        kernels from slices of the shared score tensor.
        """
        batch_users = [
            np.full(inst.k + inst.n, inst.user, dtype=np.int64) for inst in batch
        ]
        batch_items = [inst.ground_set for inst in batch]
        flat_users, flat_items, spans = self._flat_pairs(batch_users, batch_items)
        scores = model.scores_for_pairs(representations, flat_users, flat_items)

        total: Tensor | None = None
        for (start, stop), instance in zip(spans, batch):
            contribution = self.instance_loss(
                model, representations, instance, scores=scores[start:stop]
            )
            total = contribution if total is None else total + contribution
        return total * (1.0 / len(batch))

    # ------------------------------------------------------------------
    # Fused batched path
    # ------------------------------------------------------------------
    def batch_kernel(
        self,
        model: Recommender,
        representations,
        batch: Sequence[GroundSetInstance],
    ) -> Tensor:
        """Assemble the stacked ``(B, k+n, k+n)`` ground-set kernel (Eq. 2).

        One ``scores_for_pairs`` gather covers every instance, the Eq. 13
        quality reweighting is two broadcast multiplies, and the diversity
        stack is either a fancy-indexed slice of the frozen pre-learned
        kernel or a batched Gaussian kernel over the item embeddings.
        """
        size = self.k + self.n
        ground = np.stack([inst.ground_set for inst in batch])
        users = np.repeat(
            np.array([inst.user for inst in batch], dtype=np.int64), size
        )
        scores = model.scores_for_pairs(representations, users, ground.reshape(-1))
        quality = self._quality(model, scores.reshape(len(batch), size))
        if self.kernel_mode == "pretrained":
            if self.diversity_factors is not None:
                rows = self.diversity_factors[ground]  # (B, k+n, r)
                diversity = Tensor(rows @ np.swapaxes(rows, -1, -2))
            else:
                diversity = Tensor(
                    self.diversity_kernel[ground[:, :, None], ground[:, None, :]]
                )
        else:
            vectors = model.item_vectors(representations, ground.reshape(-1))
            stacked = vectors.reshape(len(batch), size, vectors.shape[-1])
            diversity = batched_gaussian_similarity_kernel(
                stacked, bandwidth=self.bandwidth
            )
        kernel = batched_quality_diversity_kernel(quality, diversity)
        return kernel + Tensor(self.jitter * np.eye(size))

    def _batched_log_normalizer(self, kernel: Tensor) -> Tensor:
        if self.normalization == "kdpp":
            return batched_differentiable_log_esp(kernel, self.k)
        identity = Tensor(np.eye(kernel.shape[-1]))
        return F.logdet_psd(kernel + identity)

    def _batch_loss_batched(
        self,
        model: Recommender,
        representations,
        batch: Sequence[GroundSetInstance],
    ) -> Tensor:
        """All B log-probabilities of Eq. 7 / Eq. 10 in one fused graph."""
        k = self.k
        kernel = self.batch_kernel(model, representations, batch)
        log_z = self._batched_log_normalizer(kernel)
        log_p_target = F.logdet_psd(kernel[:, :k, :k]) - log_z
        losses = -log_p_target
        if self.use_negative_set:
            log_p_negative = F.logdet_psd(kernel[:, k:, k:]) - log_z
            # P(S-) in (0, 1); clamp to keep log(1 - P) finite when the
            # model is still uncalibrated early in training.
            p_negative = log_p_negative.exp().clip(0.0, 1.0 - 1e-9)
            losses = losses - (1.0 - p_negative).log()
        return losses.mean()


def make_lkp_variant(
    code: str,
    diversity_kernel: np.ndarray | None = None,
    k: int = 5,
    n: int = 5,
    bandwidth: float = 1.0,
    normalization: str = "kdpp",
    backend: str = "batched",
    diversity_factors: np.ndarray | None = None,
) -> LkPCriterion:
    """Construct one of the paper's six LkP variants by code name.

    ``PS``, ``PR``, ``NPS``, ``NPR`` require ``diversity_kernel`` (or its
    low-rank ``diversity_factors``); ``PSE`` and ``NPSE`` use the
    embedding Gaussian kernel instead.
    """
    code = code.upper()
    if code not in LKP_VARIANTS:
        raise ValueError(f"unknown LkP variant {code!r}; choose from {LKP_VARIANTS}")
    use_negative = code.startswith("NP")
    sampling = "R" if code.rstrip("E").endswith("R") else "S"
    embedding_mode = code.endswith("E")
    return LkPCriterion(
        k=k,
        n=n,
        sampling=sampling,
        use_negative_set=use_negative,
        kernel_mode="embedding" if embedding_mode else "pretrained",
        diversity_kernel=None if embedding_mode else diversity_kernel,
        diversity_factors=None if embedding_mode else diversity_factors,
        bandwidth=bandwidth,
        normalization=normalization,
        backend=backend,
    )
