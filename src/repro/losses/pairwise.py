"""BPR — Bayesian Personalized Ranking (Rendle et al., 2012).

The canonical pairwise criterion the paper positions LkP against:
maximize ``log sigma(score(u, i+) - score(u, j-))`` over sampled
(user, observed, unobserved) triples, treating every pair independently
and hence ignoring all item-item correlation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from ..data.interactions import DatasetSplit
from ..data.samplers import PairSampler
from ..models.base import Recommender
from .base import Criterion

__all__ = ["BPRCriterion"]


class BPRCriterion(Criterion):
    """Pairwise log-sigmoid ranking loss."""

    name = "BPR"

    def make_sampler(self, split: DatasetSplit) -> PairSampler:
        return PairSampler(split)

    def batch_loss(
        self,
        model: Recommender,
        representations,
        batch: Sequence[tuple[int, int, int]],
    ) -> Tensor:
        users = np.asarray([b[0] for b in batch], dtype=np.int64)
        positives = np.asarray([b[1] for b in batch], dtype=np.int64)
        negatives = np.asarray([b[2] for b in batch], dtype=np.int64)
        pos_scores = model.scores_for_pairs(representations, users, positives)
        neg_scores = model.scores_for_pairs(representations, users, negatives)
        return -F.log_sigmoid(pos_scores - neg_scores).mean()
