"""Pointwise baselines: binary cross-entropy and GCMC's level NLL."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from ..data.interactions import DatasetSplit
from ..data.samplers import PointwiseSampler
from ..models.base import Recommender
from .base import Criterion

__all__ = ["BCECriterion", "GCMCNLLCriterion"]


class BCECriterion(Criterion):
    """Binary cross-entropy on (user, item, 0/1) instances.

    The paper's pointwise baseline (and NeuMF's native loss): each
    observed interaction is a positive example and ``negative_ratio``
    sampled unobserved items are negatives, scored independently.
    """

    name = "BCE"

    def __init__(self, negative_ratio: int = 1) -> None:
        self.negative_ratio = negative_ratio

    def make_sampler(self, split: DatasetSplit) -> PointwiseSampler:
        return PointwiseSampler(split, negative_ratio=self.negative_ratio)

    def batch_loss(
        self,
        model: Recommender,
        representations,
        batch: Sequence[tuple[int, int, float]],
    ) -> Tensor:
        users = np.asarray([b[0] for b in batch], dtype=np.int64)
        items = np.asarray([b[1] for b in batch], dtype=np.int64)
        labels = np.asarray([b[2] for b in batch], dtype=np.float64)
        logits = model.scores_for_pairs(representations, users, items)
        return F.binary_cross_entropy_with_logits(logits, labels)


class GCMCNLLCriterion(Criterion):
    """GCMC's native objective: softmax NLL over the two rating levels.

    "It applies negative log likelihood as loss, and a probability
    distribution over possible rating levels by a softmax function is
    produced."  Requires a model exposing ``level_logits`` (GCMC).
    """

    name = "GCMC-NLL"

    def __init__(self, negative_ratio: int = 1) -> None:
        self.negative_ratio = negative_ratio

    def make_sampler(self, split: DatasetSplit) -> PointwiseSampler:
        return PointwiseSampler(split, negative_ratio=self.negative_ratio)

    def batch_loss(
        self,
        model: Recommender,
        representations,
        batch: Sequence[tuple[int, int, float]],
    ) -> Tensor:
        if not hasattr(model, "level_logits"):
            raise TypeError(
                f"{type(model).__name__} does not produce rating-level logits; "
                "GCMCNLLCriterion only fits GCMC-style decoders"
            )
        users = np.asarray([b[0] for b in batch], dtype=np.int64)
        items = np.asarray([b[1] for b in batch], dtype=np.int64)
        levels = np.asarray([int(b[2]) for b in batch], dtype=np.int64)
        logits = model.level_logits(representations, users, items)
        log_probs = F.log_softmax(logits, axis=1)
        picked = log_probs[np.arange(len(batch)), levels]
        return -picked.mean()
