"""Set2SetRank (Chen et al., SIGIR 2021) — collaborative set-to-set ranking.

Set2SetRank builds set-level ranking pairs but, as the paper stresses,
"still uses the BPR optimization criterion": the comparison is assembled
from log-sigmoid margins between *summaries of individual items* rather
than from a joint set probability.  Following the original three-part
construction, for a positive set S+ and sampled negative set S-:

* **item→item**: every (i in S+, j in S-) pair contributes
  ``-log sigma(s_i - s_j)``;
* **item→set**: the *hardest* positive (minimum score) must beat each
  negative: ``-log sigma(min_i s_i - s_j)``;
* **set→set**: an aggregated margin between the mean positive and the
  maximum negative score with margin ``gamma``:
  ``-log sigma(mean(s+) - max(s-) - gamma)``.

The min/max reductions use the arg-selected element (a valid
subgradient).  Weights follow the original's equal-weight default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from ..data.interactions import DatasetSplit
from ..data.samplers import SetPairSampler
from ..models.base import Recommender
from .base import Criterion

__all__ = ["Set2SetRankCriterion"]


def _select_min(scores: Tensor) -> Tensor:
    index = int(np.argmin(scores.data))
    return scores[index]


def _select_max(scores: Tensor) -> Tensor:
    index = int(np.argmax(scores.data))
    return scores[index]


class Set2SetRankCriterion(Criterion):
    """Three-level set comparison assembled from BPR-style margins."""

    name = "S2SRank"

    def __init__(
        self,
        k: int = 5,
        n: int = 5,
        margin: float = 0.5,
        item_weight: float = 1.0,
        item_set_weight: float = 1.0,
        set_weight: float = 1.0,
    ) -> None:
        self.k = k
        self.n = n
        self.margin = margin
        self.item_weight = item_weight
        self.item_set_weight = item_set_weight
        self.set_weight = set_weight

    def make_sampler(self, split: DatasetSplit) -> SetPairSampler:
        return SetPairSampler(split, k=self.k, n=self.n)

    def batch_loss(
        self,
        model: Recommender,
        representations,
        batch: Sequence[tuple[int, np.ndarray, np.ndarray]],
    ) -> Tensor:
        # One scoring call for the whole batch.
        batch_users = [
            np.full(positives.shape[0] + negatives.shape[0], user, dtype=np.int64)
            for user, positives, negatives in batch
        ]
        batch_items = [
            np.concatenate([positives, negatives]).astype(np.int64)
            for _, positives, negatives in batch
        ]
        flat_users, flat_items, spans = self._flat_pairs(batch_users, batch_items)
        scores = model.scores_for_pairs(representations, flat_users, flat_items)

        total: Tensor | None = None
        for (start, stop), (_, positives, negatives) in zip(spans, batch):
            k = positives.shape[0]
            instance_scores = scores[start:stop]
            pos_scores = instance_scores[np.arange(k)]
            neg_scores = instance_scores[np.arange(k, stop - start)]

            # item -> item: all pairwise margins via broadcasting.
            n_neg = stop - start - k
            diff = pos_scores.reshape(k, 1) - neg_scores.reshape(1, n_neg)
            item_item = -F.log_sigmoid(diff).mean()

            # item -> set: hardest positive against every negative.
            hardest_positive = _select_min(pos_scores)
            item_set = -F.log_sigmoid(hardest_positive - neg_scores).mean()

            # set -> set: aggregated margin comparison.
            set_set = -F.log_sigmoid(
                pos_scores.mean() - _select_max(neg_scores) - self.margin
            )

            instance_loss = (
                item_item * self.item_weight
                + item_set * self.item_set_weight
                + set_set * self.set_weight
            )
            total = instance_loss if total is None else total + instance_loss
        return total * (1.0 / len(batch))
