"""SetRank (Wang et al., AAAI 2020) — setwise Bayesian collaborative ranking.

SetRank "encourages an observed item to rank in front of multiple
unobserved items in each list by making use of the concept of permutation
probability": the top-1 Plackett–Luce probability of the observed item
against a sampled negative set,

    P(i+ ranked first) = exp(s_{i+}) / (exp(s_{i+}) + sum_j exp(s_{j-})),

maximized over all observed interactions.  Implemented as a softmax
cross-entropy with the positive in slot 0, computed stably in log space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import Tensor, functional as F
from ..data.interactions import DatasetSplit
from ..data.samplers import OneVsSetSampler
from ..models.base import Recommender
from .base import Criterion

__all__ = ["SetRankCriterion"]


class SetRankCriterion(Criterion):
    """Plackett–Luce top-1 permutation-probability loss."""

    name = "SetRank"

    def __init__(self, num_negatives: int = 5) -> None:
        if num_negatives < 1:
            raise ValueError(f"num_negatives must be >= 1, got {num_negatives}")
        self.num_negatives = num_negatives

    def make_sampler(self, split: DatasetSplit) -> OneVsSetSampler:
        return OneVsSetSampler(split, num_negatives=self.num_negatives)

    def batch_loss(
        self,
        model: Recommender,
        representations,
        batch: Sequence[tuple[int, int, np.ndarray]],
    ) -> Tensor:
        width = 1 + self.num_negatives
        users = np.concatenate(
            [np.full(width, user, dtype=np.int64) for user, _, _ in batch]
        )
        items = np.concatenate(
            [
                np.concatenate([[positive], negatives])
                for _, positive, negatives in batch
            ]
        ).astype(np.int64)
        scores = model.scores_for_pairs(representations, users, items)
        matrix = scores.reshape(len(batch), width)
        log_probs = F.log_softmax(matrix, axis=1)
        first_column = log_probs[
            np.arange(len(batch)), np.zeros(len(batch), dtype=np.int64)
        ]
        return -first_column.mean()
