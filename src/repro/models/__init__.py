"""``repro.models`` — the recommendation backbones of the paper.

All models satisfy the :class:`~repro.models.base.Recommender` contract so
any criterion can train any backbone:

* :class:`~repro.models.mf.MFRecommender` — inner-product MF (Table III);
* :class:`~repro.models.gcn.GCNRecommender` — NGCF-style GCN, with a
  LightGCN variant (Table II);
* :class:`~repro.models.neumf.NeuMFRecommender` — GMF + MLP (Table IV);
* :class:`~repro.models.gcmc.GCMCRecommender` — graph auto-encoder with a
  softmax-over-levels decoder (Table IV).
"""

from .base import Recommender
from .gcmc import GCMCRecommender
from .gcn import GCNRecommender
from .mf import MFRecommender
from .neumf import NeuMFRecommender

__all__ = [
    "Recommender",
    "MFRecommender",
    "GCNRecommender",
    "NeuMFRecommender",
    "GCMCRecommender",
]
