"""The common recommendation-model interface.

Every backbone (MF, GCN, NeuMF, GCMC) exposes the same contract so that
any optimization criterion — LkP or a baseline — can train any model, the
generality the paper demonstrates in its Tables II–IV:

* :meth:`Recommender.representations` computes whatever intermediate
  state scoring needs (embedding tables for MF, propagated node
  embeddings for GCN, ...).  The trainer calls it once per optimization
  step so graph models do not re-propagate for every instance in a batch.
* :meth:`Recommender.scores_for_pairs` returns differentiable raw scores
  for (user, item) index arrays, built from those representations.
* :meth:`Recommender.item_vectors` exposes item-side representation rows
  for the paper's E-variant (embedding-based Gaussian diversity kernel).
* :meth:`Recommender.full_scores` produces the dense evaluation matrix
  under ``no_grad``.
* :attr:`Recommender.quality_transform` names how LkP converts raw scores
  into the positive quality values of Eq. 2/13: ``"exp"`` for
  inner-product models (exp of the dot product, Eq. 13) and ``"sigmoid"``
  for classifier-style models (NeuMF, GCMC).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..autodiff import Tensor, nn, no_grad

__all__ = ["Recommender"]


class Recommender(nn.Module):
    """Abstract base class for all backbones."""

    #: how LkP maps raw scores to kernel quality values ("exp" / "sigmoid")
    quality_transform: str = "exp"

    def __init__(self, num_users: int, num_items: int) -> None:
        super().__init__()
        if num_users < 1 or num_items < 1:
            raise ValueError("need at least one user and one item")
        self.num_users = num_users
        self.num_items = num_items

    # -- contract --------------------------------------------------------
    def representations(self) -> Any:  # pragma: no cover - abstract
        """Per-step shared state (embedding tables, propagated graphs...)."""
        raise NotImplementedError

    def scores_for_pairs(
        self, representations: Any, users: np.ndarray, items: np.ndarray
    ) -> Tensor:  # pragma: no cover - abstract
        """Differentiable raw scores for aligned (users, items) arrays."""
        raise NotImplementedError

    def item_vectors(self, representations: Any, items: np.ndarray) -> Tensor:
        """Item representation rows (for E-variant diversity kernels)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose item vectors"
        )

    # -- conveniences ----------------------------------------------------
    def score_items(self, user: int, items: np.ndarray) -> Tensor:
        """Scores of ``items`` for a single user (fresh representations)."""
        items = np.asarray(items, dtype=np.int64)
        users = np.full(items.shape[0], int(user), dtype=np.int64)
        return self.scores_for_pairs(self.representations(), users, items)

    def full_scores(self) -> np.ndarray:
        """Dense ``num_users x num_items`` score matrix for evaluation.

        Computed under ``no_grad`` in user-batches; subclasses may
        override with a faster closed form (MF/GCN use one matmul).
        """
        with no_grad():
            representations = self.representations()
            all_items = np.arange(self.num_items, dtype=np.int64)
            rows = []
            for user in range(self.num_users):
                users = np.full(self.num_items, user, dtype=np.int64)
                rows.append(
                    self.scores_for_pairs(representations, users, all_items).data
                )
        return np.stack(rows, axis=0)
