"""GCMC (van den Berg et al., 2017) — graph convolutional matrix completion.

The second Table IV rework target.  GCMC is a graph auto-encoder: a graph
convolution encodes users and items from the bipartite interaction graph,
and a bilinear decoder produces *a probability distribution over rating
levels via softmax* — the property the paper singles out as making GCMC's
relevance computation "distinct from commonly used" dot products and
MLP classifiers.

With implicit feedback there are two levels (interacted / not), so the
decoder outputs two logits per pair through separate bilinear forms and
the native criterion is the negative log-likelihood of the observed level
(positives observed as level 1, sampled negatives as level 0).  The raw
relevance score used for ranking and for LkP quality is the log-odds
``logit_1 - logit_0`` (monotone in P(level=1)); the LkP rework applies
the ``"sigmoid"`` transform to it, recovering exactly P(level=1).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..autodiff import Tensor, functional as F, nn, no_grad
from ..autodiff.sparse import bipartite_adjacency, normalize_adjacency, sparse_matmul
from ..utils.rng import ensure_rng
from .base import Recommender

__all__ = ["GCMCRecommender"]


class GCMCRecommender(Recommender):
    """Single-layer graph auto-encoder with a two-level bilinear decoder."""

    quality_transform = "sigmoid"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        train_matrix: sp.spmatrix,
        dim: int = 32,
        hidden_dim: int = 32,
        rng: np.random.Generator | int | None = None,
        init_std: float = 0.1,
    ) -> None:
        super().__init__(num_users, num_items)
        if train_matrix.shape != (num_users, num_items):
            raise ValueError(
                f"train matrix shape {train_matrix.shape} does not match "
                f"({num_users}, {num_items})"
            )
        rng = ensure_rng(rng)
        self.dim = dim
        self.hidden_dim = hidden_dim

        coo = train_matrix.tocoo()
        adjacency = bipartite_adjacency(
            num_users, num_items, coo.row.astype(np.int64), coo.col.astype(np.int64)
        )
        self._adjacency = normalize_adjacency(adjacency, add_self_loops=True)

        self.user_embedding = nn.Embedding(num_users, dim, rng, std=init_std)
        self.item_embedding = nn.Embedding(num_items, dim, rng, std=init_std)
        self.encoder = nn.Linear(dim, hidden_dim, rng)
        # One bilinear form per rating level, realised as Q_c = B_c B_c^T/d
        # style free matrices (full parameterization, as in the original).
        self.decoder_neg = nn.Linear(hidden_dim, hidden_dim, rng, bias=False)
        self.decoder_pos = nn.Linear(hidden_dim, hidden_dim, rng, bias=False)

    def representations(self) -> tuple[Tensor, Tensor]:
        embeddings = F.concat(
            [self.user_embedding.all_rows(), self.item_embedding.all_rows()], axis=0
        )
        hidden = F.relu(self.encoder(sparse_matmul(self._adjacency, embeddings)))
        user_repr = hidden[np.arange(self.num_users)]
        item_repr = hidden[np.arange(self.num_users, self.num_users + self.num_items)]
        return user_repr, item_repr

    def level_logits(
        self,
        representations: tuple[Tensor, Tensor],
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        """Per-pair logits over the two rating levels, shape ``(B, 2)``."""
        user_repr, item_repr = representations
        u = F.gather_rows(user_repr, users)
        v = F.gather_rows(item_repr, items)
        logit_neg = (self.decoder_neg(u) * v).sum(axis=1)
        logit_pos = (self.decoder_pos(u) * v).sum(axis=1)
        batch = users.shape[0]
        return F.concat(
            [logit_neg.reshape(batch, 1), logit_pos.reshape(batch, 1)], axis=1
        )

    def scores_for_pairs(
        self,
        representations: tuple[Tensor, Tensor],
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        logits = self.level_logits(representations, users, items)
        batch = users.shape[0]
        # log-odds of the positive level; monotone in P(level = 1).
        return logits[np.arange(batch), np.ones(batch, dtype=np.int64)] - logits[
            np.arange(batch), np.zeros(batch, dtype=np.int64)
        ]

    def item_vectors(self, representations, items: np.ndarray) -> Tensor:
        _, item_repr = representations
        return F.gather_rows(item_repr, items)

    def full_scores(self) -> np.ndarray:
        with no_grad():
            user_repr, item_repr = self.representations()
            pos = self.decoder_pos(user_repr).data @ item_repr.data.T
            neg = self.decoder_neg(user_repr).data @ item_repr.data.T
        return pos - neg
