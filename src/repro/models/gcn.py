"""Graph-convolutional backbone (NGCF-style, with a LightGCN option).

The paper's Table II deploys every criterion on "the basic GCN framework
that learns representations from high-order connectivities referring to
NGCF".  We implement that propagation over the symmetric-normalized
bipartite interaction graph ``Â``:

    E^(l+1) = LeakyReLU( Â E^(l) W1^(l) + (Â E^(l)) ⊙ E^(l) W2^(l) )

with the final representation the concatenation of all layer outputs
(NGCF's design), scored by inner product.  ``variant="lightgcn"`` drops
the weights and nonlinearity and averages the layers instead — the
simplification of He et al. (2020), included because the paper cites
LightGCN among the GCN family and it makes a useful ablation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..autodiff import Tensor, functional as F, nn, no_grad
from ..autodiff.sparse import bipartite_adjacency, normalize_adjacency, sparse_matmul
from ..utils.rng import ensure_rng
from .base import Recommender

__all__ = ["GCNRecommender"]


class GCNRecommender(Recommender):
    """NGCF-style graph CF model over the user-item bipartite graph.

    Parameters
    ----------
    train_matrix:
        Binary user × item CSR matrix of *training* interactions; the
        graph must never see validation/test edges.
    num_layers:
        Propagation depth (the paper's "high-order connectivities").
    variant:
        ``"ngcf"`` (default) or ``"lightgcn"``.
    """

    quality_transform = "exp"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        train_matrix: sp.spmatrix,
        dim: int = 64,
        num_layers: int = 2,
        variant: str = "ngcf",
        rng: np.random.Generator | int | None = None,
        init_std: float = 0.1,
        leaky_slope: float = 0.2,
    ) -> None:
        super().__init__(num_users, num_items)
        if variant not in ("ngcf", "lightgcn"):
            raise ValueError(f"variant must be 'ngcf' or 'lightgcn', got {variant!r}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if train_matrix.shape != (num_users, num_items):
            raise ValueError(
                f"train matrix shape {train_matrix.shape} does not match "
                f"({num_users}, {num_items})"
            )
        rng = ensure_rng(rng)
        self.dim = dim
        self.num_layers = num_layers
        self.variant = variant
        self.leaky_slope = leaky_slope

        coo = train_matrix.tocoo()
        adjacency = bipartite_adjacency(
            num_users, num_items, coo.row.astype(np.int64), coo.col.astype(np.int64)
        )
        self._adjacency = normalize_adjacency(adjacency)

        self.user_embedding = nn.Embedding(num_users, dim, rng, std=init_std)
        self.item_embedding = nn.Embedding(num_items, dim, rng, std=init_std)
        if variant == "ngcf":
            self.w1_layers = [nn.Linear(dim, dim, rng, bias=True) for _ in range(num_layers)]
            self.w2_layers = [nn.Linear(dim, dim, rng, bias=True) for _ in range(num_layers)]
        else:
            self.w1_layers = []
            self.w2_layers = []

    # ------------------------------------------------------------------
    def representations(self) -> tuple[Tensor, Tensor]:
        """Propagate and return (user_repr, item_repr) tensors."""
        embeddings = F.concat(
            [self.user_embedding.all_rows(), self.item_embedding.all_rows()], axis=0
        )
        layer_outputs = [embeddings]
        current = embeddings
        for layer in range(self.num_layers):
            propagated = sparse_matmul(self._adjacency, current)
            if self.variant == "ngcf":
                message = self.w1_layers[layer](propagated) + self.w2_layers[layer](
                    propagated * current
                )
                current = message.leaky_relu(self.leaky_slope)
            else:
                current = propagated
            layer_outputs.append(current)
        if self.variant == "ngcf":
            final = F.concat(layer_outputs, axis=1)
        else:
            stacked = layer_outputs[0]
            for extra in layer_outputs[1:]:
                stacked = stacked + extra
            final = stacked * (1.0 / len(layer_outputs))
        user_repr = final[np.arange(self.num_users)]
        item_repr = final[np.arange(self.num_users, self.num_users + self.num_items)]
        return user_repr, item_repr

    def scores_for_pairs(
        self,
        representations: tuple[Tensor, Tensor],
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        user_repr, item_repr = representations
        user_rows = F.gather_rows(user_repr, users)
        item_rows = F.gather_rows(item_repr, items)
        return (user_rows * item_rows).sum(axis=1)

    def item_vectors(self, representations, items: np.ndarray) -> Tensor:
        _, item_repr = representations
        return F.gather_rows(item_repr, items)

    def full_scores(self) -> np.ndarray:
        with no_grad():
            user_repr, item_repr = self.representations()
        return user_repr.data @ item_repr.data.T
