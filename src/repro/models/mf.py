"""Matrix-factorization backbone.

The paper's "basic MF implementation" (Table III): user and item
embeddings scored by inner product, exactly the relevance model of BPR-MF
(Rendle et al. 2012).  The LkP quality of Eq. 13, ``exp(e_u · e_i)``, is
obtained by the criterion applying the ``"exp"`` transform to these raw
scores.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, functional as F, nn, no_grad
from ..utils.rng import ensure_rng
from .base import Recommender

__all__ = ["MFRecommender"]


class MFRecommender(Recommender):
    """Plain inner-product matrix factorization."""

    quality_transform = "exp"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        dim: int = 64,
        rng: np.random.Generator | int | None = None,
        init_std: float = 0.1,
    ) -> None:
        super().__init__(num_users, num_items)
        rng = ensure_rng(rng)
        if dim < 1:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        self.dim = dim
        self.user_embedding = nn.Embedding(num_users, dim, rng, std=init_std)
        self.item_embedding = nn.Embedding(num_items, dim, rng, std=init_std)

    def representations(self) -> tuple[Tensor, Tensor]:
        return self.user_embedding.all_rows(), self.item_embedding.all_rows()

    def scores_for_pairs(
        self,
        representations: tuple[Tensor, Tensor],
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        user_table, item_table = representations
        user_rows = F.gather_rows(user_table, users)
        item_rows = F.gather_rows(item_table, items)
        return (user_rows * item_rows).sum(axis=1)

    def item_vectors(self, representations, items: np.ndarray) -> Tensor:
        _, item_table = representations
        return F.gather_rows(item_table, items)

    def full_scores(self) -> np.ndarray:
        with no_grad():
            return self.user_embedding.weight.data @ self.item_embedding.weight.data.T
