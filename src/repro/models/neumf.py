"""NeuMF (He et al., WWW 2017) — GMF fused with an MLP tower.

One of the paper's two "seminal CF models" for the Table IV rework
experiment.  NeuMF predicts the interaction probability of a (user, item)
pair by combining:

* **GMF**: elementwise product of a first pair of embeddings, linearly
  projected;
* **MLP**: a second pair of embeddings concatenated and pushed through a
  pyramid MLP;

and fusing both with a final linear layer.  Its native criterion is
binary cross-entropy on the output logit; the LkP rework replaces that
loss while keeping this architecture, using the ``"sigmoid"`` quality
transform (the model's output is already a probability-scale relevance).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, functional as F, nn
from ..utils.rng import ensure_rng
from .base import Recommender

__all__ = ["NeuMFRecommender"]


class NeuMFRecommender(Recommender):
    """Neural matrix factorization: GMF + MLP with a fusion layer."""

    quality_transform = "sigmoid"

    def __init__(
        self,
        num_users: int,
        num_items: int,
        dim: int = 32,
        mlp_layers: tuple[int, ...] = (64, 32, 16),
        rng: np.random.Generator | int | None = None,
        init_std: float = 0.1,
    ) -> None:
        super().__init__(num_users, num_items)
        rng = ensure_rng(rng)
        self.dim = dim
        self.gmf_user = nn.Embedding(num_users, dim, rng, std=init_std)
        self.gmf_item = nn.Embedding(num_items, dim, rng, std=init_std)
        self.mlp_user = nn.Embedding(num_users, dim, rng, std=init_std)
        self.mlp_item = nn.Embedding(num_items, dim, rng, std=init_std)
        sizes = [2 * dim, *mlp_layers]
        self.mlp = nn.MLP(sizes, rng, activation=F.relu)
        self.fusion = nn.Linear(dim + mlp_layers[-1], 1, rng)

    def representations(self) -> tuple[Tensor, Tensor, Tensor, Tensor]:
        return (
            self.gmf_user.all_rows(),
            self.gmf_item.all_rows(),
            self.mlp_user.all_rows(),
            self.mlp_item.all_rows(),
        )

    def scores_for_pairs(
        self,
        representations: tuple[Tensor, Tensor, Tensor, Tensor],
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tensor:
        gmf_user, gmf_item, mlp_user, mlp_item = representations
        gu = F.gather_rows(gmf_user, users)
        gi = F.gather_rows(gmf_item, items)
        mu = F.gather_rows(mlp_user, users)
        mi = F.gather_rows(mlp_item, items)
        gmf_vector = gu * gi
        mlp_vector = F.relu(self.mlp(F.concat([mu, mi], axis=1)))
        fused = F.concat([gmf_vector, mlp_vector], axis=1)
        logits = self.fusion(fused)
        return logits.reshape(logits.shape[0])

    def item_vectors(self, representations, items: np.ndarray) -> Tensor:
        # The GMF item table is the natural "item feature" for E-variants.
        _, gmf_item, _, _ = representations
        return F.gather_rows(gmf_item, items)
