"""``repro.retrieval`` — pluggable candidate generation for k-DPP serving.

The serving decomposition (quality funnel → low-rank diversity kernel)
leaves candidate generation as the catalog-scale cost once the dual
stage is cheap; this package makes the funnel a subsystem behind one
:class:`~repro.retrieval.base.CandidateSource` interface:

* :class:`~repro.retrieval.exact.ExactTopK` — exact vectorized per-shard
  quality top-k (the parity oracle, PR 4's inlined funnel extracted);
* :class:`~repro.retrieval.quantile.QuantileFunnel` — per-version
  quantile sketches turn the batch funnel into one threshold mask, with
  exact per-row fallback (and exact pools whenever the mask fills);
* :class:`~repro.retrieval.ivf.IVFIndex` — k-means coarse quantization
  of the factor rows, probed by per-request quality mass (approximate;
  recall@funnel is measured by ``benchmarks/bench_retrieval.py``);
* :class:`~repro.retrieval.cache.FunnelCache` — per-``(user, catalog
  version, width)`` LRU of funnel pools for repeat visitors, invalidated
  on publish.

Sources are snapshot-duck-typed (they never import ``repro.serving``)
and plug into :class:`~repro.serving.sharding.ShardedKDPPServer`,
:class:`~repro.serving.runtime.ServingRuntime` and
:class:`~repro.serving.bridge.RecommenderBridge` via their ``source`` /
``funnel_cache`` parameters.
"""

from .base import CandidateSource, shard_offsets, shard_snapshots
from .cache import FunnelCache, exclusion_token, session_token
from .exact import ExactTopK
from .ivf import IVFIndex
from .quantile import QuantileFunnel

__all__ = [
    "CandidateSource",
    "ExactTopK",
    "QuantileFunnel",
    "IVFIndex",
    "FunnelCache",
    "exclusion_token",
    "session_token",
    "shard_offsets",
    "shard_snapshots",
]
