"""The candidate-generation contract behind the serving funnel.

PR 4's load test showed catalog-scale serving is *funnel-bound*: before
the k-DPP ever runs, every request pays an exact O(M) per-shard quality
top-k (the paper's serving decomposition — quality scores ``q_u``
funneling into the low-rank diversity kernel of Eq. 2 — makes candidate
generation the dominant cost once the dual-kernel stage is cheap).
This package makes that funnel a pluggable subsystem: a
:class:`CandidateSource` turns a ``(B, M)`` batch of effective quality
vectors into a ``(B, P)`` batch of candidate pools, and the serving
layers (:class:`~repro.serving.sharding.ShardedKDPPServer`,
:class:`~repro.serving.runtime.ServingRuntime`,
:class:`~repro.serving.bridge.RecommenderBridge`) accept any
implementation:

* :class:`~repro.retrieval.exact.ExactTopK` — the PR 4 vectorized
  per-shard ``argpartition``, extracted here as the parity oracle;
* :class:`~repro.retrieval.quantile.QuantileFunnel` — per-shard quality
  quantile sketches (a fixed item subsample per catalog version) turn a
  batch's funnel into one vectorized threshold mask, with an exact
  per-row fallback when the mask under-fills the funnel width;
* :class:`~repro.retrieval.ivf.IVFIndex` — a k-means coarse quantizer
  over the catalog's factor rows, probing the top cells by per-request
  quality mass (the genuinely approximate source — recall@funnel is
  measured, not guaranteed).

Sources are deliberately **snapshot-duck-typed**: they read catalogs
through ``num_items`` / ``version`` and the per-version
``extension(key, build)`` hook that both
:class:`~repro.serving.catalog.CatalogSnapshot` and
:class:`~repro.serving.sharding.ShardedSnapshot` expose, plus the
optional ``offsets`` / ``shards`` attributes of the sharded flavor — so
this package never imports ``repro.serving`` and one source serves both
catalog shapes (a monolithic snapshot is treated as a single shard).

Pool contract (what :meth:`CandidateSource.pools` must return): an
``(B, P)`` int64 array of **global item ids**; per shard, each row holds
``min(width, shard_size)`` distinct ids ordered by descending quality
(ties broken arbitrarily), shards concatenated in shard order — exactly
the layout of PR 4's inlined funnel, so the exact source stays
bit-compatible with it and approximate sources stay interchangeable.
"""

from __future__ import annotations

import time

import numpy as np

from ..utils.metrics import Counter

__all__ = ["CandidateSource", "shard_offsets", "shard_snapshots"]


def shard_offsets(snapshot) -> np.ndarray:
    """Shard boundaries of either catalog flavor.

    :class:`~repro.serving.sharding.ShardedSnapshot` carries explicit
    ``offsets``; a monolithic :class:`~repro.serving.catalog.CatalogSnapshot`
    is one shard spanning the whole item axis.
    """
    offsets = getattr(snapshot, "offsets", None)
    if offsets is not None:
        return np.asarray(offsets, dtype=np.int64)
    return np.array([0, snapshot.num_items], dtype=np.int64)


def shard_snapshots(snapshot) -> tuple:
    """The per-shard snapshots of either catalog flavor (self if monolithic).

    Per-shard index builders (IVF's k-means state) hang their per-version
    caches off each shard snapshot's ``extension`` hook through this.
    """
    shards = getattr(snapshot, "shards", None)
    if shards is not None:
        return tuple(shards)
    return (snapshot,)


class CandidateSource:
    """Interface: a batched quality funnel over a catalog snapshot.

    Subclasses implement :meth:`_pools`; the public :meth:`pools` wraps
    it with argument validation and thread-safe stats accounting (the
    micro-batch runtime calls sources from worker threads), so every
    implementation reports comparable ``batches`` / ``rows`` /
    ``fallback_rows`` / ``time_s`` counters — the retrieval benchmark
    reads funnel time from here and queue time from the
    :class:`~repro.serving.scheduler.MicroBatcher` stats to split the
    two costs.
    """

    #: short identifier used in stats, benchmarks and cache diagnostics
    name = "base"

    def __init__(self) -> None:
        # Registry-grade primitives (each with its own lock) replace the
        # old plain ints guarded by one ad-hoc lock: increments from
        # worker threads can never tear a concurrent stats() read, and
        # reset_stats() semantics are uniform across every source
        # (wrappers like BreakerSource reset their extras the same way).
        self._batches = Counter(
            "retrieval_batches_total", "pools() calls served"
        )
        self._rows = Counter(
            "retrieval_rows_total", "request rows funnelled"
        )
        self._fallback_rows = Counter(
            "retrieval_fallback_rows_total", "rows served by exact fallback"
        )
        self._time_s = Counter(
            "retrieval_time_seconds_total", "wall seconds inside pools()"
        )
        # Fault-injection hooks (both None in production).  They are
        # plain attributes — not constructor arguments — so a harness
        # (``repro.serving.resilience.FaultPlan.attach``) can arm any
        # already-built source without this package ever importing the
        # serving layer.  ``fault_hook(name, batch_rows)`` runs at every
        # ``pools()`` entry and may raise or delay; ``shard_hook(shard)``
        # is ticked by implementations once per shard pass (the
        # slow-shard lever of the chaos tests).
        self.fault_hook = None
        self.shard_hook = None

    # ------------------------------------------------------------------
    def pools(self, quality: np.ndarray, width: int, snapshot) -> np.ndarray:
        """Candidate pools for a request batch (see the pool contract).

        ``quality`` is the ``(B, M)`` stack of effective (exclusion-
        zeroed) quality vectors; ``width`` is the per-shard candidate
        budget, clipped to each shard's size.
        """
        quality = np.asarray(quality, dtype=np.float64)
        if quality.ndim != 2 or quality.shape[1] != snapshot.num_items:
            raise ValueError(
                f"quality stack must be (B, {snapshot.num_items}), "
                f"got {quality.shape}"
            )
        if width < 1:
            raise ValueError(f"funnel width must be positive, got {width}")
        hook = self.fault_hook
        if hook is not None:
            hook(self.name, int(quality.shape[0]))
        start = time.perf_counter()
        out, fallbacks = self._pools(quality, width, snapshot)
        elapsed = time.perf_counter() - start
        self._batches.inc()
        self._rows.inc(int(quality.shape[0]))
        self._fallback_rows.inc(fallbacks)
        self._time_s.inc(elapsed)
        return out

    def _pools(
        self, quality: np.ndarray, width: int, snapshot
    ) -> tuple[np.ndarray, int]:
        """Implementation hook: return ``(pools, fallback_row_count)``."""
        raise NotImplementedError

    def _shard_tick(self, shard: int) -> None:
        """Implementations call this once per shard pass so an armed
        ``shard_hook`` can inject per-shard latency deterministically."""
        hook = self.shard_hook
        if hook is not None:
            hook(shard)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters snapshot: funnel calls, rows, exact fallbacks, time."""
        return {
            "source": self.name,
            "batches": int(self._batches.value),
            "rows": int(self._rows.value),
            "fallback_rows": int(self._fallback_rows.value),
            "time_s": self._time_s.value,
        }

    def reset_stats(self) -> None:
        """Zero every counter this source reports.

        Uniform contract: subclasses that report extra counters (e.g.
        :class:`~repro.serving.resilience.BreakerSource`) extend this so
        one ``reset_stats()`` call always zeroes the *whole* ``stats()``
        dict the source returns — gate state (like an open breaker) is
        not a counter and survives.
        """
        self._batches.reset()
        self._rows.reset()
        self._fallback_rows.reset()
        self._time_s.reset()
