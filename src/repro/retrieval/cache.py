"""Per-user funnel cache: repeat visitors skip candidate generation.

The runtime's load profile is dominated by repeat visitors — the same
user submitting again within one score/catalog generation — and their
funnel output is deterministic given (user quality, catalog version,
funnel width).  :class:`FunnelCache` memoizes exactly that: the serving
funnel (:meth:`~repro.serving.sharding.ShardedKDPPServer._lower`)
consults it per request before running its
:class:`~repro.retrieval.base.CandidateSource`, so a hit replaces the
whole candidate-generation stage with one dictionary read.

Keying and correctness
----------------------
Entries are keyed on ``(user, catalog_version, width, exclusions)``.
The catalog version in the key makes hot-swap correctness automatic — a
:meth:`publish` bumps the version and every old entry stops matching —
while the explicit :meth:`invalidate` hook (wired into
:meth:`~repro.serving.runtime.ServingRuntime.publish`) reclaims the
stale generation's memory immediately instead of waiting for LRU
pressure.  The exclusion component matters because exclusions are
zeroed *into* the quality the funnel sees: the same user with a
different exclusion set funnels to a different pool, and exclusion
arrays are small (a user's interaction history), so hashing them is
O(|exclude|), not O(M) — see :func:`exclusion_token`.  Session history
(items shown on earlier pages) is folded into the same key component
via :func:`session_token`: a cached pool computed before page 1 must
not resurface page-1 items on page 2.

The ``user`` id must identify one underlying quality vector per catalog
version (the :class:`~repro.serving.bridge.RecommenderBridge`
guarantees this: one score snapshot per user per generation).  As cheap
insurance against callers that re-score without re-versioning, every
entry also stores a strided fingerprint of the quality vector it was
built from; a lookup whose fingerprint disagrees is treated as a miss
and overwritten — an O(64) guard, not an O(M) hash.  The fingerprint is
insurance with stride-sized holes; the exclusion token is exact, which
is why exclusions get a key component instead of relying on the
fingerprint to notice a handful of zeroed entries.

Thread safety: one lock guards the LRU dict and all counters (the
micro-batch runtime funnels from multiple worker threads).  Stored
pools are frozen read-only arrays shared by reference — every consumer
(the engine's candidate-slice path) only reads them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..utils.metrics import Counter

__all__ = ["FunnelCache", "exclusion_token", "session_token"]

#: quality entries sampled for the fingerprint guard
_FINGERPRINT_PROBES = 64


def _fingerprint(quality: np.ndarray) -> float:
    """A cheap strided checksum of the quality vector (see module doc)."""
    stride = max(1, quality.shape[0] // _FINGERPRINT_PROBES)
    return float(quality[::stride].sum())


def exclusion_token(exclude) -> int | None:
    """A hashable exact key component for a request's exclusion set.

    ``None`` / empty → ``None``; otherwise a hash of the id array's
    bytes — O(|exclude|), and exclusion sets are user-history sized.
    The serving funnel passes this as :meth:`FunnelCache.get`'s
    ``exclusions`` so requests differing only in exclusions can never
    share a pool.
    """
    if exclude is None:
        return None
    ids = np.asarray(exclude, dtype=np.int64)
    if ids.size == 0:
        return None
    return hash(ids.tobytes())


def session_token(exclude, history) -> int | None:
    """Key component covering both exclusions and session history.

    Session history is zeroed into the funnel quality exactly like
    exclusions (a page the user already saw must never re-enter a
    cached pool), so the cache key has to separate requests that differ
    in *either* set — and keep them distinct from each other, since
    history additionally conditions the kernel downstream.  Both
    ``None``/empty → ``None``, which collapses to the plain
    :func:`exclusion_token` key for history-free traffic (pre-session
    entries stay valid).
    """
    history_component = exclusion_token(history)
    if history_component is None:
        return exclusion_token(exclude)
    return hash((exclusion_token(exclude), history_component))


class FunnelCache:
    """Thread-safe LRU of funnel pools keyed by (user, version, width)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[float, np.ndarray]] = OrderedDict()
        # Registry-grade counters (self-locking) so a stats() read never
        # tears against worker-thread lookups; the int-valued .hits /
        # .misses / .invalidations attributes survive as properties.
        self._hits = Counter("funnel_cache_hits_total", "pool lookups served")
        self._misses = Counter("funnel_cache_misses_total", "pool lookups missed")
        self._invalidations = Counter(
            "funnel_cache_invalidations_total", "entries dropped by invalidate()"
        )

    # ------------------------------------------------------------------
    def get(
        self,
        user: int,
        version: int,
        width: int,
        quality: np.ndarray,
        exclusions: int | None = None,
    ) -> np.ndarray | None:
        """The cached pool, or None on miss / fingerprint disagreement.

        ``exclusions`` is the request's :func:`exclusion_token` (the
        quality handed here already has those entries zeroed).
        """
        key = (int(user), int(version), int(width), exclusions)
        probe = _fingerprint(quality)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == probe:
                self._entries.move_to_end(key)
                self._hits.inc()
                return entry[1]
            if entry is not None:
                # Same user, same version, different quality: the entry
                # is stale insurance-wise; drop it so put() replaces it.
                del self._entries[key]
            self._misses.inc()
            return None

    def put(
        self,
        user: int,
        version: int,
        width: int,
        pool: np.ndarray,
        quality: np.ndarray,
        exclusions: int | None = None,
    ) -> None:
        key = (int(user), int(version), int(width), exclusions)
        frozen = np.array(pool, dtype=np.int64, copy=True)
        frozen.setflags(write=False)
        with self._lock:
            self._entries[key] = (_fingerprint(quality), frozen)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def invalidate(self, keep_version: int | None = None) -> int:
        """Drop entries (all, or every version except ``keep_version``).

        Returns the number of entries dropped.  The runtime calls this
        on :meth:`publish` with the new version — correctness never
        depends on it (stale versions can't match a lookup key), it just
        frees the displaced generation's pools eagerly.
        """
        with self._lock:
            if keep_version is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    key for key in self._entries if key[1] != int(keep_version)
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self._invalidations.inc(dropped)
            return dropped

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def invalidations(self) -> int:
        return int(self._invalidations.value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }

    def footprint(self) -> dict:
        """Byte accounting of the retained pools, per catalog version.

        The footprint report (:mod:`repro.serving.profiling`) reads this
        to surface generation-pinning: pool bytes still attributed to a
        displaced version after a publish mean :meth:`invalidate` never
        ran (or in-flight traffic re-populated the old generation).
        """
        by_version: dict[str, int] = {}
        total = 0
        with self._lock:
            entries = len(self._entries)
            for key, (_probe, pool) in self._entries.items():
                nbytes = int(pool.nbytes)
                total += nbytes
                label = str(key[1])
                by_version[label] = by_version.get(label, 0) + nbytes
        return {
            "entries": entries,
            "bytes": total,
            "by_version": by_version,
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss/invalidation counters (entries stay cached)."""
        self._hits.reset()
        self._misses.reset()
        self._invalidations.reset()
