"""The exact per-shard top-k funnel — PR 4's inlined path, as a source.

This is the parity oracle of the retrieval subsystem: pool membership
*and* within-shard ordering are exact (descending quality, stable under
the same tie-breaking as :func:`~repro.utils.topk.top_k_indices`), so a
:class:`~repro.serving.sharding.ShardedKDPPServer` running this source
reproduces the pre-subsystem funnel bit for bit — including identical
seeded samples downstream.  Cost: one row-wise ``argpartition`` +
``argsort`` per shard over the full ``(B, shard_size)`` quality slice,
the O(M)-per-request scan the approximate sources exist to avoid.
"""

from __future__ import annotations

import numpy as np

from ..utils.topk import top_k_indices_rows
from .base import CandidateSource, shard_offsets

__all__ = ["ExactTopK"]


class ExactTopK(CandidateSource):
    """Exact vectorized per-shard quality top-``width`` candidate pools."""

    name = "exact"

    def _pools(
        self, quality: np.ndarray, width: int, snapshot
    ) -> tuple[np.ndarray, int]:
        offsets = shard_offsets(snapshot)
        parts = []
        for s in range(offsets.shape[0] - 1):
            self._shard_tick(s)
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            local_width = min(width, hi - lo)
            parts.append(top_k_indices_rows(quality[:, lo:hi], local_width) + lo)
        return np.concatenate(parts, axis=1), 0
