"""IVF coarse quantization over the catalog's factor rows.

The genuinely approximate candidate source: a k-means coarse quantizer
partitions each shard's factor rows ``v_i ∈ R^r`` into cells (the
classic inverted-file layout of ANN retrieval), and a request probes
only the ``nprobe`` cells with the highest **quality mass**
``Σ_{i ∈ cell} q_ui`` — the cells where the user's Eq. 2 quality
concentrates.  Survivors are the union of the probed cells' members,
cut to the per-shard funnel width by exact quality top-k *within the
union*.

Why mass works: serving quality comes from trained score models whose
geometry is the same factor space the quantizer partitions (Eq. 2's
kernel couples quality and factors item-wise), so a user's high-quality
items cluster into few cells and probing by mass recovers most of the
exact funnel — recall@funnel is a measured property of the workload,
not a guarantee, which is exactly why the retrieval benchmark and tests
track it (≥ 0.95 on the structured synthetic catalogs) together with
the end-to-end NDCG delta.

Index build is numpy-only Lloyd k-means, seeded per catalog version and
cached on each shard snapshot's per-version ``extension`` hook — the
first batch after a hot-swap pays the build, every later batch reads
it.  Per-request probe cost: one ``reduceat`` quality-mass pass
(O(shard_size) adds, no selection), one tiny ``(B, cells)`` partition,
and per-row unions of a few cells' member lists.  Shards too small to
quantize usefully fall back to the exact funnel wholesale.
"""

from __future__ import annotations

import numpy as np

from ..utils.topk import top_k_indices_rows
from .base import CandidateSource, shard_offsets, shard_snapshots

__all__ = ["IVFIndex"]


class _ShardIndex:
    """Frozen k-means state of one shard: members grouped by cell."""

    __slots__ = ("permutation", "starts", "sizes", "num_cells")

    def __init__(self, labels: np.ndarray, num_cells: int) -> None:
        # Stable sort groups items by cell; empty cells are dropped so
        # the reduceat boundaries below are strictly increasing.
        sizes = np.bincount(labels, minlength=num_cells)
        keep = np.flatnonzero(sizes > 0)
        self.permutation = np.argsort(labels, kind="stable")
        self.sizes = sizes[keep]
        self.starts = np.concatenate(([0], np.cumsum(self.sizes)[:-1]))
        self.num_cells = int(keep.shape[0])

    def members(self, cell: int) -> np.ndarray:
        start = self.starts[cell]
        return self.permutation[start : start + self.sizes[cell]]


def _kmeans_labels(
    factors: np.ndarray, num_cells: int, iters: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain Lloyd iterations; empty cells re-seeded to random rows."""
    num_rows = factors.shape[0]
    centers = factors[rng.choice(num_rows, size=num_cells, replace=False)].copy()
    labels = np.zeros(num_rows, dtype=np.int64)
    for _ in range(max(iters, 1)):
        # Nearest center in L2 == argmax of x·c - |c|²/2.
        logits = factors @ centers.T - 0.5 * (centers**2).sum(axis=1)[None, :]
        labels = np.argmax(logits, axis=1)
        counts = np.bincount(labels, minlength=num_cells)
        sums = np.zeros_like(centers)
        np.add.at(sums, labels, factors)
        filled = counts > 0
        centers[filled] = sums[filled] / counts[filled, None]
        empty = np.flatnonzero(~filled)
        if empty.size:
            centers[empty] = factors[
                rng.choice(num_rows, size=empty.size, replace=False)
            ]
    return labels


class IVFIndex(CandidateSource):
    """Quality-mass-probed inverted-file candidate source.

    Parameters
    ----------
    num_cells:
        Cells per shard; default ``round(sqrt(shard_size))`` (clipped to
        ``[4, shard_size]``), the standard IVF balance point between
        probe cost and cell granularity.
    nprobe:
        Cells probed per request per shard; default ``ceil(cells / 8)``.
        More probes → higher recall, more union work.
    kmeans_iters / seed:
        Lloyd iterations and the base seed of the version-keyed build
        RNG (version ``v`` builds from ``(seed, v)``).
    min_shard_items:
        Shards below this size skip quantization and serve exactly.
    """

    name = "ivf"

    def __init__(
        self,
        num_cells: int | None = None,
        nprobe: int | None = None,
        kmeans_iters: int = 6,
        seed: int = 0,
        min_shard_items: int = 256,
    ) -> None:
        super().__init__()
        if num_cells is not None and num_cells < 1:
            raise ValueError(f"num_cells must be positive, got {num_cells}")
        if nprobe is not None and nprobe < 1:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        if kmeans_iters < 1:
            raise ValueError(f"kmeans_iters must be positive, got {kmeans_iters}")
        self.num_cells = num_cells
        self.nprobe = nprobe
        self.kmeans_iters = int(kmeans_iters)
        self.seed = int(seed)
        self.min_shard_items = int(min_shard_items)

    # ------------------------------------------------------------------
    def _shard_index(self, shard) -> _ShardIndex | None:
        """The shard's per-version k-means state (None = serve exactly)."""
        key = (
            "ivf-index",
            self.num_cells,
            self.kmeans_iters,
            self.seed,
            self.min_shard_items,
        )

        def build(snap) -> _ShardIndex | None:
            size = snap.num_items
            if size < self.min_shard_items:
                return None
            cells = (
                self.num_cells
                if self.num_cells is not None
                else int(round(np.sqrt(size)))
            )
            cells = max(4, min(cells, size))
            rng = np.random.default_rng([self.seed, snap.version])
            labels = _kmeans_labels(snap.factors, cells, self.kmeans_iters, rng)
            return _ShardIndex(labels, cells)

        return shard.extension(key, build)

    def _nprobe(self, index: _ShardIndex) -> int:
        if self.nprobe is not None:
            return min(self.nprobe, index.num_cells)
        return max(1, -(-index.num_cells // 8))

    # ------------------------------------------------------------------
    def _pools(
        self, quality: np.ndarray, width: int, snapshot
    ) -> tuple[np.ndarray, int]:
        offsets = shard_offsets(snapshot)
        shards = shard_snapshots(snapshot)
        batch = quality.shape[0]
        parts = []
        fallback_rows = 0
        for s, shard in enumerate(shards):
            self._shard_tick(s)
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            size = hi - lo
            local_width = min(width, size)
            shard_quality = quality[:, lo:hi]
            index = self._shard_index(shard)
            if index is None or index.num_cells <= self._nprobe(index):
                parts.append(top_k_indices_rows(shard_quality, local_width) + lo)
                continue
            nprobe = self._nprobe(index)
            # Quality mass per cell: one segment-sum over the cell-grouped
            # permutation of the shard's quality slice.
            grouped = shard_quality[:, index.permutation]
            mass = np.add.reduceat(grouped, index.starts, axis=1)
            probed = np.argpartition(-mass, nprobe - 1, axis=1)[:, :nprobe]
            part = np.empty((batch, local_width), dtype=np.int64)
            for b in range(batch):
                union = np.concatenate(
                    [index.members(cell) for cell in probed[b]]
                )
                if union.shape[0] < local_width:
                    fallback_rows += 1
                    part[b] = top_k_indices_rows(
                        shard_quality[b : b + 1], local_width
                    )[0]
                    continue
                values = shard_quality[b, union]
                if union.shape[0] > local_width:
                    keep = np.argpartition(-values, local_width - 1)[:local_width]
                    union, values = union[keep], values[keep]
                part[b] = union[np.argsort(-values, kind="stable")]
            parts.append(part + lo)
        return np.concatenate(parts, axis=1), fallback_rows
