"""Quantile-sketch funnels: threshold masks instead of argpartitions.

The exact funnel pays a row-wise ``argpartition`` over every shard's
full quality slice — an O(M) selection per request whose constant
dominates serving at catalog scale (the PR 4 funnel-bound ceiling).
:class:`QuantileFunnel` replaces the selection with a comparison:

1. **Sketch (once per catalog version).**  Each shard contributes a
   fixed random subsample of ``sketch_size`` item ids, drawn with a
   version-seeded RNG and cached on the snapshot's per-version
   ``extension`` hook.  The sketch is the quantile estimator: a
   request's quality over the sampled ids is an empirical distribution
   of its quality over the shard.
2. **Threshold (per batch).**  For each request and shard, the sketch
   yields a cutoff estimating the quality of the shard's
   ``overshoot × width``-th best item — one partition of the small
   ``(B, shards, sketch_size)`` stack instead of per-shard
   ``(B, shard_size)`` selections.
3. **Mask (per batch).**  Survivors are ``quality >= cutoff``, one
   vectorized comparison per shard slice written into a single boolean
   buffer; a single flat scan then extracts every ``(request, shard)``
   cell's survivors at once, and the final top-``width`` per cell runs
   batched over the padded ``(B · shards, ~overshoot × width)``
   survivor matrix — never over the catalog axis.

Exactness: if a cell's survivor count reaches ``width``, its cutoff was
at or below the shard's true ``width``-th quality value, so the top
``width`` among survivors *is* the exact per-shard top ``width`` — the
pool matches :class:`~repro.retrieval.exact.ExactTopK` item for item
(and, for tie-free qualities, order for order).  When the sketch
overshoots and the mask under-fills, the cell falls back to the exact
per-shard selection, counted in ``stats()["fallback_rows"]``.  The
``overshoot`` margin trades mask width (a few× more survivors to scan)
against fallback frequency; recall@funnel is 1.0 on every non-fallback
cell by construction and the retrieval benchmark measures it anyway,
alongside the funnel-time win this source exists for.

Degenerate geometries — a shard no wider than the funnel, or no wider
than the sketch — gain nothing from masking; the whole batch is then
served exactly (and counted as fallback rows), which keeps the source
safe to use on toy catalogs.
"""

from __future__ import annotations

import numpy as np

from ..utils.topk import top_k_indices, top_k_indices_rows
from .base import CandidateSource, shard_offsets

__all__ = ["QuantileFunnel"]


class QuantileFunnel(CandidateSource):
    """Sketch-thresholded per-shard funnel (exact-on-success, see module).

    Parameters
    ----------
    sketch_size:
        Items sampled per shard for the quantile sketch.  Bigger
        sketches estimate cutoffs more tightly (fewer survivors to scan,
        fewer fallbacks) at O(sketch_size) per-request threshold cost.
    overshoot:
        Safety factor on the survivor target: the cutoff aims at the
        ``overshoot × width``-th best item so sampling error rarely
        pushes it above the true ``width``-th value.
    seed:
        Base seed of the version-keyed sketch RNG (the sketch for
        catalog version ``v`` is drawn from ``(seed, v)``, so hot-swaps
        re-sketch deterministically).
    """

    name = "quantile"

    def __init__(
        self, sketch_size: int = 512, overshoot: float = 4.0, seed: int = 0
    ) -> None:
        super().__init__()
        if sketch_size < 1:
            raise ValueError(f"sketch_size must be positive, got {sketch_size}")
        if overshoot < 1.0:
            raise ValueError(f"overshoot must be >= 1, got {overshoot}")
        self.sketch_size = int(sketch_size)
        self.overshoot = float(overshoot)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def _sketch(self, snapshot) -> np.ndarray:
        """The ``(shards, sketch_size)`` sampled global item ids, built
        once per catalog version (only called when every shard is wider
        than the sketch, so rows are rectangular)."""
        key = ("quantile-sketch", self.sketch_size, self.seed)

        def build(snap) -> np.ndarray:
            offsets = shard_offsets(snap)
            rng = np.random.default_rng([self.seed, snap.version])
            rows = []
            for s in range(offsets.shape[0] - 1):
                lo, hi = int(offsets[s]), int(offsets[s + 1])
                rows.append(
                    np.sort(rng.choice(hi - lo, size=self.sketch_size, replace=False))
                    + lo
                )
            return np.stack(rows)

        return snapshot.extension(key, build)

    # ------------------------------------------------------------------
    def _pools(
        self, quality: np.ndarray, width: int, snapshot
    ) -> tuple[np.ndarray, int]:
        offsets = shard_offsets(snapshot)
        sizes = np.diff(offsets)
        num_shards = sizes.shape[0]
        batch, total = quality.shape
        if int(sizes.min()) <= max(width, self.sketch_size):
            # Degenerate geometry: mask + sketch cannot pay for
            # themselves (see module docstring) — serve exactly.
            parts = []
            for s in range(num_shards):
                self._shard_tick(s)
                parts.append(
                    top_k_indices_rows(
                        quality[:, offsets[s] : offsets[s + 1]],
                        min(width, int(sizes[s])),
                    )
                    + int(offsets[s])
                )
            return np.concatenate(parts, axis=1), batch
        sketch = self._sketch(snapshot)
        sketch_size = sketch.shape[1]
        sketched = quality[:, sketch.ravel()].reshape(
            batch, num_shards, sketch_size
        )
        # Per-shard cutoff: the sketch's (overshoot*width/size)-quantile.
        targets = np.minimum(1.0, self.overshoot * width / sizes)
        ranks = np.clip(
            np.ceil(targets * sketch_size).astype(np.int64), 1, sketch_size
        )
        positions = sketch_size - ranks  # shard sizes differ by ±1, so
        kths = np.unique(positions)  # this is one or two distinct kths
        partitioned = np.partition(sketched, kths, axis=2)
        cutoffs = np.take_along_axis(
            partitioned, positions[None, :, None], axis=2
        )[:, :, 0]
        # Survivor mask, one shard slice at a time into one buffer, then
        # one flat scan; (request, shard) cell boundaries come from a
        # searchsorted against the flat indices (no second scan).
        mask = np.empty((batch, total), dtype=bool)
        for s in range(num_shards):
            self._shard_tick(s)
            lo, hi = int(offsets[s]), int(offsets[s + 1])
            np.greater_equal(
                quality[:, lo:hi], cutoffs[:, s, None], out=mask[:, lo:hi]
            )
        flat = np.flatnonzero(mask)
        bounds = (
            np.arange(batch, dtype=np.int64)[:, None] * total
            + offsets[1:][None, :]
        ).ravel()
        cell_ends = np.searchsorted(flat, bounds)
        counts = np.diff(cell_ends, prepend=0)
        num_cells = counts.shape[0]
        filled = counts >= width
        # Scatter the ragged per-cell survivor lists into one padded
        # (cells, max_count) matrix (pads at -inf) and run the final
        # selection batched over the *survivors only* — a few×width
        # columns instead of the catalog axis, one argpartition for the
        # whole batch across all shards.
        max_count = max(int(counts.max()), width)
        cell_of = np.repeat(np.arange(num_cells), counts)
        rows = flat // total
        ids = flat - rows * total
        values = quality[rows, ids]
        slot = np.arange(flat.shape[0]) - np.repeat(cell_ends - counts, counts)
        padded_values = np.full((num_cells, max_count), -np.inf)
        padded_ids = np.zeros((num_cells, max_count), dtype=np.int64)
        padded_ids[cell_of, slot] = ids
        padded_values[cell_of, slot] = values
        if max_count > width:
            keep = np.argpartition(-padded_values, width - 1, axis=1)[:, :width]
            padded_values = np.take_along_axis(padded_values, keep, axis=1)
            padded_ids = np.take_along_axis(padded_ids, keep, axis=1)
        order = np.argsort(-padded_values, axis=1, kind="stable")
        pools = np.take_along_axis(padded_ids, order, axis=1).reshape(
            batch, num_shards * width
        )
        fallback_rows = 0
        if not np.all(filled):
            # Rare sketch overshoot: redo the affected cells exactly.
            for cell in np.flatnonzero(~filled):
                fallback_rows += 1
                b, s = divmod(int(cell), num_shards)
                lo, hi = int(offsets[s]), int(offsets[s + 1])
                pools[b, s * width : (s + 1) * width] = (
                    top_k_indices(quality[b, lo:hi], width) + lo
                )
        return pools, fallback_rows
