"""``repro.serving`` — the batched multi-user k-DPP recommendation engine.

The paper's deployment story: one shared item factor matrix ``V`` serves
every user, because Eq. 2's personalization only rescales rows and
columns by the user's quality scores.  This package turns that structure
into a request-level engine:

* :class:`~repro.serving.catalog.ItemCatalog` — versioned snapshot of
  ``V`` plus the precomputed reusable state (Gram, cached dual spectra,
  the outer-product table behind one-matmul batched dual builds);
* :class:`~repro.serving.server.KDPPServer` — serves batches of
  :class:`~repro.serving.server.Request` objects (per-request ``k``,
  exclusion sets, ``sample`` / ``map`` / ``topk-rerank`` modes) with one
  batched dual-kernel build, one stacked ``eigh``, batched Eq. 6
  normalizers and vectorized sampling / greedy MAP — parity-pinned to
  the per-user ``KDPP.from_factors`` loop, which survives as
  ``serve_sequential`` (the benchmark baseline);
* :class:`~repro.serving.bridge.RecommenderBridge` — plugs any trained
  :class:`~repro.models.base.Recommender` in as the quality source, with
  candidate-pool restriction and an LRU response cache.
"""

from .bridge import RecommenderBridge, quality_from_scores
from .catalog import ItemCatalog
from .server import REQUEST_MODES, KDPPServer, Request, Response

__all__ = [
    "ItemCatalog",
    "KDPPServer",
    "Request",
    "Response",
    "REQUEST_MODES",
    "RecommenderBridge",
    "quality_from_scores",
]
