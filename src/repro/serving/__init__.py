"""``repro.serving`` — the online multi-user k-DPP serving stack.

The paper's deployment story: one shared item factor matrix ``V`` serves
every user, because Eq. 2's personalization only rescales rows and
columns by the user's quality scores.  This package turns that structure
into a full serving runtime:

* :class:`~repro.serving.catalog.ItemCatalog` — publisher of immutable
  :class:`~repro.serving.catalog.CatalogSnapshot` factor versions
  (Gram, once-per-version dual spectra, the outer-product table behind
  one-matmul batched dual builds), hot-swapped double-buffered;
* :class:`~repro.serving.server.KDPPServer` — serves batches of
  :class:`~repro.serving.server.Request` objects (per-request ``k``,
  exclusion sets, ``sample`` / ``map`` / ``topk-rerank`` modes) with one
  batched dual-kernel build, one stacked ``eigh``, batched Eq. 6
  normalizers and vectorized sampling / greedy MAP — parity-pinned to
  the per-user ``KDPP.from_factors`` loop, which survives as
  ``serve_sequential`` (the benchmark baseline);
* :class:`~repro.serving.sharding.ShardedCatalog` /
  :class:`~repro.serving.sharding.ShardedKDPPServer` — catalogs ≥10⁵
  items, partitioned on the item axis and served by a pluggable
  candidate-generation funnel (any ``repro.retrieval`` source — exact
  top-k by default, quantile-sketch or IVF approximations at scale,
  optionally short-circuited per user by a funnel cache) into one exact
  k-DPP over the merged candidate pool;
* :class:`~repro.serving.scheduler.MicroBatcher` — async admission:
  single ``submit()`` calls coalesce into engine batches under size and
  time windows on worker threads, returning futures;
* :class:`~repro.serving.runtime.ServingRuntime` — the facade wiring
  admission-time snapshot pinning, micro-batching and live snapshot
  publication together (version-stamped responses);
* :class:`~repro.serving.bridge.RecommenderBridge` — plugs any trained
  :class:`~repro.models.base.Recommender` in as the quality source, with
  candidate-pool restriction and a thread-safe LRU response cache.

Session-aware serving (PR 6) extends the request model — per-request
diversity strength ``alpha``, cross-page ``history`` conditioning via
:class:`~repro.serving.session.Session`, constrained MAP (``pins`` /
``quotas``) — and consolidates the stack's constructor knobs into one
:class:`~repro.serving.config.ServingConfig`.

Overload safety (PR 7) lives in :mod:`repro.serving.resilience`:
bounded admission (``queue_cap`` / ``overload_policy``), per-request
deadline budgets (``Request.deadline``), the degradation ladder
(:data:`~repro.serving.resilience.DEGRADATION_LADDER`, with every shed
or degraded response stamped via ``Response.degraded`` /
``Response.served_mode``), circuit breakers around approximate
retrieval sources (:class:`~repro.serving.resilience.BreakerSource`),
the structured :class:`~repro.serving.resilience.ServingError` taxonomy
and the deterministic :class:`~repro.serving.resilience.FaultPlan`
chaos harness.

Unified telemetry (PR 8) lives in :mod:`repro.serving.observability`:
thread-safe :class:`Counter` / :class:`Gauge` / :class:`Histogram`
primitives in one :class:`MetricsRegistry` (Prometheus-style
``to_text()``), sampled per-request stage tracing
(``ServingConfig.trace_rate``; the finished :class:`Trace` rides out on
``Response.trace``), the bounded :class:`EventLog` of degradations /
sheds / breaker transitions / publishes, and the
:class:`RuntimeTelemetry` facade behind
:meth:`~repro.serving.runtime.ServingRuntime.telemetry` — one versioned
snapshot over every layer's stats, with a :class:`MetricsReporter` for
periodic emission.

Product health (PR 9) lives in :mod:`repro.serving.health`: sampled
slate-quality auditing (``ServingConfig.audit_rate`` →
:class:`ResponseAuditor` — quality mass, intra-list distance,
log-probability per audited slate, from the pinned snapshot's factor
rows), post-publish canary comparisons (:class:`CanaryReport`,
``canary_regression`` events), windowed drift detection
(:class:`DriftDetector`), declarative :class:`SLO` objectives with
fast/slow burn-rate evaluation (:class:`SLOTracker`), the
:class:`AlertSink` callback channel, and
:meth:`~repro.serving.runtime.ServingRuntime.health` returning a
:class:`HealthStatus` verdict.

Performance introspection (PR 10) lives in
:mod:`repro.serving.profiling` over zero-dependency primitives in
:mod:`repro.utils.profiling`: a continuous sampling profiler
(``ServingConfig.profile_hz`` → :class:`SamplingProfiler` folding
``sys._current_frames()`` samples into a bounded :class:`StackProfile`,
stage-attributed through the :class:`StageRegistry` the stage-span
machinery updates), per-version memory accounting
(:meth:`~repro.serving.runtime.ServingRuntime.footprint` →
:class:`FootprintReport`), the :class:`CapacityModel` behind
:meth:`~repro.serving.runtime.ServingRuntime.headroom`
(:class:`HeadroomReport` — utilization and predicted saturation from
the affine batch-cost fit), and the opt-in :func:`attach_logging`
bridge replaying the event log as structured stdlib ``logging``
records.
"""

from .bridge import RecommenderBridge, quality_from_scores
from .catalog import CatalogSnapshot, ItemCatalog
from .config import ServingConfig
from .health import (
    DEGRADED,
    HEALTHY,
    SLO,
    UNHEALTHY,
    AlertSink,
    CanaryReport,
    DriftDetector,
    HealthStatus,
    ResponseAuditor,
    SLOTracker,
    WindowedStat,
)
from .observability import (
    TELEMETRY_SCHEMA_VERSION,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    LoggingBridge,
    MetricsRegistry,
    MetricsReporter,
    RuntimeTelemetry,
    Span,
    StageRecorder,
    Trace,
    attach_logging,
)
from .profiling import (
    CapacityModel,
    FootprintReport,
    HeadroomReport,
    SamplingProfiler,
    StackProfile,
    StageRegistry,
)
from .resilience import (
    DEGRADATION_LADDER,
    BreakerSource,
    CircuitBreaker,
    DeadlineExceeded,
    FaultPlan,
    OverloadError,
    ServingError,
    ShutdownError,
    SourceUnavailable,
    TransientError,
)
from .runtime import ServingRuntime
from .scheduler import MicroBatcher
from .server import REQUEST_MODES, KDPPServer, Request, Response
from .session import Session
from .sharding import ShardedCatalog, ShardedKDPPServer, ShardedSnapshot

__all__ = [
    "CatalogSnapshot",
    "ItemCatalog",
    "KDPPServer",
    "Request",
    "Response",
    "REQUEST_MODES",
    "ServingConfig",
    "Session",
    "MicroBatcher",
    "ServingRuntime",
    "ShardedCatalog",
    "ShardedKDPPServer",
    "ShardedSnapshot",
    "RecommenderBridge",
    "quality_from_scores",
    "ServingError",
    "OverloadError",
    "DeadlineExceeded",
    "SourceUnavailable",
    "ShutdownError",
    "TransientError",
    "BreakerSource",
    "CircuitBreaker",
    "FaultPlan",
    "DEGRADATION_LADDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsReporter",
    "RuntimeTelemetry",
    "Span",
    "StageRecorder",
    "Trace",
    "EventLog",
    "TELEMETRY_SCHEMA_VERSION",
    "ResponseAuditor",
    "CanaryReport",
    "SLO",
    "SLOTracker",
    "HealthStatus",
    "AlertSink",
    "DriftDetector",
    "WindowedStat",
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
    "LoggingBridge",
    "attach_logging",
    "StageRegistry",
    "StackProfile",
    "SamplingProfiler",
    "FootprintReport",
    "CapacityModel",
    "HeadroomReport",
]
