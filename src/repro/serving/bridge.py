"""Plugging trained recommenders into the serving engine.

Any :class:`~repro.models.base.Recommender` (MF, NeuMF, GCN, GCMC) can
act as the quality-score source of Eq. 2: its raw scores are mapped to
positive qualities with the same transform family LkP training uses
(``exp`` for inner-product models, ``sigmoid`` for classifier heads),
optionally tempered — at serving time the temperature plays the
relevance-vs-diversity trade-off role of Chen et al.'s re-ranker
parameter.

:class:`RecommenderBridge` adds the two request-level conveniences a
service needs:

* **candidate-pool restriction** — serve each user from their top-N
  candidate slice of ``V`` instead of the whole catalog (an order of
  magnitude less per-request work at catalog scale);
* an **LRU response cache** keyed by ``(user, k, mode, seed, pool,
  catalog version, score snapshot)`` — deterministic requests (MAP,
  rerank, seeded samples) are served from memory; unseeded samples are
  never cached (each call must draw fresh).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..dpp.kernels import SCORE_CLIP
from ..models.base import Recommender
from ..utils.topk import top_k_indices
from .catalog import ItemCatalog
from .server import KDPPServer, Request, Response

__all__ = ["RecommenderBridge", "quality_from_scores"]


def quality_from_scores(
    scores: np.ndarray,
    transform: str = "exp",
    temperature: float = 1.0,
    floor: float = 1e-4,
) -> np.ndarray:
    """Numpy twin of the Eq. 2/13 quality transforms for serving.

    ``exp`` — Eq. 13's ``exp(score / T)`` with the same ±12 clip training
    applies; ``sigmoid`` — probability-head models (NeuMF, GCMC), floored
    to keep the kernel strictly PD; ``identity`` — models that already
    emit positive qualities.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if transform == "exp":
        return np.exp(np.clip(scores / temperature, -SCORE_CLIP, SCORE_CLIP))
    if transform == "sigmoid":
        return 1.0 / (1.0 + np.exp(-scores / temperature)) + floor
    if transform == "identity":
        return np.clip(scores, floor, np.inf)
    raise ValueError(f"unknown quality transform {transform!r}")


class RecommenderBridge:
    """Serves a trained recommender's users through a :class:`KDPPServer`.

    Parameters
    ----------
    model:
        Trained backbone; its ``quality_transform`` attribute picks the
        score-to-quality mapping, its ``full_scores()`` supplies the
        score matrix (snapshotted once; call :meth:`refresh_scores`
        after further training).
    catalog / server:
        The shared factor snapshot and the engine over it (a fresh
        server is built when one is not passed).
    known_items:
        Optional per-user arrays of item ids to exclude (the user's
        training interactions under the standard protocol).
    candidate_pool:
        When set, each request is restricted to the user's top-N items
        by quality — the candidate-slice serving path.
    """

    def __init__(
        self,
        model: Recommender,
        catalog: ItemCatalog,
        server: KDPPServer | None = None,
        known_items: Sequence[np.ndarray] | None = None,
        temperature: float = 1.0,
        candidate_pool: int | None = None,
        cache_size: int = 256,
    ) -> None:
        if catalog.num_items != model.num_items:
            raise ValueError(
                f"catalog covers {catalog.num_items} items but the model "
                f"has {model.num_items}"
            )
        if candidate_pool is not None and candidate_pool < 1:
            raise ValueError(f"candidate_pool must be positive, got {candidate_pool}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        self.model = model
        self.catalog = catalog
        self.server = server or KDPPServer(catalog)
        self.known_items = known_items
        self.temperature = temperature
        self.candidate_pool = candidate_pool
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, Response] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._scores: np.ndarray | None = None
        self._scores_token = 0

    # ------------------------------------------------------------------
    def scores(self) -> np.ndarray:
        """The model's score matrix, snapshotted on first use."""
        if self._scores is None:
            self._scores = np.asarray(self.model.full_scores(), dtype=np.float64)
        return self._scores

    def refresh_scores(self) -> None:
        """Re-snapshot model scores (after training) and drop stale cache."""
        self._scores = None
        self._scores_token += 1

    def quality_for_user(self, user: int) -> np.ndarray:
        transform = getattr(self.model, "quality_transform", "exp")
        return quality_from_scores(
            self.scores()[int(user)], transform, temperature=self.temperature
        )

    def _exclusions(self, user: int) -> np.ndarray | None:
        if self.known_items is None:
            return None
        return np.asarray(self.known_items[int(user)], dtype=np.int64)

    def build_request(
        self,
        user: int,
        k: int,
        mode: str = "map",
        seed: int | None = None,
    ) -> Request:
        """Assemble one user's :class:`Request` (quality, exclusions, pool)."""
        quality = self.quality_for_user(user)
        exclude = self._exclusions(user)
        candidates = None
        if self.candidate_pool is not None and mode != "topk-rerank":
            masked = quality
            if exclude is not None and len(exclude) > 0:
                masked = quality.copy()
                masked[exclude] = 0.0
            candidates = top_k_indices(masked, max(self.candidate_pool, k))
        return Request(
            quality=quality,
            k=k,
            mode=mode,
            exclude=exclude,
            candidates=candidates,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def _cache_key(self, user: int, k: int, mode: str, seed: int | None):
        return (
            int(user),
            int(k),
            mode,
            seed,
            self.candidate_pool,
            self.temperature,
            self.catalog.version,
            self._scores_token,
        )

    def recommend(
        self,
        users: Sequence[int],
        k: int,
        mode: str = "map",
        seeds: Sequence[int] | None = None,
    ) -> list[Response]:
        """Batched recommendations for ``users``, LRU-cached.

        Deterministic requests (``map`` / ``topk-rerank`` always, and
        ``sample`` when a per-user seed is given) hit the cache; cache
        keys include the catalog version and score snapshot so a
        :meth:`ItemCatalog.refresh` or :meth:`refresh_scores`
        invalidates stale responses without any explicit flush.
        """
        if seeds is not None and len(seeds) != len(users):
            raise ValueError(
                f"need one seed per user, got {len(seeds)} for {len(users)}"
            )
        responses: list[Response | None] = [None] * len(users)
        pending: list[tuple[int, tuple | None]] = []
        requests: list[Request] = []
        for position, user in enumerate(users):
            seed = None if seeds is None else int(seeds[position])
            cacheable = mode != "sample" or seed is not None
            key = self._cache_key(user, k, mode, seed) if cacheable else None
            if key is not None and key in self._cache:
                self._cache.move_to_end(key)
                cached = self._cache[key]
                responses[position] = Response(
                    items=list(cached.items),
                    log_probability=cached.log_probability,
                    mode=cached.mode,
                    k=cached.k,
                    cached=True,
                )
                self.cache_hits += 1
                continue
            self.cache_misses += 1
            pending.append((position, key))
            requests.append(self.build_request(user, k, mode=mode, seed=seed))
        if requests:
            served = self.server.serve(requests)
            for (position, key), response in zip(pending, served):
                responses[position] = response
                if key is not None:
                    # Store a private copy: the caller owns the returned
                    # Response and may mutate its item list.
                    self._cache[key] = Response(
                        items=list(response.items),
                        log_probability=response.log_probability,
                        mode=response.mode,
                        k=response.k,
                    )
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        return responses  # type: ignore[return-value]
