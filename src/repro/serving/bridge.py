"""Plugging trained recommenders into the serving engine.

Any :class:`~repro.models.base.Recommender` (MF, NeuMF, GCN, GCMC) can
act as the quality-score source of Eq. 2: its raw scores are mapped to
positive qualities with the same transform family LkP training uses
(``exp`` for inner-product models, ``sigmoid`` for classifier heads),
optionally tempered — at serving time the temperature plays the
relevance-vs-diversity trade-off role of Chen et al.'s re-ranker
parameter.

:class:`RecommenderBridge` adds the two request-level conveniences a
service needs:

* **candidate-pool restriction** — serve each user from their top-N
  candidate slice of ``V`` instead of the whole catalog (an order of
  magnitude less per-request work at catalog scale);
* an **LRU response cache** keyed by ``(user, k, mode, seed, pool,
  catalog version, score snapshot)`` — deterministic requests (MAP,
  rerank, seeded samples) are served from memory; unseeded samples are
  never cached (each call must draw fresh).
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..dpp.kernels import SCORE_CLIP
from ..models.base import Recommender
from ..utils.topk import top_k_indices
from .catalog import ItemCatalog
from .config import UNSET, ServingConfig, resolve_config
from .server import KDPPServer, Request, Response, extend_pool_for_constraints
from .sharding import ShardedCatalog, ShardedKDPPServer

__all__ = ["RecommenderBridge", "quality_from_scores"]


def quality_from_scores(
    scores: np.ndarray,
    transform: str = "exp",
    temperature: float = 1.0,
    floor: float = 1e-4,
) -> np.ndarray:
    """Numpy twin of the Eq. 2/13 quality transforms for serving.

    ``exp`` — Eq. 13's ``exp(score / T)`` with the same ±12 clip training
    applies; ``sigmoid`` — probability-head models (NeuMF, GCMC), floored
    to keep the kernel strictly PD; ``identity`` — models that already
    emit positive qualities.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if transform == "exp":
        return np.exp(np.clip(scores / temperature, -SCORE_CLIP, SCORE_CLIP))
    if transform == "sigmoid":
        return 1.0 / (1.0 + np.exp(-scores / temperature)) + floor
    if transform == "identity":
        return np.clip(scores, floor, np.inf)
    raise ValueError(f"unknown quality transform {transform!r}")


class RecommenderBridge:
    """Serves a trained recommender's users through a :class:`KDPPServer`.

    Parameters
    ----------
    model:
        Trained backbone; its ``quality_transform`` attribute picks the
        score-to-quality mapping, its ``full_scores()`` supplies the
        score matrix (snapshotted once; call :meth:`refresh_scores`
        after further training).
    catalog / server:
        The shared factor snapshot and the engine over it (a fresh
        server is built when one is not passed).
    known_items:
        Optional per-user arrays of item ids to exclude (the user's
        training interactions under the standard protocol).
    candidate_pool:
        When set, each request is restricted to the user's top-N items
        by quality — the candidate-slice serving path.
    config:
        A :class:`~repro.serving.config.ServingConfig` configuring the
        default server built here — most relevantly the funnel plug-ins
        ``source`` / ``funnel_cache`` (any
        :class:`~repro.retrieval.base.CandidateSource`, an optional
        :class:`~repro.retrieval.cache.FunnelCache`); requests built
        here carry the user id, so the funnel cache keys naturally.
        Plug-ins are rejected when an explicit ``server`` is passed —
        configure that server directly instead.  The legacy ``source=``
        / ``funnel_cache=`` kwargs still work with a
        :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        model: Recommender,
        catalog: ItemCatalog | ShardedCatalog,
        server: KDPPServer | None = None,
        known_items: Sequence[np.ndarray] | None = None,
        temperature: float = 1.0,
        candidate_pool: int | None = None,
        cache_size: int = 256,
        source=UNSET,
        funnel_cache=UNSET,
        config: ServingConfig | None = None,
    ) -> None:
        if catalog.num_items != model.num_items:
            raise ValueError(
                f"catalog covers {catalog.num_items} items but the model "
                f"has {model.num_items}"
            )
        if candidate_pool is not None and candidate_pool < 1:
            raise ValueError(f"candidate_pool must be positive, got {candidate_pool}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        config = resolve_config(
            config,
            {"source": source, "funnel_cache": funnel_cache},
            type(self).__name__,
        )
        self.model = model
        self.catalog = catalog
        if server is None:
            # Mirror ServingRuntime's dispatch: a sharded catalog needs
            # the funnel server (the plain engine cannot read it).
            if isinstance(catalog, ShardedCatalog):
                server = ShardedKDPPServer(catalog, config=config)
            elif config.source is not None or config.funnel_cache is not None:
                raise ValueError(
                    "candidate sources / funnel caches require a sharded "
                    "catalog (the monolithic engine has no funnel stage)"
                )
            else:
                server = KDPPServer(catalog, config=config)
        elif config.source is not None or config.funnel_cache is not None:
            raise ValueError(
                "pass source/funnel_cache either to the bridge (to build "
                "the default server) or to your own server, not both"
            )
        self.server = server
        self.known_items = known_items
        self.temperature = temperature
        self.candidate_pool = candidate_pool
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, Response] = OrderedDict()
        # The micro-batch runtime calls ``recommend`` from worker
        # threads; OrderedDict move_to_end/popitem are not atomic with
        # their surrounding get/put logic, so all cache state (entries
        # and hit/miss counters) is guarded by one lock.  Serving itself
        # happens outside the lock.
        self._cache_lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self._scores: np.ndarray | None = None
        self._scores_token = 0

    # ------------------------------------------------------------------
    def _scores_state(self) -> tuple[np.ndarray, int]:
        """The ``(matrix, token)`` score snapshot, captured atomically.

        One lock acquisition pairs the matrix with the token it belongs
        to, so a :meth:`refresh_scores` racing a worker thread can never
        cache responses computed from the new matrix under the old
        token's key (and a cold bridge computes ``full_scores`` once,
        not once per racing worker).
        """
        with self._cache_lock:
            if self._scores is None:
                self._scores = np.asarray(self.model.full_scores(), dtype=np.float64)
            return self._scores, self._scores_token

    def scores(self) -> np.ndarray:
        """The model's score matrix, snapshotted on first use."""
        return self._scores_state()[0]

    def refresh_scores(self) -> None:
        """Re-snapshot model scores (after training) and drop stale cache."""
        with self._cache_lock:
            self._scores = None
            self._scores_token += 1

    def _quality_from_matrix(self, scores: np.ndarray, user: int) -> np.ndarray:
        transform = getattr(self.model, "quality_transform", "exp")
        return quality_from_scores(
            scores[int(user)], transform, temperature=self.temperature
        )

    def quality_for_user(self, user: int) -> np.ndarray:
        return self._quality_from_matrix(self.scores(), user)

    def _exclusions(self, user: int) -> np.ndarray | None:
        if self.known_items is None:
            return None
        return np.asarray(self.known_items[int(user)], dtype=np.int64)

    def build_request(
        self,
        user: int,
        k: int,
        mode: str = "map",
        seed: int | None = None,
        scores: np.ndarray | None = None,
        alpha: float = 1.0,
        history=None,
        pins=None,
        quotas=None,
        categories=None,
    ) -> Request:
        """Assemble one user's :class:`Request` (quality, exclusions, pool).

        ``scores`` lets :meth:`recommend` pin one captured score matrix
        across a whole batch; default is the current snapshot.  The
        session fields (``alpha`` / ``history`` / ``pins`` / ``quotas``
        / ``categories``) pass straight through to the request; history
        items are additionally masked out of a ``candidate_pool`` slice
        so paging never wastes pool slots on already-shown items.
        """
        quality = self._quality_from_matrix(
            self.scores() if scores is None else scores, user
        )
        exclude = self._exclusions(user)
        candidates = None
        if self.candidate_pool is not None and mode != "topk-rerank":
            masked = quality
            zero = [
                ids
                for ids in (exclude, history)
                if ids is not None and len(ids) > 0
            ]
            if zero:
                masked = quality.copy()
                masked[np.concatenate([np.asarray(i, dtype=np.int64) for i in zero])] = 0.0
            candidates = top_k_indices(masked, max(self.candidate_pool, k))
            candidates = extend_pool_for_constraints(
                candidates, masked, pins, quotas, categories
            )
        return Request(
            quality=quality,
            k=k,
            mode=mode,
            exclude=exclude,
            candidates=candidates,
            seed=seed,
            user=int(user),
            alpha=alpha,
            history=history,
            pins=pins,
            quotas=quotas,
            categories=categories,
        )

    # ------------------------------------------------------------------
    def _cache_key(
        self,
        user: int,
        k: int,
        mode: str,
        seed: int | None,
        catalog_version: int,
        scores_token: int,
        alpha: float = 1.0,
    ):
        return (
            int(user),
            int(k),
            mode,
            seed,
            self.candidate_pool,
            self.temperature,
            catalog_version,
            scores_token,
            float(alpha),
        )

    def recommend(
        self,
        users: Sequence[int],
        k: int,
        mode: str = "map",
        seeds: Sequence[int] | None = None,
        alpha: float = 1.0,
    ) -> list[Response]:
        """Batched recommendations for ``users``, LRU-cached.

        Deterministic requests (``map`` / ``topk-rerank`` always, and
        ``sample`` when a per-user seed is given) hit the cache; cache
        keys include the catalog version, score snapshot and the
        diversity strength ``alpha`` so a :meth:`ItemCatalog.refresh`,
        :meth:`refresh_scores` or a different ``alpha`` invalidates
        stale responses without any explicit flush.  (Session-stateful
        requests — history / pins / quotas — go through
        :meth:`build_request` and the server directly; their responses
        are page-dependent and never belong in this per-user cache.)
        """
        if seeds is not None and len(seeds) != len(users):
            raise ValueError(
                f"need one seed per user, got {len(seeds)} for {len(users)}"
            )
        responses: list[Response | None] = [None] * len(users)
        pending: list[tuple[int, tuple | None]] = []
        requests: list[Request] = []
        # One capture of the score state and one of the catalog snapshot
        # cover the whole batch, so keys, served quality and the served
        # factor version always describe the same state even when
        # refresh_scores() or a catalog hot-swap lands mid-call.
        scores, scores_token = self._scores_state()
        snapshot = self.catalog.snapshot()
        for position, user in enumerate(users):
            seed = None if seeds is None else int(seeds[position])
            cacheable = mode != "sample" or seed is not None
            key = (
                self._cache_key(
                    user, k, mode, seed, snapshot.version, scores_token, alpha
                )
                if cacheable
                else None
            )
            cached = None
            if key is not None:
                with self._cache_lock:
                    cached = self._cache.get(key)
                    if cached is not None:
                        self._cache.move_to_end(key)
                        self.cache_hits += 1
                    else:
                        self.cache_misses += 1
            else:
                with self._cache_lock:
                    self.cache_misses += 1
            if cached is not None:
                # dataclasses.replace keeps every Response field (the
                # overload stamps included) without re-listing them; the
                # item list is copied because the caller owns it.
                responses[position] = dataclasses.replace(
                    cached, items=list(cached.items), cached=True
                )
                continue
            pending.append((position, key))
            requests.append(
                self.build_request(
                    user, k, mode=mode, seed=seed, scores=scores, alpha=alpha
                )
            )
        if requests:
            served = self.server.serve(requests, snapshot=snapshot)
            for (position, key), response in zip(pending, served):
                responses[position] = response
                if key is not None:
                    # Store a private copy: the caller owns the returned
                    # Response and may mutate its item list.
                    entry = dataclasses.replace(
                        response, items=list(response.items), cached=False
                    )
                    with self._cache_lock:
                        self._cache[key] = entry
                        while len(self._cache) > self.cache_size:
                            self._cache.popitem(last=False)
        return responses  # type: ignore[return-value]

    def cache_footprint(self) -> dict:
        """Byte accounting of the response LRU (best effort — slate
        lists and any attached traces, via
        :func:`repro.serving.profiling.nbytes_of`), for the footprint
        report's cache section."""
        from .profiling import nbytes_of

        with self._cache_lock:
            entries = list(self._cache.values())
        return {
            "entries": len(entries),
            "capacity": self.cache_size,
            "bytes": sum(nbytes_of(response) for response in entries),
        }
