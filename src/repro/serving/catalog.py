"""The shared item-factor snapshot behind the serving engine.

Serving a k-DPP recommendation is per-user only in a rank-r reweighting:
every user's kernel is ``L_u = Diag(q_u) V Vᵀ Diag(q_u)`` (Eq. 2) over
the *same* item factor matrix ``V``.  :class:`ItemCatalog` snapshots
that shared state once and precomputes everything requests can reuse:

* the ``r × r`` Gram ``VᵀV`` and its eigendecomposition, cached per
  catalog **version** (a refresh publishes new factors under a new
  version, so stale cache entries can never serve fresh requests);
* the symmetric outer-product table ``P[m] = vec(v_m v_mᵀ)`` (upper
  triangle), which turns a whole batch of dual kernels
  ``C_u = Vᵀ Diag(q_u²) V = Σ_m q_um² v_m v_mᵀ`` into a single
  ``(B, M) @ (M, r(r+1)/2)`` matmul — the serving engine's build path.

Factors are snapshotted (copied, marked read-only) so a catalog version
is immutable: response caches and spectrum caches key on the version
token alone.
"""

from __future__ import annotations

import numpy as np

from ..dpp.diversity_kernel import DiversityKernelLearner

__all__ = ["ItemCatalog"]


class ItemCatalog:
    """Versioned snapshot of the ``(M, r)`` item factor matrix ``V``."""

    #: spectrum-cache entries kept across refreshes (old versions may
    #: still be referenced by in-flight readers)
    SPECTRUM_CACHE_KEEP = 2

    #: refuse to build an outer-product table beyond this size — the
    #: table is O(M r²/2) and wide factor matrices (e.g. the identity-
    #: augmented ``shrink > 0`` form, rank r + M) would silently turn
    #: the fast path into a terabyte allocation
    GRAM_PRODUCTS_MAX_BYTES = 1 << 31

    def __init__(self, factors: np.ndarray, version: int = 0) -> None:
        self._spectrum_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._install(factors, version)

    @classmethod
    def from_learner(
        cls,
        learner: DiversityKernelLearner,
        normalize: str = "correlation",
        shrink: float = 0.0,
    ) -> "ItemCatalog":
        """Snapshot a trained Eq. 3 learner via ``factors_normalized``.

        Keep ``shrink = 0`` for catalog-scale serving: the shrunk form's
        identity augmentation raises the factor width to ``r + M``, so
        every dual becomes an ``(r+M) × (r+M)`` problem and
        :meth:`gram_products` would need O(M³) memory (it refuses, see
        ``GRAM_PRODUCTS_MAX_BYTES``).  Shrunk factors are meant for the
        training criterion's small row gathers, not the serving engine.
        """
        return cls(learner.factors_normalized(normalize=normalize, shrink=shrink))

    # ------------------------------------------------------------------
    def _install(self, factors: np.ndarray, version: int) -> None:
        factors = np.array(factors, dtype=np.float64, copy=True)
        if factors.ndim != 2:
            raise ValueError(f"factors must be (M, r), got shape {factors.shape}")
        if not np.all(np.isfinite(factors)):
            raise ValueError("factors contain non-finite entries")
        factors.setflags(write=False)
        self._factors = factors
        self._version = version
        self._gram: np.ndarray | None = None
        self._gram_products: np.ndarray | None = None
        self._triu = np.triu_indices(factors.shape[1])

    def refresh(self, factors: np.ndarray) -> int:
        """Publish new factors under the next version; returns the version.

        Cached Grams and outer-product tables are dropped; the spectrum
        cache keeps its most recent entries (keyed by old versions) so a
        reader holding a stale version token misses rather than reads
        fresh state.
        """
        self._install(factors, self._version + 1)
        while len(self._spectrum_cache) > self.SPECTRUM_CACHE_KEEP:
            self._spectrum_cache.pop(next(iter(self._spectrum_cache)))
        return self._version

    # ------------------------------------------------------------------
    @property
    def factors(self) -> np.ndarray:
        """The read-only ``(M, r)`` factor snapshot."""
        return self._factors

    @property
    def num_items(self) -> int:
        return self._factors.shape[0]

    @property
    def rank(self) -> int:
        return self._factors.shape[1]

    @property
    def version(self) -> int:
        return self._version

    def gram(self) -> np.ndarray:
        """``VᵀV`` — the unweighted dual kernel, computed once per version."""
        if self._gram is None:
            self._gram = self._factors.T @ self._factors
        return self._gram

    def dual_spectrum(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of :meth:`gram`, cached per catalog version.

        This is the exact serving state for uniform-quality requests
        (``q_u = 1`` makes ``C_u = VᵀV``) and the warm-start diagnostic
        spectrum for everything else; eigenvalues ascending, clipped at
        zero like :meth:`LowRankKernel.eigh_dual`.
        """
        cached = self._spectrum_cache.get(self._version)
        if cached is None:
            eigenvalues, eigenvectors = np.linalg.eigh(self.gram())
            cached = (np.clip(eigenvalues, 0.0, None), eigenvectors)
            self._spectrum_cache[self._version] = cached
        return cached

    def gram_products(self) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """The ``(M, r(r+1)/2)`` symmetric outer-product table (lazy).

        ``gram_products()[0][m]`` is the upper triangle of ``v_m v_mᵀ``,
        so a batch of dual kernels is one matmul:
        ``C_stack[b][triu] = (q_b²) @ table``.  Costs ``M r²/2 · 8``
        bytes (≈ 42 MB at M=10k, r=32) — built on the first batched
        request and reused for the lifetime of the version.
        """
        if self._gram_products is None:
            rows, cols = self._triu
            table_bytes = self.num_items * rows.shape[0] * 8
            if table_bytes > self.GRAM_PRODUCTS_MAX_BYTES:
                raise ValueError(
                    f"outer-product table would need {table_bytes / 1e9:.1f} GB "
                    f"(M={self.num_items}, rank={self.rank}); wide factor "
                    "matrices (e.g. shrink-augmented ones) are not servable "
                    "on the full-catalog fast path — use candidate slices or "
                    "compact rank-r factors"
                )
            self._gram_products = np.ascontiguousarray(
                self._factors[:, rows] * self._factors[:, cols]
            )
        return self._gram_products, self._triu

    def build_duals(self, squared_quality: np.ndarray) -> np.ndarray:
        """All dual kernels ``C_b = Vᵀ Diag(q_b²) V`` as one matmul.

        ``squared_quality`` is the ``(B, M)`` stack of ``q_b²``; returns
        the symmetric ``(B, r, r)`` dual-kernel stack.
        """
        squared_quality = np.asarray(squared_quality, dtype=np.float64)
        table, (rows, cols) = self.gram_products()
        flat = squared_quality @ table
        duals = np.empty(
            (squared_quality.shape[0], self.rank, self.rank), dtype=np.float64
        )
        duals[:, rows, cols] = flat
        duals[:, cols, rows] = flat
        return duals
