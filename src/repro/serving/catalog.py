"""The shared item-factor snapshot behind the serving engine.

Serving a k-DPP recommendation is per-user only in a rank-r reweighting:
every user's kernel is ``L_u = Diag(q_u) V Vᵀ Diag(q_u)`` (Eq. 2) over
the *same* item factor matrix ``V``.  :class:`ItemCatalog` publishes
that shared state as a sequence of immutable :class:`CatalogSnapshot`
versions.  Each snapshot precomputes everything requests can reuse:

* the ``r × r`` Gram ``VᵀV`` and its eigendecomposition, built lazily
  and exactly once per version;
* the symmetric outer-product table ``P[m] = vec(v_m v_mᵀ)`` (upper
  triangle), which turns a whole batch of dual kernels
  ``C_u = Vᵀ Diag(q_u²) V = Σ_m q_um² v_m v_mᵀ`` into a single
  ``(B, M) @ (M, r(r+1)/2)`` matmul — the serving engine's build path.

Hot-swap contract (the serving runtime relies on it): a snapshot is a
plain immutable object, so a reader that captured one — via
:meth:`ItemCatalog.snapshot` — keeps serving from it no matter how many
:meth:`ItemCatalog.refresh` calls happen meanwhile.  ``refresh`` is
double-buffered: it fully builds the new snapshot *before* publishing it
with one reference assignment, and keeps the previous snapshot alive so
in-flight readers never race a teardown.  Response caches and spectrum
caches key on the version token alone.
"""

from __future__ import annotations

import threading

import numpy as np

from ..dpp.diversity_kernel import DiversityKernelLearner

__all__ = ["CatalogSnapshot", "ItemCatalog", "VersionedExtensions"]

#: distinguishes "extension never built" from a legitimately-None build
#: result (e.g. an IVF index declining a too-small shard)
_UNBUILT = object()


class VersionedExtensions:
    """Per-version ``extension(key, build)`` cache, shared by both
    snapshot flavors (:class:`CatalogSnapshot` and
    :class:`~repro.serving.sharding.ShardedSnapshot`).

    The retrieval subsystem hangs its index structures here — a
    :class:`~repro.retrieval.quantile.QuantileFunnel` sketch, an
    :class:`~repro.retrieval.ivf.IVFIndex` k-means layout — so the
    "built lazily, exactly once per version, invalidated by snapshot
    creation" contract of the Gram/spectrum caches extends to any
    per-version index without the snapshot knowing its type.  Hosts
    provide ``self._lock``; ``build(snapshot)`` runs under it the first
    time ``key`` (any hashable) is seen — ``None`` results included —
    and later calls are lock-free reads.
    """

    _lock: threading.Lock

    def extension(self, key, build):
        extensions = self.__dict__.setdefault("_extensions", {})
        value = extensions.get(key, _UNBUILT)
        if value is _UNBUILT:
            with self._lock:
                if key in extensions:
                    value = extensions[key]
                else:
                    value = extensions[key] = build(self)
        return value


class CatalogSnapshot(VersionedExtensions):
    """One immutable published version of the ``(M, r)`` factors ``V``.

    All derived state (Gram, dual spectrum, outer-product table) is
    built lazily under the snapshot's own lock, so concurrent serving
    threads compute each piece exactly once per version and later reads
    are lock-free dictionary-style attribute hits.
    """

    #: refuse to build an outer-product table beyond this size — the
    #: table is O(M r²/2) and wide factor matrices (e.g. the identity-
    #: augmented ``shrink > 0`` form, rank r + M) would silently turn
    #: the fast path into a terabyte allocation
    GRAM_PRODUCTS_MAX_BYTES = 1 << 31

    def __init__(self, factors: np.ndarray, version: int) -> None:
        factors = np.array(factors, dtype=np.float64, copy=True)
        if factors.ndim != 2:
            raise ValueError(f"factors must be (M, r), got shape {factors.shape}")
        if not np.all(np.isfinite(factors)):
            raise ValueError("factors contain non-finite entries")
        factors.setflags(write=False)
        self._factors = factors
        self._version = int(version)
        self._lock = threading.Lock()
        self._gram: np.ndarray | None = None
        self._gram_products: np.ndarray | None = None
        self._spectrum: tuple[np.ndarray, np.ndarray] | None = None
        self._triu = np.triu_indices(factors.shape[1])
        #: how many times the dual spectrum was actually eigendecomposed
        #: for this version — the hot-swap tests pin this to exactly 1.
        self.spectrum_builds = 0

    # ------------------------------------------------------------------
    @property
    def factors(self) -> np.ndarray:
        """The read-only ``(M, r)`` factor snapshot."""
        return self._factors

    @property
    def num_items(self) -> int:
        return self._factors.shape[0]

    @property
    def rank(self) -> int:
        return self._factors.shape[1]

    @property
    def version(self) -> int:
        return self._version

    def take_rows(self, indices: np.ndarray) -> np.ndarray:
        """Gather factor rows for an integer index array of any shape.

        The monolithic snapshot is a plain fancy-index; the sharded
        twin (:class:`~repro.serving.sharding.ShardedSnapshot`)
        reimplements this as a per-shard gather — the serving engine's
        candidate-slice path only ever touches factors through here.
        """
        return self._factors[indices]

    # ------------------------------------------------------------------
    def gram(self) -> np.ndarray:
        """``VᵀV`` — the unweighted dual kernel, computed once per version."""
        if self._gram is None:
            with self._lock:
                if self._gram is None:
                    self._gram = self._factors.T @ self._factors
        return self._gram

    def dual_spectrum(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of :meth:`gram`, built once per version.

        This is the exact serving state for uniform-quality requests
        (``q_u = 1`` makes ``C_u = VᵀV``) and the warm-start diagnostic
        spectrum for everything else; eigenvalues ascending, clipped at
        zero like :meth:`LowRankKernel.eigh_dual`.
        """
        if self._spectrum is None:
            gram = self.gram()
            with self._lock:
                if self._spectrum is None:
                    eigenvalues, eigenvectors = np.linalg.eigh(gram)
                    self.spectrum_builds += 1
                    self._spectrum = (np.clip(eigenvalues, 0.0, None), eigenvectors)
        return self._spectrum

    def gram_products(self) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """The ``(M, r(r+1)/2)`` symmetric outer-product table (lazy).

        ``gram_products()[0][m]`` is the upper triangle of ``v_m v_mᵀ``,
        so a batch of dual kernels is one matmul:
        ``C_stack[b][triu] = (q_b²) @ table``.  Costs ``M r²/2 · 8``
        bytes (≈ 42 MB at M=10k, r=32) — built on the first batched
        request and reused for the lifetime of the version.
        """
        if self._gram_products is None:
            rows, cols = self._triu
            table_bytes = self.num_items * rows.shape[0] * 8
            if table_bytes > self.GRAM_PRODUCTS_MAX_BYTES:
                raise ValueError(
                    f"outer-product table would need {table_bytes / 1e9:.1f} GB "
                    f"(M={self.num_items}, rank={self.rank}); wide factor "
                    "matrices (e.g. shrink-augmented ones) are not servable "
                    "on the full-catalog fast path — use candidate slices or "
                    "compact rank-r factors"
                )
            with self._lock:
                if self._gram_products is None:
                    self._gram_products = np.ascontiguousarray(
                        self._factors[:, rows] * self._factors[:, cols]
                    )
        return self._gram_products, self._triu

    def build_duals(self, squared_quality: np.ndarray) -> np.ndarray:
        """All dual kernels ``C_b = Vᵀ Diag(q_b²) V`` as one matmul.

        ``squared_quality`` is the ``(B, M)`` stack of ``q_b²``; returns
        the symmetric ``(B, r, r)`` dual-kernel stack.
        """
        squared_quality = np.asarray(squared_quality, dtype=np.float64)
        table, (rows, cols) = self.gram_products()
        flat = squared_quality @ table
        duals = np.empty(
            (squared_quality.shape[0], self.rank, self.rank), dtype=np.float64
        )
        duals[:, rows, cols] = flat
        duals[:, cols, rows] = flat
        return duals


class ItemCatalog:
    """Versioned publisher of :class:`CatalogSnapshot` factor versions.

    The catalog itself retains two generations: the published snapshot
    and the one it displaced (in-flight readers additionally hold their
    own snapshot references, which keep older generations alive as long
    as needed).  The outer-product-table size limit lives on
    :class:`CatalogSnapshot` (``GRAM_PRODUCTS_MAX_BYTES``), where the
    allocation guard runs.
    """

    def __init__(self, factors: np.ndarray, version: int = 0) -> None:
        self._current = CatalogSnapshot(factors, version)
        self._previous: CatalogSnapshot | None = None
        self._swap_lock = threading.Lock()

    @classmethod
    def from_learner(
        cls,
        learner: DiversityKernelLearner,
        normalize: str = "correlation",
        shrink: float = 0.0,
    ) -> "ItemCatalog":
        """Snapshot a trained Eq. 3 learner via ``factors_normalized``.

        Keep ``shrink = 0`` for catalog-scale serving: the shrunk form's
        identity augmentation raises the factor width to ``r + M``, so
        every dual becomes an ``(r+M) × (r+M)`` problem and
        :meth:`gram_products` would need O(M³) memory (it refuses, see
        ``GRAM_PRODUCTS_MAX_BYTES``).  Shrunk factors are meant for the
        training criterion's small row gathers, not the serving engine.
        """
        return cls(learner.factors_normalized(normalize=normalize, shrink=shrink))

    # ------------------------------------------------------------------
    def snapshot(self) -> CatalogSnapshot:
        """The currently published snapshot (capture once per request
        batch: everything read through it is one consistent version)."""
        return self._current

    def refresh(self, factors: np.ndarray) -> int:
        """Publish new factors under the next version; returns the version.

        Double-buffered: the new snapshot is fully constructed (validated,
        copied, frozen) before a single reference assignment makes it the
        served version, and the displaced snapshot is kept as the back
        buffer so readers that captured it finish against intact state.
        Per-version caches (Gram, spectrum, outer-product table) start
        empty on the new snapshot — invalidation is creation.
        """
        factors = np.asarray(factors)
        if factors.ndim != 2 or factors.shape[0] != self.num_items:
            raise ValueError(
                f"published factors must keep the catalog's item axis "
                f"({self.num_items}), got shape {factors.shape}"
            )
        with self._swap_lock:
            fresh = CatalogSnapshot(factors, self._current.version + 1)
            self._previous = self._current
            self._current = fresh
            return fresh.version

    #: :class:`ShardedCatalog` calls the same operation ``publish``; the
    #: alias lets the runtime hot-swap either catalog flavor uniformly.
    publish = refresh

    # ------------------------------------------------------------------
    # Reads delegate to the current snapshot (one-shot callers; batch
    # code paths capture ``snapshot()`` once instead).
    # ------------------------------------------------------------------
    @property
    def factors(self) -> np.ndarray:
        return self._current.factors

    @property
    def num_items(self) -> int:
        return self._current.num_items

    @property
    def rank(self) -> int:
        return self._current.rank

    @property
    def version(self) -> int:
        return self._current.version

    def take_rows(self, indices: np.ndarray) -> np.ndarray:
        return self._current.take_rows(indices)

    def gram(self) -> np.ndarray:
        return self._current.gram()

    def dual_spectrum(self) -> tuple[np.ndarray, np.ndarray]:
        return self._current.dual_spectrum()

    def gram_products(self) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        return self._current.gram_products()

    def build_duals(self, squared_quality: np.ndarray) -> np.ndarray:
        return self._current.build_duals(squared_quality)
