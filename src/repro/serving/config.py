"""One configuration object for the whole serving stack.

Before this module, serving knobs were constructor kwargs scattered
across three classes: ``KDPPServer(rerank_pool=...)``,
``ShardedKDPPServer(funnel_width=..., source=..., funnel_cache=...)``
and ``ServingRuntime(max_batch=..., max_wait=..., workers=...,
clock=...)`` — every new layer re-threaded the union.
:class:`ServingConfig` consolidates them: build one (frozen, validated)
config and hand it to any layer via ``config=``; each layer reads the
fields it owns and forwards the rest.  The legacy kwargs still work on
every constructor but emit :class:`DeprecationWarning`s.

The fields are serving *infrastructure* knobs — engine pool sizes,
funnel plumbing, micro-batcher windows.  Per-request semantics (``k``,
``mode``, ``alpha``, history, pins, quotas) stay on
:class:`~repro.serving.server.Request`, and model-side knobs
(temperature, per-user candidate pools) stay on
:class:`~repro.serving.bridge.RecommenderBridge`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ServingConfig"]

#: sentinel distinguishing "legacy kwarg not passed" from explicit None
UNSET: Any = object()


@dataclass(frozen=True)
class ServingConfig:
    """Consolidated serving-stack configuration.

    Parameters
    ----------
    rerank_pool:
        Default pool size for ``topk-rerank`` requests
        (:class:`~repro.serving.server.KDPPServer`; per-request
        ``Request.rerank_pool`` overrides it).
    funnel_width:
        Per-shard candidate budget of the sharded funnel
        (:class:`~repro.serving.sharding.ShardedKDPPServer`).
    max_batch / max_wait / workers / clock:
        Micro-batcher admission windows
        (:class:`~repro.serving.scheduler.MicroBatcher`); ``clock=None``
        means ``time.monotonic``.
    source / funnel_cache:
        Candidate-generation plug-ins for the sharded funnel: any
        :class:`~repro.retrieval.base.CandidateSource` and an optional
        :class:`~repro.retrieval.cache.FunnelCache`.
    queue_cap / overload_policy:
        Admission control (:mod:`repro.serving.resilience`).
        ``queue_cap=None`` (default) means unbounded admission — the
        pre-resilience behavior.  With a cap, a submit that finds the
        queue at or past it is handled per ``overload_policy``:
        ``"reject"`` raises a structured
        :class:`~repro.serving.resilience.OverloadError`, ``"degrade"``
        (the default policy) admits the request with queue-pressure
        rungs that walk it down the degradation ladder.
    publish_retries / publish_backoff:
        Retry budget for transient :meth:`ServingRuntime.publish`
        failures (:class:`~repro.serving.resilience.TransientError`):
        up to ``publish_retries`` retries with exponential backoff
        starting at ``publish_backoff`` seconds (slept through the
        injected clock when it is a manual one).
    fault_plan:
        An optional :class:`~repro.serving.resilience.FaultPlan`; the
        runtime wires its deterministic fault hooks through the whole
        stack (chaos tests and the overload benchmark only — leave
        ``None`` in production).
    trace_rate / event_log_capacity:
        Observability (:mod:`repro.serving.observability`).
        ``trace_rate`` is the fraction of submitted requests that carry
        a per-stage :class:`~repro.serving.observability.Trace`
        (deterministic credit sampling, no RNG consumed); the default
        ``0.0`` keeps the serving path bit-identical to the
        un-instrumented stack, seeded samples included.
        ``event_log_capacity`` bounds the runtime's ring-buffer
        :class:`~repro.serving.observability.EventLog` of degradations,
        sheds, breaker transitions and publishes.
    audit_rate / audit_window:
        Product-health auditing (:mod:`repro.serving.health`).
        ``audit_rate`` is the fraction of served responses whose slate
        quality (quality mass, ILAD, log-probability, length) is
        measured post-serve by the
        :class:`~repro.serving.health.ResponseAuditor` — the same
        deterministic credit sampling as ``trace_rate``, so the default
        ``0.0`` stays bit-identical, seeded samples included.
        ``audit_window`` bounds the per-version
        :class:`~repro.serving.health.WindowedStat` audit windows.
    canary_min_audits / canary_tolerance:
        Publish canaries: a :meth:`ServingRuntime.publish` arms a
        comparison of the new version's audit windows against the
        pre-swap baseline once both sides hold ``canary_min_audits``
        audited responses; a metric moving beyond ``canary_tolerance``
        in the bad direction emits a ``canary_regression`` event +
        alert (see :class:`~repro.serving.health.CanaryReport` for the
        per-metric direction rules).
    drift_window / drift_threshold:
        Drift detection over audited quality mass and ILAD:
        reference-vs-current windows of ``drift_window`` samples, a
        mean shift beyond ``drift_threshold`` pooled standard errors
        (with a relative floor) emits a ``drift`` event.
    profile_hz:
        Continuous sampling profiler (:mod:`repro.serving.profiling`).
        The background sampling rate, in stack samples per second, of
        the runtime's :class:`~repro.utils.profiling.SamplingProfiler`;
        sampled stacks are attributed to the active engine stage via
        the thread→stage registry the ``stage_span`` machinery updates.
        The default ``0.0`` starts no sampler thread and keeps the
        serving path bit-identical, seeded samples included — the same
        parity contract as ``trace_rate`` / ``audit_rate``.
    slos:
        Declarative :class:`~repro.serving.health.SLO` objectives the
        runtime's :class:`~repro.serving.health.SLOTracker` evaluates
        with fast/slow burn-rate windows; ``None`` (default) tracks no
        SLOs and ``runtime.health()`` reports from canary/drift flags
        alone.
    alert_sink:
        Optional ``callable(alert: dict)`` receiving every canary /
        drift / SLO-burn alert (wired into the runtime's
        :class:`~repro.serving.health.AlertSink`).
    """

    rerank_pool: int = 100
    funnel_width: int = 32
    max_batch: int = 32
    max_wait: float = 0.002
    workers: int = 1
    clock: Callable[[], float] | None = None
    source: Any | None = None
    funnel_cache: Any | None = None
    queue_cap: int | None = None
    overload_policy: str = "degrade"
    publish_retries: int = 2
    publish_backoff: float = 0.05
    fault_plan: Any | None = None
    trace_rate: float = 0.0
    event_log_capacity: int = 1024
    audit_rate: float = 0.0
    audit_window: int = 256
    canary_min_audits: int = 32
    canary_tolerance: float = 0.1
    drift_window: int = 128
    drift_threshold: float = 3.0
    profile_hz: float = 0.0
    slos: Any | None = None
    alert_sink: Callable[[dict], None] | None = None

    def __post_init__(self) -> None:
        if self.rerank_pool < 1:
            raise ValueError(
                f"rerank_pool must be positive, got {self.rerank_pool}"
            )
        if self.funnel_width < 1:
            raise ValueError(
                f"funnel_width must be positive, got {self.funnel_width}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(
                f"max_wait must be non-negative, got {self.max_wait}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be non-negative, got {self.workers}")
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError(
                f"queue_cap must be positive (or None for unbounded), "
                f"got {self.queue_cap}"
            )
        if self.overload_policy not in ("reject", "degrade"):
            raise ValueError(
                "overload_policy must be 'reject' or 'degrade', "
                f"got {self.overload_policy!r}"
            )
        if self.publish_retries < 0:
            raise ValueError(
                f"publish_retries must be non-negative, got {self.publish_retries}"
            )
        if self.publish_backoff < 0:
            raise ValueError(
                f"publish_backoff must be non-negative, got {self.publish_backoff}"
            )
        if not 0.0 <= self.trace_rate <= 1.0:
            raise ValueError(
                f"trace_rate must be in [0, 1], got {self.trace_rate}"
            )
        if self.event_log_capacity < 1:
            raise ValueError(
                f"event_log_capacity must be positive, "
                f"got {self.event_log_capacity}"
            )
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ValueError(
                f"audit_rate must be in [0, 1], got {self.audit_rate}"
            )
        if self.audit_window < 2:
            raise ValueError(
                f"audit_window must be >= 2, got {self.audit_window}"
            )
        if self.canary_min_audits < 1:
            raise ValueError(
                f"canary_min_audits must be positive, "
                f"got {self.canary_min_audits}"
            )
        if self.canary_tolerance <= 0:
            raise ValueError(
                f"canary_tolerance must be positive, "
                f"got {self.canary_tolerance}"
            )
        if self.drift_window < 2:
            raise ValueError(
                f"drift_window must be >= 2, got {self.drift_window}"
            )
        if self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if self.profile_hz < 0:
            raise ValueError(
                f"profile_hz must be non-negative, got {self.profile_hz}"
            )
        if self.slos is not None:
            from .health import SLO

            for slo in self.slos:
                if not isinstance(slo, SLO):
                    raise ValueError(
                        f"slos must be SLO instances, got {slo!r}"
                    )
        if self.alert_sink is not None and not callable(self.alert_sink):
            raise ValueError("alert_sink must be callable (or None)")

    def replace(self, **changes) -> "ServingConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


def resolve_config(
    config: ServingConfig | None,
    legacy: dict[str, Any],
    owner: str,
) -> ServingConfig:
    """Fold deprecated per-constructor kwargs into a :class:`ServingConfig`.

    ``legacy`` maps field names to values, with :data:`UNSET` marking
    kwargs the caller did not pass.  Passed legacy kwargs emit one
    :class:`DeprecationWarning` naming them; combining them with an
    explicit ``config`` is rejected (two sources of truth).
    """
    used = {name: value for name, value in legacy.items() if value is not UNSET}
    if not used:
        return config if config is not None else ServingConfig()
    if config is not None:
        raise ValueError(
            f"{owner}: pass either config=ServingConfig(...) or the legacy "
            f"kwargs ({', '.join(sorted(used))}), not both"
        )
    warnings.warn(
        f"{owner}({', '.join(f'{name}=...' for name in sorted(used))}) is "
        "deprecated; pass config=ServingConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ServingConfig(**used)
