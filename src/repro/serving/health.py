"""Product-health observability: is the product still *good*?

PR 8's telemetry answers "where did the milliseconds go"; this module
watches the slates themselves.  The paper's whole contribution is a
relevance–diversity tradeoff (NDCG vs. intra-list distance, the
``e_k``-normalized log-probability), and a stack that hot-swaps
retrained factors under live traffic can silently regress exactly those
quantities on every :meth:`~repro.serving.runtime.ServingRuntime.publish`
— or drift slowly as quality models age.  Four pieces:

**ResponseAuditor** — ``ServingConfig.audit_rate`` drives the same
deterministic credit-accumulator sampling as ``trace_rate`` (no RNG
consumed, so ``audit_rate=0`` keeps seeded sample streams bit-identical
— parity-pinned).  An audited response costs O(k²·r) *after* the engine
batch resolves: slate quality mass, intra-list distance (ILAD — the
:func:`repro.eval.metrics.intra_list_distance` math, fed the pinned
snapshot's factor rows), mean pairwise cosine similarity, the slate's
``log_probability``, its length, and degradation/alpha context — all
feeding ``slate_quality_*`` histograms labeled ``{mode, degraded,
version}`` plus bounded per-version :class:`WindowedStat` windows.

**Publish canaries** — the runtime snapshots the pre-swap version's
audit windows as a baseline before every publish; once the new version
accrues ``canary_min_audits`` audited responses, a :class:`CanaryReport`
compares quality mass, ILAD, log-probability, p99 service latency and
degradation rate against that baseline and emits a ``canary_regression``
event + alert when any metric regresses beyond ``canary_tolerance``.

**Drift detection** — a :class:`DriftDetector` per audited metric holds
bounded reference-vs-current ring buffers (running moments) and runs
a simple mean-shift test (pooled standard error, with a relative floor
so stationary noise stays quiet); a shift emits a ``drift`` event and
flags :meth:`ResponseAuditor.health_reasons` until the metric settles.

**SLOTracker** — declarative :class:`SLO` objectives (latency target,
error rate, degradation/shed rate, availability) evaluated on the
*injected* clock over fast/slow burn-rate windows (the multi-window
convention: page when the error budget burns on both horizons, warn
when only one is hot).  ``runtime.health()`` folds the SLO verdicts and
the auditor's canary/drift flags into one :class:`HealthStatus`
(``healthy`` / ``degraded`` / ``unhealthy`` with reasons); alerts fan
out through an :class:`AlertSink` callback channel.

Nothing here touches the batch critical path: auditing runs after the
engine call returns, sampling consumes no randomness, and every window
is bounded.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..utils.metrics import MetricsRegistry
from .observability import EventLog

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
    "HealthStatus",
    "WindowedStat",
    "DriftDetector",
    "AlertSink",
    "SLO",
    "SLOTracker",
    "CanaryReport",
    "ResponseAuditor",
]

#: the three health verdicts, ordered benign-first
HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_STATUS_SEVERITY = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class HealthStatus:
    """One ``runtime.health()`` verdict: the status, why, and the
    per-SLO burn evaluations it was derived from."""

    status: str
    reasons: tuple[str, ...] = ()
    slos: tuple[dict, ...] = ()

    @property
    def healthy(self) -> bool:
        return self.status == HEALTHY

    @property
    def severity(self) -> int:
        return _STATUS_SEVERITY[self.status]

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reasons": list(self.reasons),
            "slos": [dict(evaluation) for evaluation in self.slos],
        }


class WindowedStat:
    """A bounded ring buffer of float samples with summary statistics.

    The auditor's per-version quality windows and the drift detector's
    reference/current buffers are all this class: the last ``capacity``
    samples, thread-safe, O(capacity) memory forever.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._values: deque[float] = deque(maxlen=self.capacity)
        self._added = 0
        # Running first/second moments maintained across ring eviction
        # keep mean/std O(1) — the drift detector re-tests on every
        # sample, so O(capacity) summing here would dominate audits.
        self._sum = 0.0
        self._sumsq = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._values) == self.capacity:
                evicted = self._values[0]
                self._sum -= evicted
                self._sumsq -= evicted * evicted
            self._values.append(value)
            self._sum += value
            self._sumsq += value * value
            self._added += 1

    def clear(self) -> None:
        with self._lock:
            self._values.clear()
            self._sum = 0.0
            self._sumsq = 0.0

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def added(self) -> int:
        """Lifetime samples offered (retained or since evicted)."""
        with self._lock:
            return self._added

    @property
    def full(self) -> bool:
        with self._lock:
            return len(self._values) == self.capacity

    def mean(self) -> float | None:
        with self._lock:
            if not self._values:
                return None
            return self._sum / len(self._values)

    def std(self) -> float | None:
        """Population standard deviation (None when empty)."""
        moments = self.moments()
        return None if moments is None else moments[2] ** 0.5

    def moments(self) -> tuple[int, float, float] | None:
        """(count, mean, population variance) in one lock acquisition."""
        with self._lock:
            n = len(self._values)
            if n == 0:
                return None
            mean = self._sum / n
            variance = max(self._sumsq / n - mean * mean, 0.0)
            return n, mean, variance


class DriftDetector:
    """Mean-shift detection over reference-vs-current sample windows.

    The first ``window`` samples freeze into the *reference*; later
    samples roll through the *current* window.  Once current is full,
    every new sample re-runs a simple two-sample mean test: drift fires
    when the mean gap exceeds ``threshold`` pooled standard errors *and*
    a relative floor (``min_shift`` of the reference mean's magnitude) —
    the floor is what keeps tight stationary distributions quiet under
    repeated testing.  On a firing the reference rebases to the current
    window (so one regime change fires once, not forever) and the
    detector stays ``flagged`` until a post-rebase full window passes.
    """

    def __init__(
        self,
        metric: str,
        window: int = 128,
        threshold: float = 3.0,
        min_shift: float = 0.05,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_shift < 0:
            raise ValueError(f"min_shift must be non-negative, got {min_shift}")
        self.metric = metric
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_shift = float(min_shift)
        self._lock = threading.Lock()
        # Plain rings + running moments under ONE lock: the detector
        # re-tests on every audited sample, so this is a hot path.
        self._reference: deque[float] = deque()
        self._current: deque[float] = deque()
        self._ref_sum = 0.0
        self._ref_sumsq = 0.0
        self._cur_sum = 0.0
        self._cur_sumsq = 0.0
        self.fired = 0
        self.flagged = False

    def add(self, value: float) -> dict | None:
        """Feed one sample; returns the drift record when a shift fires."""
        value = float(value)
        n = self.window
        with self._lock:
            if len(self._reference) < n:
                self._reference.append(value)
                self._ref_sum += value
                self._ref_sumsq += value * value
                return None
            if len(self._current) == n:
                evicted = self._current.popleft()
                self._cur_sum -= evicted
                self._cur_sumsq -= evicted * evicted
            self._current.append(value)
            self._cur_sum += value
            self._cur_sumsq += value * value
            if len(self._current) < n:
                return None
            ref_mean = self._ref_sum / n
            cur_mean = self._cur_sum / n
            ref_var = max(self._ref_sumsq / n - ref_mean * ref_mean, 0.0)
            cur_var = max(self._cur_sumsq / n - cur_mean * cur_mean, 0.0)
            pooled_stderr = ((ref_var + cur_var) / n) ** 0.5
            delta = abs(cur_mean - ref_mean)
            floor = self.min_shift * max(abs(ref_mean), 1e-12)
            if delta > max(self.threshold * pooled_stderr, floor):
                self.fired += 1
                self.flagged = True
                # Rebase: the new regime becomes the reference, so a
                # single shift fires once and recovery is observable.
                self._reference = self._current
                self._ref_sum = self._cur_sum
                self._ref_sumsq = self._cur_sumsq
                self._current = deque()
                self._cur_sum = 0.0
                self._cur_sumsq = 0.0
                return {
                    "metric": self.metric,
                    "reference_mean": ref_mean,
                    "current_mean": cur_mean,
                    "shift": cur_mean - ref_mean,
                }
            self.flagged = False
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "metric": self.metric,
                "fired": self.fired,
                "flagged": self.flagged,
                "reference_mean": (
                    self._ref_sum / len(self._reference) if self._reference else None
                ),
                "current_mean": (
                    self._cur_sum / len(self._current) if self._current else None
                ),
            }


class AlertSink:
    """The alert fan-out channel: bounded retention + callbacks.

    Canary regressions, drift firings and SLO burns all land here as
    structured dicts; ``subscribe`` callbacks (e.g. a pager shim, or the
    ``ServingConfig.alert_sink`` callable) fire synchronously on the
    emitting thread.  A raising callback is swallowed — alerting must
    never take the serving path down.
    """

    def __init__(
        self,
        callback: Callable[[dict], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        keep: int = 64,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self._clock = clock
        self._lock = threading.Lock()
        self.alerts: deque[dict] = deque(maxlen=keep)
        self._callbacks: list[Callable[[dict], None]] = []
        self._emitted = 0
        if callback is not None:
            self._callbacks.append(callback)

    def subscribe(self, callback: Callable[[dict], None]) -> None:
        with self._lock:
            self._callbacks.append(callback)

    def emit(self, kind: str, **fields) -> dict:
        alert = {"kind": kind, "time": self._clock(), **fields}
        with self._lock:
            self._emitted += 1
            self.alerts.append(alert)
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                callback(alert)
            except Exception:  # pragma: no cover - defensive
                pass
        return alert

    def snapshot(self, kind: str | None = None) -> list[dict]:
        with self._lock:
            alerts = list(self.alerts)
        if kind is not None:
            alerts = [alert for alert in alerts if alert["kind"] == kind]
        return alerts

    @property
    def emitted(self) -> int:
        with self._lock:
            return self._emitted


# ----------------------------------------------------------------------
# SLOs and burn-rate tracking
# ----------------------------------------------------------------------
#: the objectives SLOTracker knows how to score
SLO_OBJECTIVES = ("latency", "error_rate", "degraded_rate", "availability")


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    ``objective`` picks what counts as a *bad* event:

    ===============  ====================================  ==============
    objective        target means                          default budget
    ===============  ====================================  ==============
    ``latency``      per-request service seconds; bad      ``0.01``
                     when over ``target`` (a p99 target:
                     1% of requests may exceed it)
    ``error_rate``   bad = request failed; budget is the   ``target``
                     target failure fraction itself
    ``degraded_rate``bad = served below requested mode     ``target``
                     (incl. quality-topk sheds)
    ``availability`` ``target`` is the success fraction    ``1 - target``
                     (e.g. 0.999); bad = request failed
    ===============  ====================================  ==============

    Burn rate = (bad fraction over a window) / budget; 1.0 means the
    error budget is being spent exactly at the rate that exhausts it.
    Both the slow ``window`` and the ``fast_window`` must exceed
    ``burn_threshold`` to breach (the standard multi-window rule: the
    fast window catches the fire, the slow window proves it is not a
    blip).
    """

    name: str
    objective: str
    target: float
    window: float = 300.0
    fast_window: float = 60.0
    burn_threshold: float = 1.0
    budget: float | None = None

    def __post_init__(self) -> None:
        if self.objective not in SLO_OBJECTIVES:
            raise ValueError(
                f"objective must be one of {SLO_OBJECTIVES}, "
                f"got {self.objective!r}"
            )
        if self.target <= 0:
            raise ValueError(f"target must be positive, got {self.target}")
        if self.objective == "availability" and not self.target < 1.0:
            raise ValueError(
                f"availability target must be < 1, got {self.target}"
            )
        if self.window <= 0 or self.fast_window <= 0:
            raise ValueError("windows must be positive seconds")
        if self.fast_window > self.window:
            raise ValueError(
                f"fast_window ({self.fast_window}) must not exceed "
                f"window ({self.window})"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be positive, got {self.burn_threshold}"
            )
        if self.budget is not None and not 0 < self.budget <= 1:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")

    @property
    def error_budget(self) -> float:
        if self.budget is not None:
            return self.budget
        if self.objective == "latency":
            return 0.01
        if self.objective == "availability":
            return 1.0 - self.target
        return self.target


class _RateWindow:
    """Good/bad event counts over a sliding time window.

    Time-bucketed ring: ``segments`` buckets of ``seconds/segments``
    each, expired buckets evicted on touch — O(segments) memory
    regardless of traffic, exact to one bucket's granularity.
    """

    __slots__ = ("seconds", "segment_s", "segments", "_cells")

    def __init__(self, seconds: float, segments: int = 12) -> None:
        self.seconds = float(seconds)
        self.segments = int(segments)
        self.segment_s = self.seconds / self.segments
        self._cells: deque[list] = deque()  # [bucket_index, good, bad]

    def _evict(self, index: int) -> None:
        horizon = index - self.segments + 1
        while self._cells and self._cells[0][0] < horizon:
            self._cells.popleft()

    def record(self, now: float, bad: bool) -> None:
        index = int(now // self.segment_s)
        self._evict(index)
        if not self._cells or self._cells[-1][0] != index:
            self._cells.append([index, 0, 0])
        self._cells[-1][2 if bad else 1] += 1

    def totals(self, now: float) -> tuple[int, int]:
        """(bad, total) still inside the window at ``now``."""
        self._evict(int(now // self.segment_s))
        bad = sum(cell[2] for cell in self._cells)
        good = sum(cell[1] for cell in self._cells)
        return bad, good + bad


class SLOTracker:
    """Multi-window burn-rate evaluation over declarative :class:`SLO`s.

    Fed one call per served request (from the auditor's post-serve
    hook), evaluated on demand against the *injected* clock — so burn
    math is exact and deterministic under a
    :class:`~repro.utils.timing.ManualClock`.  Breach transitions are
    edge-triggered into the event log (``slo_burn`` / ``slo_recovered``)
    and the alert sink; per-window burn rates land in the registry's
    ``slo_burn_rate{slo, window}`` gauge family.
    """

    def __init__(
        self,
        slos: Sequence[SLO] = (),
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        alert_sink: AlertSink | None = None,
        segments: int = 12,
    ) -> None:
        for slo in slos:
            if not isinstance(slo, SLO):
                raise TypeError(f"slos must be SLO instances, got {slo!r}")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.objectives: tuple[SLO, ...] = tuple(slos)
        self._clock = clock
        self._event_log = event_log
        self._alert_sink = alert_sink
        self._lock = threading.Lock()
        self._windows: dict[str, dict[str, _RateWindow]] = {
            slo.name: {
                "slow": _RateWindow(slo.window, segments),
                "fast": _RateWindow(slo.fast_window, segments),
            }
            for slo in self.objectives
        }
        self._breached: dict[str, bool] = {slo.name: False for slo in self.objectives}
        self._burn_gauge = None
        if registry is not None and self.objectives:
            self._burn_gauge = registry.gauge(
                "slo_burn_rate",
                "error-budget burn rate per SLO and window",
                labelnames=("slo", "window"),
            )

    @staticmethod
    def _is_bad(slo: SLO, seconds: float | None, error: bool, degraded: bool):
        """Whether this request spends ``slo``'s budget; None = no sample
        (e.g. a failed request contributes no latency observation)."""
        if slo.objective == "latency":
            if error or seconds is None:
                return None
            return seconds > slo.target
        if slo.objective == "degraded_rate":
            return degraded
        # error_rate and availability both count failures.
        return error

    def record(
        self,
        now: float | None = None,
        seconds: float | None = None,
        error: bool = False,
        degraded: bool = False,
    ) -> None:
        if not self.objectives:
            return
        if now is None:
            now = self._clock()
        with self._lock:
            for slo in self.objectives:
                bad = self._is_bad(slo, seconds, error, degraded)
                if bad is None:
                    continue
                windows = self._windows[slo.name]
                windows["slow"].record(now, bad)
                windows["fast"].record(now, bad)

    def evaluate(self, now: float | None = None) -> tuple[dict, ...]:
        """Per-SLO burn verdicts right now (edge-triggering alerts)."""
        if now is None:
            now = self._clock()
        out = []
        transitions: list[tuple[SLO, bool, dict]] = []
        with self._lock:
            for slo in self.objectives:
                windows = self._windows[slo.name]
                slow_bad, slow_total = windows["slow"].totals(now)
                fast_bad, fast_total = windows["fast"].totals(now)
                budget = slo.error_budget
                slow_burn = (slow_bad / slow_total / budget) if slow_total else 0.0
                fast_burn = (fast_bad / fast_total / budget) if fast_total else 0.0
                over_slow = slow_burn > slo.burn_threshold
                over_fast = fast_burn > slo.burn_threshold
                breached = over_slow and over_fast
                evaluation = {
                    "name": slo.name,
                    "objective": slo.objective,
                    "target": slo.target,
                    "budget": budget,
                    "slow_burn": slow_burn,
                    "fast_burn": fast_burn,
                    "slow_events": slow_total,
                    "fast_events": fast_total,
                    "breached": breached,
                    "warning": over_slow != over_fast,
                }
                out.append(evaluation)
                if breached != self._breached[slo.name]:
                    self._breached[slo.name] = breached
                    transitions.append((slo, breached, evaluation))
        if self._burn_gauge is not None:
            for evaluation in out:
                for window in ("slow", "fast"):
                    self._burn_gauge.labels(
                        slo=evaluation["name"], window=window
                    ).set(evaluation[f"{window}_burn"])
        for slo, breached, evaluation in transitions:
            kind = "slo_burn" if breached else "slo_recovered"
            if self._event_log is not None:
                self._event_log.record(
                    kind,
                    slo=slo.name,
                    objective=slo.objective,
                    slow_burn=evaluation["slow_burn"],
                    fast_burn=evaluation["fast_burn"],
                )
            if breached and self._alert_sink is not None:
                self._alert_sink.emit(
                    "slo_burn",
                    slo=slo.name,
                    objective=slo.objective,
                    slow_burn=evaluation["slow_burn"],
                    fast_burn=evaluation["fast_burn"],
                )
        return tuple(out)

    def health(self, now: float | None = None) -> tuple[str, list[str], tuple[dict, ...]]:
        """(status, reasons, evaluations): ``unhealthy`` when any SLO
        burns on both windows, ``degraded`` when exactly one window is
        hot (igniting or recovering), else ``healthy``."""
        evaluations = self.evaluate(now)
        status = HEALTHY
        reasons: list[str] = []
        for evaluation in evaluations:
            if evaluation["breached"]:
                status = UNHEALTHY
                reasons.append(
                    f"SLO {evaluation['name']} ({evaluation['objective']}) "
                    f"burning {evaluation['fast_burn']:.2f}x fast / "
                    f"{evaluation['slow_burn']:.2f}x slow"
                )
            elif evaluation["warning"]:
                if status == HEALTHY:
                    status = DEGRADED
                reasons.append(
                    f"SLO {evaluation['name']} ({evaluation['objective']}) "
                    f"burning on one window "
                    f"(fast {evaluation['fast_burn']:.2f}x, "
                    f"slow {evaluation['slow_burn']:.2f}x)"
                )
        return status, reasons, evaluations


# ----------------------------------------------------------------------
# Publish canaries
# ----------------------------------------------------------------------
#: canary-compared metrics where a *drop* beyond tolerance regresses
_LOWER_IS_WORSE = ("quality_mass", "ilad", "log_probability")


@dataclass(frozen=True)
class CanaryReport:
    """The verdict of one post-publish canary comparison.

    ``metrics`` maps each compared metric to ``{"baseline", "current",
    "delta", "regressed"}``; ``regressions`` names the ones that moved
    beyond tolerance in the bad direction.  Quality mass, ILAD and
    log-probability regress on a *relative drop*; p99 service latency on
    a relative rise (skipped when the baseline saw no measurable
    latency); degradation rate on an absolute rise.
    """

    baseline_version: int
    version: int
    audits: int
    tolerance: float
    metrics: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    regressions: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "baseline_version": self.baseline_version,
            "version": self.version,
            "audits": self.audits,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "regressions": list(self.regressions),
            "metrics": {name: dict(values) for name, values in self.metrics.items()},
        }


class _PendingCanary:
    """An armed canary: the frozen pre-swap baseline, waiting for the
    new version to accrue enough audited responses."""

    __slots__ = ("baseline_version", "version", "baseline", "min_audits")

    def __init__(
        self, baseline_version: int, version: int, baseline: dict, min_audits: int
    ) -> None:
        self.baseline_version = int(baseline_version)
        self.version = int(version)
        self.baseline = dict(baseline)
        self.min_audits = int(min_audits)


def _compare_canary_metric(
    name: str, baseline, current, tolerance: float
) -> tuple[dict, bool]:
    entry = {"baseline": baseline, "current": current, "delta": None}
    if baseline is None or current is None:
        return entry, False
    delta = current - baseline
    entry["delta"] = delta
    if name in _LOWER_IS_WORSE:
        regressed = delta < -tolerance * max(abs(baseline), 1e-12)
    elif name == "latency_p99_s":
        # A zero baseline means latency was never measurable (manual
        # clocks, cold histograms) — nothing to compare against.
        regressed = baseline > 0 and current > baseline * (1.0 + tolerance)
    else:  # degraded_rate: absolute rise
        regressed = delta > tolerance
    entry["regressed"] = regressed
    return entry, regressed


# ----------------------------------------------------------------------
# The response auditor
# ----------------------------------------------------------------------
class _VersionWindows:
    """Bounded audit windows for one catalog version."""

    __slots__ = (
        "quality_mass",
        "ilad",
        "similarity",
        "log_probability",
        "slate_size",
        "alpha",
        "audited",
        "degraded_audited",
    )

    def __init__(self, capacity: int) -> None:
        self.quality_mass = WindowedStat(capacity)
        self.ilad = WindowedStat(capacity)
        self.similarity = WindowedStat(capacity)
        self.log_probability = WindowedStat(capacity)
        self.slate_size = WindowedStat(capacity)
        self.alpha = WindowedStat(capacity)
        self.audited = 0
        self.degraded_audited = 0


class ResponseAuditor:
    """Sampled post-serve slate-quality auditing + canary evaluation.

    Wired by the runtime between the resilient layer and the futures:
    :meth:`observe_batch` runs once per resolved engine batch, stamping
    version-labeled hot-path counters, feeding the SLO tracker, and —
    for credit-sampled responses when ``audit_rate > 0`` — computing the
    slate-quality metrics from the *pinned* snapshot's factor rows (the
    exact factors the slate was served from, even mid-hot-swap).

    Sampling mirrors the trace sampler: a deterministic credit
    accumulator, no RNG consumed, so ``audit_rate=0`` leaves seeded
    sample streams bit-identical (parity-pinned) and any rate is
    reproducible under the manual-clock test harness.
    """

    #: distinct catalog versions whose audit windows stay retained
    MAX_VERSION_WINDOWS = 4

    def __init__(
        self,
        registry: MetricsRegistry,
        event_log: EventLog,
        clock: Callable[[], float] = time.monotonic,
        audit_rate: float = 0.0,
        window: int = 256,
        canary_min_audits: int = 32,
        canary_tolerance: float = 0.1,
        drift_window: int = 128,
        drift_threshold: float = 3.0,
        slo_tracker: SLOTracker | None = None,
        alert_sink: AlertSink | None = None,
    ) -> None:
        if not 0.0 <= audit_rate <= 1.0:
            raise ValueError(f"audit_rate must be in [0, 1], got {audit_rate}")
        if canary_min_audits < 1:
            raise ValueError(
                f"canary_min_audits must be positive, got {canary_min_audits}"
            )
        if not 0.0 < canary_tolerance:
            raise ValueError(
                f"canary_tolerance must be positive, got {canary_tolerance}"
            )
        self.rate = float(audit_rate)
        self.window = int(window)
        self.canary_min_audits = int(canary_min_audits)
        self.canary_tolerance = float(canary_tolerance)
        self._clock = clock
        self._event_log = event_log
        self._registry = registry
        self._slo_tracker = slo_tracker
        self._alert_sink = alert_sink
        self._lock = threading.Lock()
        self._credit = 0.0
        self._audited_total = 0
        self._label_cache: dict[tuple, tuple] = {}
        self._windows: dict[int, _VersionWindows] = {}
        self._canary: _PendingCanary | None = None
        self._last_canary: CanaryReport | None = None
        self._drift = {
            name: DriftDetector(name, window=drift_window, threshold=drift_threshold)
            for name in ("quality_mass", "ilad")
        }
        # The hot-path per-version families resilience.py increments;
        # get-or-create hands the auditor the same objects to *read*
        # (degradation rate, p99 service time) for canary comparisons.
        self._served_by_version = registry.counter(
            "runtime_served_total",
            "responses served, labeled by catalog version",
            labelnames=("version",),
        )
        self._degraded_by_version = registry.counter(
            "runtime_degraded_total",
            "degraded (incl. shed) responses, labeled by catalog version",
            labelnames=("version",),
        )
        self._request_seconds = registry.histogram(
            "runtime_request_seconds",
            "per-request engine service time, labeled by catalog version",
            labelnames=("version",),
        )
        labels = ("mode", "degraded", "version")
        self._audited_counter = registry.counter(
            "slate_audits_total", "responses audited", labelnames=labels
        )
        self._quality_hist = registry.histogram(
            "slate_quality_mass",
            "summed item quality of audited slates",
            labelnames=labels,
            buckets=_quality_buckets(),
        )
        self._ilad_hist = registry.histogram(
            "slate_quality_ilad",
            "intra-list distance of audited slates (factor space)",
            labelnames=labels,
            buckets=_ilad_buckets(),
        )
        self._neg_logp_hist = registry.histogram(
            "slate_quality_neg_log_probability",
            "negated k-DPP log-probability of audited slates",
            labelnames=labels,
            buckets=_neg_logp_buckets(),
        )
        self._size_hist = registry.histogram(
            "slate_quality_size",
            "slate length of audited responses",
            labelnames=labels,
            buckets=list(range(1, 33)),
        )

    # ------------------------------------------------------------- sampling
    def _take_credit(self) -> bool:
        """The deterministic credit accumulator (the trace sampler's
        twin): at rate r exactly every 1/r-th response audits."""
        rate = self.rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        with self._lock:
            self._credit += rate
            if self._credit >= 1.0:
                self._credit -= 1.0
                return True
        return False

    def _labeled(self, mode: str, degraded: bool, version: int):
        """Resolved metric children for one label combination, cached —
        label resolution costs a lock per family, and audits at rate 1
        would pay it five times per response."""
        key = (mode, degraded, version)
        children = self._label_cache.get(key)
        if children is None:
            labels = {
                "mode": mode,
                "degraded": "true" if degraded else "false",
                "version": str(version),
            }
            children = (
                self._audited_counter.labels(**labels),
                self._quality_hist.labels(**labels),
                self._ilad_hist.labels(**labels),
                self._size_hist.labels(**labels),
                self._neg_logp_hist.labels(**labels),
            )
            if len(self._label_cache) >= 64:  # modes x 2 x live versions
                self._label_cache.clear()
            self._label_cache[key] = children
        return children

    # ------------------------------------------------------------ the hook
    def observe_batch(self, admitted, results, snapshot, elapsed: float) -> None:
        """Post-serve accounting for one resolved batch (runtime hook).

        Runs after the resilient layer returned — never inside the
        engine's timed window — and touches no request or response
        object, so the ``audit_rate=0`` path stays bit-identical.
        """
        if not results:
            return
        now = self._clock()
        version = int(getattr(snapshot, "version", -1))
        share = max(elapsed, 0.0) / len(results)
        tracker = self._slo_tracker
        audits: list = []
        for item, result in zip(admitted, results):
            error = isinstance(result, BaseException)
            degraded = (not error) and bool(result.degraded)
            if tracker is not None:
                tracker.record(
                    now,
                    seconds=None if error else share,
                    error=error,
                    degraded=degraded,
                )
            if not error and self._take_credit():
                audits.append((item.request, result))
        if audits:
            measurements = self._slate_measurements(audits, snapshot)
            for (request, response), measured in zip(audits, measurements):
                self._audit(request, response, version, *measured)
            self._maybe_evaluate_canary()
        if tracker is not None and tracker.objectives:
            tracker.evaluate(now)

    @staticmethod
    def _slate_measurements(audits, snapshot) -> list[tuple]:
        """(items, ILAD, mean |cos|) per audited slate; the geometry is
        vectorized across the batch (grouped by slate shape) so numpy
        dispatch overhead amortizes over every audit in it.  Factor
        rows come from the pinned snapshot via ``take_rows`` — indexed
        locally, so sharded snapshots never materialize full factors."""
        measurements: list = [None] * len(audits)
        gathered: dict[int, tuple] = {}
        groups: dict[tuple, list[int]] = {}
        for index, (_, response) in enumerate(audits):
            items = np.asarray(response.items, dtype=np.int64)
            if items.shape[0] < 2:
                measurements[index] = (items, 0.0, 0.0)
                continue
            rows = np.asarray(snapshot.take_rows(items), dtype=np.float64)
            gathered[index] = (items, rows)
            groups.setdefault(rows.shape, []).append(index)
        for indices in groups.values():
            stacked = np.stack([gathered[index][1] for index in indices])
            ilads, similarities = _slate_geometry_batch(stacked)
            for position, index in enumerate(indices):
                measurements[index] = (
                    gathered[index][0],
                    float(ilads[position]),
                    float(similarities[position]),
                )
        return measurements

    def _audit(
        self, request, response, version: int, items, ilad: float, similarity: float
    ) -> None:
        size = int(items.shape[0])
        if size:
            quality = np.asarray(request.quality, dtype=np.float64)
            mass = float(quality[items].sum())
        else:
            mass = 0.0
        log_probability = response.log_probability
        mode = request.mode
        degraded = bool(response.degraded)
        children = self._labeled(mode, degraded, version)
        audited_counter, quality_hist, ilad_hist, size_hist, neg_logp_hist = children
        audited_counter.inc()
        quality_hist.observe(mass)
        ilad_hist.observe(ilad)
        size_hist.observe(size)
        if log_probability is not None:
            neg_logp_hist.observe(max(-float(log_probability), 0.0))
        with self._lock:
            windows = self._windows.get(version)
            if windows is None:
                windows = _VersionWindows(self.window)
                self._windows[version] = windows
                while len(self._windows) > self.MAX_VERSION_WINDOWS:
                    del self._windows[min(self._windows)]
            windows.audited += 1
            if degraded:
                windows.degraded_audited += 1
            self._audited_total += 1
        windows.quality_mass.add(mass)
        windows.ilad.add(ilad)
        windows.similarity.add(similarity)
        windows.slate_size.add(size)
        windows.alpha.add(float(request.alpha))
        if log_probability is not None:
            windows.log_probability.add(float(log_probability))
        for name, value in (("quality_mass", mass), ("ilad", ilad)):
            record = self._drift[name].add(value)
            if record is not None:
                self._event_log.record("drift", **record)
                if self._alert_sink is not None:
                    self._alert_sink.emit("drift", **record)

    # ----------------------------------------------------------- aggregates
    def aggregate(self, version: int) -> dict:
        """Point-in-time audit summary for one catalog version: window
        means plus the registry-derived degradation rate and p99
        service latency the canary comparison reads."""
        version = int(version)
        with self._lock:
            windows = self._windows.get(version)
            audited = windows.audited if windows is not None else 0
            degraded_audited = (
                windows.degraded_audited if windows is not None else 0
            )
        label = str(version)
        served = self._served_by_version.labels(version=label).value
        degraded = self._degraded_by_version.labels(version=label).value
        out = {
            "version": version,
            "audits": audited,
            "degraded_audits": degraded_audited,
            "served": int(served),
            "degraded_rate": (degraded / served) if served else 0.0,
            "latency_p99_s": self._request_seconds.labels(
                version=label
            ).percentile(99.0),
        }
        for name in (
            "quality_mass",
            "ilad",
            "similarity",
            "log_probability",
            "slate_size",
            "alpha",
        ):
            out[name] = getattr(windows, name).mean() if windows is not None else None
        return out

    # -------------------------------------------------------------- canary
    def canary_baseline(self, version: int) -> dict:
        """Freeze the pre-swap version's audit windows (publish calls
        this *before* the catalog swap, so audits landing during the
        publish cannot retroactively move the baseline)."""
        return self.aggregate(version)

    def arm_canary(self, baseline: dict, version: int) -> bool:
        """Arm the post-publish comparison; returns False (recording a
        ``canary_skipped`` event) when the baseline never accrued
        enough audited responses to compare against."""
        if baseline["audits"] < self.canary_min_audits:
            self._event_log.record(
                "canary_skipped",
                baseline_version=baseline["version"],
                version=int(version),
                baseline_audits=baseline["audits"],
                needed=self.canary_min_audits,
            )
            return False
        with self._lock:
            self._canary = _PendingCanary(
                baseline["version"], version, baseline, self.canary_min_audits
            )
        return True

    def _maybe_evaluate_canary(self) -> None:
        with self._lock:
            pending = self._canary
            if pending is None:
                return
            windows = self._windows.get(pending.version)
            if windows is None or windows.audited < pending.min_audits:
                return
            self._canary = None
        current = self.aggregate(pending.version)
        metrics: dict[str, dict] = {}
        regressions: list[str] = []
        for name in (
            "quality_mass",
            "ilad",
            "log_probability",
            "latency_p99_s",
            "degraded_rate",
        ):
            entry, regressed = _compare_canary_metric(
                name,
                pending.baseline.get(name),
                current.get(name),
                self.canary_tolerance,
            )
            metrics[name] = entry
            if regressed:
                regressions.append(name)
        report = CanaryReport(
            baseline_version=pending.baseline_version,
            version=pending.version,
            audits=current["audits"],
            tolerance=self.canary_tolerance,
            metrics=metrics,
            regressions=tuple(regressions),
        )
        with self._lock:
            self._last_canary = report
        self._event_log.record(
            "canary",
            baseline_version=report.baseline_version,
            version=report.version,
            passed=report.passed,
            regressions=list(report.regressions),
        )
        if report.regressions:
            details = {
                name: report.metrics[name]["delta"] for name in report.regressions
            }
            self._event_log.record(
                "canary_regression",
                baseline_version=report.baseline_version,
                version=report.version,
                regressions=list(report.regressions),
                deltas=details,
            )
            if self._alert_sink is not None:
                self._alert_sink.emit(
                    "canary_regression",
                    baseline_version=report.baseline_version,
                    version=report.version,
                    regressions=list(report.regressions),
                    deltas=details,
                )

    @property
    def last_canary(self) -> CanaryReport | None:
        with self._lock:
            return self._last_canary

    @property
    def pending_canary(self) -> dict | None:
        with self._lock:
            pending = self._canary
            if pending is None:
                return None
            return {
                "baseline_version": pending.baseline_version,
                "version": pending.version,
                "min_audits": pending.min_audits,
                "baseline": dict(pending.baseline),
            }

    @property
    def audited(self) -> int:
        with self._lock:
            return self._audited_total

    # -------------------------------------------------------------- health
    def health_reasons(self, current_version: int) -> list[str]:
        """Why the product (not the infrastructure) looks off right now:
        a regressed canary targeting the live version, or flagged
        metric drift.  Feeds ``runtime.health()``."""
        reasons: list[str] = []
        with self._lock:
            report = self._last_canary
            drift = [d for d in self._drift.values() if d.flagged]
        if (
            report is not None
            and report.regressions
            and report.version == int(current_version)
        ):
            reasons.append(
                f"canary regression on v{report.version}: "
                + ", ".join(report.regressions)
            )
        for detector in drift:
            reasons.append(f"drift detected on {detector.metric}")
        return reasons

    def stats(self) -> dict:
        """The telemetry snapshot's ``audit`` section."""
        with self._lock:
            versions = sorted(self._windows)
        return {
            "audit_rate": self.rate,
            "audited": self.audited,
            "windows": {version: self.aggregate(version) for version in versions},
            "pending_canary": self.pending_canary,
            "last_canary": (
                self.last_canary.to_dict() if self.last_canary is not None else None
            ),
            "drift": {
                name: detector.stats() for name, detector in self._drift.items()
            },
        }


def _slate_geometry(rows: np.ndarray) -> tuple[float, float]:
    """(mean pairwise Euclidean distance, mean pairwise |cosine|) over
    distinct row pairs — the exact
    :func:`repro.eval.metrics.intra_list_distance` math, vectorized
    (both 0.0 for lists under 2)."""
    rows = np.asarray(rows, dtype=np.float64)
    if rows.shape[0] < 2:
        return 0.0, 0.0
    ilads, similarities = _slate_geometry_batch(rows[None, :, :])
    return float(ilads[0]), float(similarities[0])


def _slate_geometry_batch(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`_slate_geometry` over ``(batch, k, rank)`` stacks
    of factor rows, one gram per slate, k >= 2."""
    _, k, _ = rows.shape
    gram = rows @ rows.transpose(0, 2, 1)
    squared = np.einsum("bii->bi", gram)
    distances_sq = squared[:, :, None] + squared[:, None, :] - 2.0 * gram
    np.maximum(distances_sq, 0.0, out=distances_sq)
    pairs = k * (k - 1)  # ordered pairs; the x2 cancels in both means
    ilads = np.sqrt(distances_sq, out=distances_sq).sum(axis=(1, 2)) / pairs
    norms = np.sqrt(np.maximum(squared, 1e-300))
    cosine = np.abs(gram) / (norms[:, :, None] * norms[:, None, :])
    similarities = (cosine.sum(axis=(1, 2)) - np.einsum("bii->b", cosine)) / pairs
    return ilads, similarities


def _quality_buckets() -> list[float]:
    return [round(0.01 * 10 ** (i / 2), 10) for i in range(13)]


def _ilad_buckets() -> list[float]:
    return [round(0.001 * 10 ** (i / 4), 12) for i in range(17)]


def _neg_logp_buckets() -> list[float]:
    return [round(0.1 * 10 ** (i / 2), 10) for i in range(11)]
