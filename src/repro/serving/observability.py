"""Unified serving telemetry: metrics, stage traces, one snapshot.

The stack below this module answers "what did we serve?"; this module
answers "where did the milliseconds go, and why did requests degrade?"
— the two questions the ROADMAP's millions-of-users north star needs
before any capacity claim means anything.  Three pieces:

**Metrics registry** — the thread-safe :class:`Counter` / :class:`Gauge`
/ log-bucketed :class:`Histogram` primitives (re-exported from
:mod:`repro.utils.metrics`, which lives under ``utils`` so retrieval
sources can adopt them without importing the serving layer).  Every
layer of one :class:`~repro.serving.runtime.ServingRuntime` registers
into a single :class:`MetricsRegistry`, so
``runtime.telemetry().to_text()`` is one Prometheus-style page covering
admission, engine stages, degradations, sheds and breaker trips.

**Per-request stage tracing** — a sampled :class:`Trace`
(``ServingConfig.trace_rate``; the default 0 keeps the fast path
bit-identical, seeded samples included) carries spans opened and closed
through the *injected clock* at each lifecycle stage: queue wait at the
resilient layer's entry, ``funnel`` / ``source`` in the sharded
lowering, ``resolve`` / ``dual_build`` / ``eigh`` / ``normalizer`` /
``selection`` / ``emit`` inside the engine.  Engine stages are batch
phases — every member of a dispatched batch waits on the whole batch,
so a batch phase *is* part of each member's latency, and the
:class:`StageRecorder` therefore attaches the same span to every traced
member.  The finished trace rides out on ``Response.trace``;
degradations, sheds, deadline failures, breaker transitions and
publishes are additionally recorded into the bounded ring-buffer
:class:`EventLog`.

Sampling is deterministic — a credit accumulator, not an RNG — because
consuming random numbers on the serving path would perturb the seeded
sample streams the parity tests pin.

**RuntimeTelemetry** — the facade merging every scattered ``stats()``
dict (scheduler, resilience, retrieval, faults, catalog) into one
versioned snapshot schema (:data:`TELEMETRY_SCHEMA_VERSION`), plus a
:class:`MetricsReporter` that emits snapshots periodically — threaded
against a real clock, or driven by explicit :meth:`~MetricsReporter.tick`
calls in the batcher's ``workers=0`` deterministic mode.
"""

from __future__ import annotations

import logging
import os
import platform
import threading
import time
from contextlib import contextmanager, nullcontext
from collections import deque
from typing import Any, Callable

from ..utils.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "StageRecorder",
    "stage_span",
    "EventLog",
    "RuntimeTelemetry",
    "MetricsReporter",
    "LoggingBridge",
    "attach_logging",
    "telemetry_meta",
    "TELEMETRY_SCHEMA_VERSION",
]

#: bump when the RuntimeTelemetry.snapshot() key layout changes
#: (2: product-health sections — top-level ``health`` / ``audit`` keys,
#: ``new_events`` tails on MetricsReporter-emitted snapshots;
#: 3: the host-identifying ``meta`` section, plus the performance-
#: introspection providers — ``footprint`` / ``headroom`` always,
#: ``profile`` when ``ServingConfig.profile_hz > 0``)
TELEMETRY_SCHEMA_VERSION = 3


def telemetry_meta() -> dict:
    """The host/interpreter identity block snapshots carry (schema v3).

    Benchmarks always recorded python/numpy versions; runtime snapshots
    did not, which made archived snapshots from different hosts
    ambiguous.  Computed once per process (the values cannot change).
    """
    global _TELEMETRY_META
    if _TELEMETRY_META is None:
        try:
            import numpy

            numpy_version = numpy.__version__
        except ImportError:  # pragma: no cover - numpy is a hard dep here
            numpy_version = None
        _TELEMETRY_META = {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "python": platform.python_version(),
            "numpy": numpy_version,
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "pid": os.getpid(),
        }
    return dict(_TELEMETRY_META)


_TELEMETRY_META: dict | None = None


class Span:
    """One closed stage interval inside a trace.

    ``nested=True`` marks a span contained in another span of the same
    trace (``source`` runs inside ``funnel``); coverage accounting
    skips nested spans so wall-clock time is never counted twice.
    """

    __slots__ = ("name", "start", "end", "nested")

    def __init__(
        self, name: str, start: float, end: float, nested: bool = False
    ) -> None:
        self.name = name
        self.start = float(start)
        self.end = float(end)
        self.nested = bool(nested)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "nested": self.nested,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration:.6f}s)"


class Trace:
    """The per-request span tree, clocked by the injected clock.

    A trace is created at admission (``started``), handed through the
    queue inside the :class:`~repro.serving.resilience.AdmittedRequest`
    envelope, filled by the layers the request crosses, and finished
    when its response is stamped — at which point it rides out on
    ``Response.trace``.  Ownership is sequential (submit thread →
    worker thread → caller via the future), so no lock: each handoff
    already synchronizes through the batcher's condition / the future.
    """

    __slots__ = ("started", "finished", "spans", "events", "annotations", "_clock")

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        started: float | None = None,
    ) -> None:
        self._clock = clock
        self.started = clock() if started is None else float(started)
        self.finished: float | None = None
        self.spans: list[Span] = []
        self.events: list[tuple[float, str, dict]] = []
        self.annotations: dict[str, Any] = {}

    def add_span(
        self, name: str, start: float, end: float, nested: bool = False
    ) -> Span:
        span = Span(name, start, end, nested=nested)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, nested: bool = False):
        start = self._clock()
        try:
            yield self
        finally:
            self.add_span(name, start, self._clock(), nested=nested)

    def event(self, name: str, **fields) -> None:
        self.events.append((self._clock(), name, fields))

    def annotate(self, **fields) -> None:
        self.annotations.update(fields)

    def finish(self) -> "Trace":
        if self.finished is None:
            self.finished = self._clock()
        return self

    @property
    def duration(self) -> float:
        """Admission-to-finish in clock seconds (to now if unfinished)."""
        end = self.finished if self.finished is not None else self._clock()
        return end - self.started

    def span_seconds(self, include_nested: bool = False) -> float:
        return sum(
            span.duration
            for span in self.spans
            if include_nested or not span.nested
        )

    def coverage(self, total: float | None = None) -> float:
        """Fraction of the request's latency its top-level spans explain.

        ``total`` defaults to the trace's own duration; pass the
        caller-measured end-to-end latency to audit against an external
        clock.  1.0 when the total is zero (manual clocks that never
        advanced have nothing unaccounted for).
        """
        denominator = self.duration if total is None else total
        if denominator <= 0:
            return 1.0
        return self.span_seconds() / denominator

    def to_dict(self) -> dict:
        """The JSON-friendly dump README's example shows."""
        return {
            "started": self.started,
            "finished": self.finished,
            "duration": self.duration,
            "spans": [span.to_dict() for span in self.spans],
            "events": [
                {"time": when, "name": name, **fields}
                for when, name, fields in self.events
            ],
            "annotations": dict(self.annotations),
        }


class StageRecorder:
    """Collects batch-phase spans once, to be fanned out per trace.

    The engine serves a whole batch through shared phases (one dual
    build, one stacked ``eigh``); creating one recorder per dispatched
    batch — only when the batch holds at least one traced request —
    keeps instrumentation off the untraced fast path entirely.  Every
    member of the batch waited on every phase, so :meth:`extend_trace`
    attaches the full recorded list to each traced member.

    When the runtime profiles (``ServingConfig.profile_hz > 0``) a
    :class:`~repro.utils.profiling.StageRegistry` rides along: every
    stage entry/exit additionally pushes/pops the serving thread's
    current stage, which is how the sampling profiler attributes its
    stack samples — the recorder *is* the thread→stage publisher, no
    second instrumentation point exists.
    """

    __slots__ = ("_clock", "spans", "registry")

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        registry=None,
    ) -> None:
        self._clock = clock
        self.registry = registry
        self.spans: list[tuple[str, float, float, bool]] = []

    @contextmanager
    def stage(self, name: str, nested: bool = False):
        registry = self.registry
        if registry is not None:
            registry.push(name)
        start = self._clock()
        try:
            yield self
        finally:
            end = self._clock()
            if registry is not None:
                registry.pop()
            self.spans.append((name, start, end, nested))

    def extend_trace(self, trace: Trace, nested: bool | None = None) -> None:
        """Attach every recorded span; ``nested=True`` forces all of
        them nested (the resilient layer wraps the whole serve window in
        one top-level ``engine`` span, so stage spans must not
        double-count in coverage sums)."""
        for name, start, end, span_nested in self.spans:
            trace.add_span(
                name,
                start,
                end,
                nested=span_nested if nested is None else nested,
            )

    def seconds(self, name: str) -> float:
        return sum(end - start for n, start, end, _ in self.spans if n == name)


def stage_span(recorder: StageRecorder | None, name: str, nested: bool = False):
    """``with stage_span(stages, "eigh"): ...`` — a no-op context when no
    recorder rides along (the untraced path pays one ``is None``)."""
    if recorder is None:
        return nullcontext()
    return recorder.stage(name, nested=nested)


class EventLog:
    """Bounded ring buffer of notable serving moments.

    Degradations, sheds, deadline failures, breaker transitions and
    publishes land here with a sequence number and an injected-clock
    timestamp; the buffer holds the last ``capacity`` events (drops are
    counted, never silent).  Thread-safe — workers record concurrently.
    """

    def __init__(
        self, capacity: int = 1024, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=self.capacity)
        self._recorded = 0

    def record(self, kind: str, **fields) -> dict:
        event = {"kind": kind, "time": self._clock(), **fields}
        with self._lock:
            self._recorded += 1
            event["seq"] = self._recorded
            self._events.append(event)
        return event

    def snapshot(
        self,
        kind: str | None = None,
        limit: int | None = None,
        since_seq: int | None = None,
    ) -> list[dict]:
        """Oldest-first retained events, optionally filtered by kind,
        restricted to sequence numbers after ``since_seq`` (incremental
        tailing: pass the last ``seq`` you saw to get only new events —
        overwritten ones surface in :meth:`stats`'s ``dropped``), and
        truncated to the most recent ``limit``."""
        with self._lock:
            events = list(self._events)
        if since_seq is not None:
            events = [event for event in events if event["seq"] > since_seq]
        if kind is not None:
            events = [event for event in events if event["kind"] == kind]
        if limit is not None:
            events = events[-limit:]
        return events

    @property
    def last_seq(self) -> int:
        """The most recently assigned sequence number (0 before any)."""
        with self._lock:
            return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self._recorded,
                "retained": len(self._events),
                "dropped": self._recorded - len(self._events),
            }


class RuntimeTelemetry:
    """One versioned snapshot over the whole runtime's visibility.

    Merges the metrics registry, the event log, and every legacy
    ``stats()`` dict (registered as named *providers* by the runtime)
    into a single dict under :data:`TELEMETRY_SCHEMA_VERSION`, and
    renders the registry — plus derived uptime / req/s gauges — as one
    Prometheus-style text page.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.event_log = (
            event_log if event_log is not None else EventLog(clock=clock)
        )
        self._clock = clock
        self._started = clock()
        self._providers: dict[str, Callable[[], Any]] = {}
        self._served_total: Callable[[], float] | None = None
        self._health_provider: Callable[[], dict] | None = None

    def add_provider(self, name: str, provider: Callable[[], Any]) -> None:
        """Register one legacy ``stats()`` callable under a snapshot key."""
        self._providers[name] = provider

    def set_health(self, provider: Callable[[], dict]) -> None:
        """The ``runtime.health()`` dict provider: fills the snapshot's
        ``health`` section and refreshes the health/burn gauges before
        every :meth:`to_text` render."""
        self._health_provider = provider

    def set_served_total(self, served_total: Callable[[], float]) -> None:
        """The running served-request count req/s is derived from."""
        self._served_total = served_total

    @property
    def uptime(self) -> float:
        return self._clock() - self._started

    def requests_per_second(self) -> float:
        if self._served_total is None:
            return 0.0
        uptime = self.uptime
        if uptime <= 0:
            return 0.0
        return float(self._served_total()) / uptime

    def snapshot(self) -> dict:
        """The one merged, versioned view of the runtime right now."""
        out: dict[str, Any] = {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "meta": telemetry_meta(),
            "uptime_s": self.uptime,
            "requests_per_second": self.requests_per_second(),
            "metrics": self.registry.snapshot(),
            "events": self.event_log.snapshot(),
            "event_log": self.event_log.stats(),
        }
        for name, provider in self._providers.items():
            out[name] = provider()
        if self._health_provider is not None:
            out["health"] = self._health_provider()
        return out

    def to_text(self) -> str:
        """Prometheus exposition: every registered family plus the
        derived ``serving_uptime_seconds`` / ``serving_requests_per_second``
        (and, when a health provider is wired, a
        ``serving_health_info{status=...}`` marker — evaluating health
        first also refreshes the registry's status/burn gauges)."""
        health = (
            self._health_provider() if self._health_provider is not None else None
        )
        lines = [
            "# TYPE serving_uptime_seconds gauge",
            f"serving_uptime_seconds {self.uptime!r}",
            "# TYPE serving_requests_per_second gauge",
            f"serving_requests_per_second {self.requests_per_second()!r}",
        ]
        if health is not None:
            lines.extend(
                [
                    "# TYPE serving_health_info gauge",
                    f'serving_health_info{{status="{health["status"]}"}} 1',
                ]
            )
        return self.registry.to_text() + "\n".join(lines) + "\n"


class MetricsReporter:
    """Periodic snapshot emitter over one :class:`RuntimeTelemetry`.

    ``workers=1`` (default) runs a daemon thread that emits every
    ``interval`` wall seconds; ``workers=0`` is the deterministic mode:
    nothing runs until :meth:`tick` is called, which emits exactly when
    the *injected* clock says an interval has elapsed — the same
    manual-clock discipline as ``MicroBatcher(workers=0)``.  Emitted
    snapshots go to the ``emit`` callback (when given) and are retained
    in ``reports`` (a bounded deque) either way.

    A sink (``emit`` callback) that raises never kills the reporter:
    the exception is swallowed and counted in ``reporter_errors_total``
    on the telemetry registry, and the snapshot still lands in
    ``reports`` — a flaky exporter degrades shipping, not observing.
    The interval thread additionally survives a *provider* that raises
    mid-snapshot (counted the same way); in manual :meth:`tick` mode
    provider errors propagate to the driving test instead.
    """

    def __init__(
        self,
        telemetry: RuntimeTelemetry,
        interval: float = 10.0,
        workers: int = 1,
        clock: Callable[[], float] | None = None,
        emit: Callable[[dict], None] | None = None,
        keep: int = 16,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if workers not in (0, 1):
            raise ValueError(f"workers must be 0 or 1, got {workers}")
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self.telemetry = telemetry
        self.interval = float(interval)
        self._clock = clock if clock is not None else telemetry._clock
        self._emit = emit
        self.reports: deque[dict] = deque(maxlen=keep)
        self._errors = telemetry.registry.counter(
            "reporter_errors_total",
            "snapshot emissions that raised (sink or provider) and were swallowed",
        )
        self._last = self._clock()
        self._event_cursor = 0
        self._closed = threading.Event()
        self._thread: threading.Thread | None = None
        if workers:
            self._thread = threading.Thread(
                target=self._loop, name="metrics-reporter", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        while not self._closed.wait(self.interval):
            try:
                self.emit_now()
            except Exception:
                # A provider raising mid-snapshot must not kill the
                # interval thread; sink errors are already absorbed
                # (and counted) inside emit_now.
                self._errors.inc()

    def tick(self) -> dict | None:
        """Manual mode: emit if an interval elapsed on the injected
        clock; returns the snapshot emitted, else ``None``."""
        if self._clock() - self._last >= self.interval:
            return self.emit_now()
        return None

    def emit_now(self) -> dict:
        snapshot = self.telemetry.snapshot()
        # Incremental tail: only events this reporter has not emitted
        # before (the seq cursor survives ring-buffer overwrites — what
        # was overwritten unseen shows up in event_log stats' dropped).
        new_events = self.telemetry.event_log.snapshot(
            since_seq=self._event_cursor
        )
        if new_events:
            self._event_cursor = new_events[-1]["seq"]
        snapshot["new_events"] = new_events
        self.reports.append(snapshot)
        self._last = self._clock()
        if self._emit is not None:
            try:
                self._emit(snapshot)
            except Exception:
                # Poison sink: swallow and count — the retained report
                # and the next interval are unaffected.
                self._errors.inc()
        return snapshot

    def close(self) -> None:
        self._closed.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "MetricsReporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Structured stdlib-logging bridge over the event log
# ----------------------------------------------------------------------
#: event kind → stdlib logging level for LoggingBridge replays
_EVENT_LOG_LEVELS = {
    "degraded": logging.WARNING,
    "shed": logging.WARNING,
    "deadline_exceeded": logging.WARNING,
    "breaker": logging.WARNING,
    "publish": logging.INFO,
    "publish_retry": logging.WARNING,
    "canary": logging.INFO,
    "canary_skipped": logging.INFO,
    "canary_regression": logging.ERROR,
    "drift": logging.WARNING,
    "slo_burn": logging.ERROR,
    "slo_recovered": logging.INFO,
}


class LoggingBridge:
    """Replays :class:`EventLog` entries as structured stdlib records.

    Opt-in (the serving stack itself never touches ``logging`` — hot
    paths must not pay handler locks): call :meth:`pump` whenever log
    shipping should catch up — from a :class:`MetricsReporter` emit
    callback, a request hook, or a test.  The ``since_seq`` cursor
    makes pumping incremental and loss-aware: each event is emitted
    exactly once, and events overwritten in the ring buffer before a
    pump surface in the event log's ``dropped`` stat, never as silent
    gaps.

    Each record carries the event's fields as ``extra`` attributes
    (prefixed ``serving_`` to dodge :class:`logging.LogRecord`'s
    reserved names) plus the correlation fields formatters key on:
    ``serving_event`` (the kind), ``serving_seq``, ``serving_time``
    (injected-clock timestamp) and — when the event names one —
    ``serving_version`` / ``serving_trace``.
    """

    def __init__(
        self,
        event_log: EventLog,
        logger: logging.Logger,
        level_map: dict[str, int] | None = None,
        default_level: int = logging.INFO,
    ) -> None:
        self.event_log = event_log
        self.logger = logger
        self._levels = dict(_EVENT_LOG_LEVELS)
        if level_map:
            self._levels.update(level_map)
        self._default_level = int(default_level)
        self._cursor = 0
        self._lock = threading.Lock()

    def pump(self) -> int:
        """Emit every event recorded since the last pump; returns how
        many records were emitted."""
        with self._lock:
            events = self.event_log.snapshot(since_seq=self._cursor)
            if events:
                self._cursor = events[-1]["seq"]
        for event in events:
            kind = event["kind"]
            extra = {
                f"serving_{name}": value
                for name, value in event.items()
                if name != "kind"
            }
            extra["serving_event"] = kind
            detail = ", ".join(
                f"{name}={event[name]!r}"
                for name in sorted(event)
                if name not in ("kind", "seq", "time")
            )
            self.logger.log(
                self._levels.get(kind, self._default_level),
                "serving event %s%s",
                kind,
                f" ({detail})" if detail else "",
                extra=extra,
            )
        return len(events)


def attach_logging(
    runtime,
    logger: logging.Logger | str | None = None,
    level_map: dict[str, int] | None = None,
) -> LoggingBridge:
    """Wire a :class:`LoggingBridge` onto ``runtime``'s event log.

    ``logger`` accepts a :class:`logging.Logger`, a logger name, or
    ``None`` for the ``"repro.serving"`` logger.  Returns the bridge;
    drive it with ``bridge.pump()`` (e.g. as a ``MetricsReporter`` emit
    callback: ``MetricsReporter(..., emit=lambda _s: bridge.pump())``).
    """
    if logger is None or isinstance(logger, str):
        logger = logging.getLogger(logger or "repro.serving")
    return LoggingBridge(
        runtime.telemetry().event_log, logger, level_map=level_map
    )
