"""Performance introspection over the serving stack (PR 10).

Three answers the observability layers below (PR 8 stage spans, PR 9
health verdicts) cannot give:

* **Where do the milliseconds go, inside a stage?**  The continuous
  sampling profiler (:class:`~repro.utils.profiling.SamplingProfiler`
  at ``ServingConfig.profile_hz``) attributes ``sys._current_frames()``
  samples to the active stage span via a
  :class:`~repro.utils.profiling.StageRegistry` the
  ``StageRecorder``/``stage_span`` machinery keeps updated — so
  "selection is 76 ms" decomposes into the actual numpy callees,
  exportable as collapsed-stack text.
* **What is the memory actually holding?**  :func:`collect_footprint`
  walks the live snapshot generations (factors, Gram, dual spectra,
  outer-product tables, retrieval-index extensions), the funnel cache
  and the bridge LRU — nbytes via numpy, per version and per structure
  — plus RSS sampling, so a publish-driven leak (an old version pinned
  by in-flight requests) is one ``telemetry()`` read away.
* **How much headroom is left?**  :class:`CapacityModel` fuses the
  resilient layer's per-batch timings (the same window that feeds the
  EWMA ``ModeCostModel`` and the ``serving_stage_seconds`` histograms)
  with the observed batch-size distribution into a saturation estimate:
  engine batch cost is modeled as ``fixed + per_request × B`` (the
  dual-path structure — one matmul + one stacked ``eigh`` amortize over
  the batch), so max sustainable req/s at the current mix falls out of
  the fit.  ``runtime.headroom()`` reports utilization and predicted
  saturation; the profiling benchmark validates the estimate within
  ±30% of the measured closed-loop knee.

``profile_hz=0`` (default) builds none of this into the serving path —
bit-identical to the uninstrumented stack, seeded samples included,
parity-pinned like ``trace_rate`` / ``audit_rate``.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field

import numpy as np

from ..utils.profiling import (
    SamplingProfiler,
    StackProfile,
    StageRegistry,
    current_rss_bytes,
    peak_rss_bytes,
)

__all__ = [
    "StageRegistry",
    "StackProfile",
    "SamplingProfiler",
    "FootprintReport",
    "collect_footprint",
    "snapshot_footprint",
    "nbytes_of",
    "CapacityModel",
    "HeadroomReport",
]


# ----------------------------------------------------------------------
# Memory & footprint accounting
# ----------------------------------------------------------------------
def nbytes_of(obj, _depth: int = 4, _seen: set | None = None) -> int:
    """Best-effort deep byte count of ``obj``'s array payloads.

    ndarrays count their buffer (``nbytes``); containers and plain
    object ``__dict__``s recurse a few levels with cycle protection.
    Scalars/strings count ``sys.getsizeof``.  This is accounting, not
    allocation truth — shared buffers (views) count once per distinct
    base array, and exotic objects are skipped rather than guessed.
    """
    if _seen is None:
        _seen = set()
    marker = id(obj)
    if marker in _seen:
        return 0
    if isinstance(obj, np.ndarray):
        # Dedup on the owning buffer: a view and its base (or two views
        # of one base) count once.  The array's own id must not poison
        # the check — for a base array they are the same object.
        base = obj.base if obj.base is not None else obj
        if id(base) in _seen:
            return 0
        _seen.add(id(base))
        return int(base.nbytes)
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return sys.getsizeof(obj)
    if _depth <= 0:
        return 0
    _seen.add(marker)
    if isinstance(obj, dict):
        return sum(
            nbytes_of(key, _depth - 1, _seen) + nbytes_of(value, _depth - 1, _seen)
            for key, value in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(nbytes_of(item, _depth - 1, _seen) for item in obj)
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return sum(nbytes_of(value, _depth - 1, _seen) for value in attrs.values())
    return 0


def _monolithic_footprint(snap) -> dict[str, int]:
    """Per-structure bytes of one :class:`CatalogSnapshot` (built lazies
    only — an unbuilt Gram costs nothing and reports nothing)."""
    out = {"factors": int(snap.factors.nbytes)}
    gram = snap.__dict__.get("_gram")
    if gram is not None:
        out["gram"] = int(gram.nbytes)
    spectrum = snap.__dict__.get("_spectrum")
    if spectrum is not None:
        out["dual_spectrum"] = int(spectrum[0].nbytes + spectrum[1].nbytes)
    table = snap.__dict__.get("_gram_products")
    if table is not None:
        out["gram_products"] = int(table.nbytes)
    extensions = snap.__dict__.get("_extensions")
    if extensions:
        out["extensions"] = sum(
            nbytes_of(value) for value in extensions.values()
        )
    return out


def snapshot_footprint(snap) -> dict[str, int]:
    """Per-structure byte accounting for either snapshot flavor.

    A :class:`~repro.serving.sharding.ShardedSnapshot` aggregates its
    shards' structures (each shard is a CatalogSnapshot) plus its own
    lazily-stacked concat view and extensions.
    """
    shards = getattr(snap, "shards", None)
    if shards is None:
        return _monolithic_footprint(snap)
    out: dict[str, int] = {}
    for shard in shards:
        for name, nbytes in _monolithic_footprint(shard).items():
            out[name] = out.get(name, 0) + nbytes
    concat = snap.__dict__.get("_factors")
    if concat is not None:
        out["concat_factors"] = int(concat.nbytes)
    extensions = snap.__dict__.get("_extensions")
    if extensions:
        out["extensions"] = out.get("extensions", 0) + sum(
            nbytes_of(value) for value in extensions.values()
        )
    return out


@dataclass
class FootprintReport:
    """One walk over everything the serving stack is holding alive.

    ``versions`` maps catalog version → per-structure bytes for every
    generation the catalog retains (published + displaced back buffer);
    a version that should have been reclaimed showing up here after a
    publish is the leak signature this report exists to expose.
    """

    versions: dict[int, dict[str, int]] = field(default_factory=dict)
    caches: dict[str, dict] = field(default_factory=dict)
    rss_bytes: int | None = None
    peak_rss_bytes: int | None = None

    @property
    def total_tracked_bytes(self) -> int:
        total = sum(
            sum(structures.values()) for structures in self.versions.values()
        )
        total += sum(
            int(cache.get("bytes", 0)) for cache in self.caches.values()
        )
        return total

    def to_dict(self) -> dict:
        return {
            "versions": {
                str(version): dict(structures)
                for version, structures in self.versions.items()
            },
            "caches": {name: dict(stats) for name, stats in self.caches.items()},
            "total_tracked_bytes": self.total_tracked_bytes,
            "rss_bytes": self.rss_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


def collect_footprint(catalog, server=None) -> FootprintReport:
    """Walk the live generations of ``catalog`` (+ the server's funnel
    cache, when present) into one :class:`FootprintReport`."""
    report = FootprintReport(
        rss_bytes=current_rss_bytes(), peak_rss_bytes=peak_rss_bytes()
    )
    generations = [catalog.snapshot()]
    previous = getattr(catalog, "_previous", None)
    if previous is not None:
        generations.append(previous)
    for snap in generations:
        report.versions[int(snap.version)] = snapshot_footprint(snap)
    cache = getattr(server, "funnel_cache", None) if server is not None else None
    if cache is not None and hasattr(cache, "footprint"):
        report.caches["funnel_cache"] = cache.footprint()
    return report


# ----------------------------------------------------------------------
# Capacity headroom model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeadroomReport:
    """``runtime.headroom()``'s answer: how close is saturation.

    ``utilization`` is engine-busy fraction (batch wall seconds over
    worker-seconds of uptime); ``saturation_req_per_s`` the predicted
    closed-loop knee at the current request mix and batch amortization;
    ``headroom_fraction`` what is left before it (0 = at the knee).
    """

    utilization: float
    observed_req_per_s: float
    saturation_req_per_s: float
    headroom_fraction: float
    busy_seconds: float
    uptime_s: float
    workers: int
    fixed_s: float
    per_request_s: float
    mean_batch: float
    request_weighted_batch: float
    batch_size_counts: dict[int, int]
    per_mode: dict[str, dict]

    def to_dict(self) -> dict:
        return {
            "utilization": self.utilization,
            "observed_req_per_s": self.observed_req_per_s,
            "saturation_req_per_s": self.saturation_req_per_s,
            "headroom_fraction": self.headroom_fraction,
            "busy_seconds": self.busy_seconds,
            "uptime_s": self.uptime_s,
            "workers": self.workers,
            "batch_cost_fit": {
                "fixed_s": self.fixed_s,
                "per_request_s": self.per_request_s,
            },
            "mean_batch": self.mean_batch,
            "request_weighted_batch": self.request_weighted_batch,
            "batch_size_counts": {
                str(size): count
                for size, count in sorted(self.batch_size_counts.items())
            },
            "per_mode": {mode: dict(row) for mode, row in self.per_mode.items()},
        }


class CapacityModel:
    """Saturation estimate from observed engine-batch (size, seconds).

    The dual serving path makes batch cost affine in the batch size:
    one ``(B, M) @ (M, r(r+1)/2)`` build + one stacked ``eigh`` grow
    per-request, dispatch and Python fan-out stay fixed — so the model
    fits ``T(B) = fixed + per_request · B`` by least squares over every
    observed engine batch and predicts the closed-loop knee as::

        saturation = workers · B* / T(B*)

    with ``B*`` the *request-weighted* observed batch size (the batch a
    random request actually rides in — under saturation that converges
    to ``max_batch``, which is exactly when the prediction matters).
    Degenerate histories (one batch size only) fall back to the
    observed mean rate.  Thread-safe; fed by the resilient layer from
    the same timed window that feeds the EWMA :class:`ModeCostModel`.
    """

    def __init__(self, workers: int = 1, max_batch: int = 32) -> None:
        self.workers = max(1, int(workers))
        self.max_batch = int(max_batch)
        self._lock = threading.Lock()
        self._n = 0
        self._sum_b = 0.0
        self._sum_t = 0.0
        self._sum_bb = 0.0
        self._sum_bt = 0.0
        self._busy = 0.0
        self._requests = 0
        self._batch_sizes: dict[int, int] = {}
        self._mode_requests: dict[str, int] = {}

    def observe(
        self, batch_size: int, seconds: float, modes: dict[str, int] | None = None
    ) -> None:
        if batch_size < 1 or seconds < 0:
            return
        b = float(batch_size)
        with self._lock:
            self._n += 1
            self._sum_b += b
            self._sum_t += seconds
            self._sum_bb += b * b
            self._sum_bt += b * seconds
            self._busy += seconds
            self._requests += batch_size
            self._batch_sizes[int(batch_size)] = (
                self._batch_sizes.get(int(batch_size), 0) + 1
            )
            if modes:
                for mode, count in modes.items():
                    self._mode_requests[mode] = (
                        self._mode_requests.get(mode, 0) + int(count)
                    )

    # ------------------------------------------------------------------
    def _fit_locked(self) -> tuple[float, float]:
        """``(fixed_s, per_request_s)`` of the affine batch-cost fit."""
        if self._n == 0 or self._sum_b <= 0:
            return 0.0, 0.0
        mean_rate = self._sum_t / self._sum_b
        if self._n < 2:
            return 0.0, mean_rate
        var = self._sum_bb - self._sum_b * self._sum_b / self._n
        if var <= 1e-12:
            return 0.0, mean_rate
        cov = self._sum_bt - self._sum_b * self._sum_t / self._n
        slope = cov / var
        intercept = (self._sum_t - slope * self._sum_b) / self._n
        if slope <= 0 or intercept < 0:
            # Noise dominated the fit; the mean per-request rate is the
            # honest degenerate answer (fixed cost folded into it).
            return 0.0, mean_rate
        return intercept, slope

    def fit(self) -> tuple[float, float]:
        with self._lock:
            return self._fit_locked()

    def saturation_req_per_s(self, batch_size: float | None = None) -> float:
        """Max sustainable req/s at batch size ``B`` (default: the
        request-weighted observed batch size)."""
        with self._lock:
            fixed, per_request = self._fit_locked()
            if batch_size is None:
                batch_size = (
                    self._sum_bb / self._sum_b if self._sum_b > 0 else 0.0
                )
        if batch_size <= 0:
            return 0.0
        denom = fixed + per_request * batch_size
        if denom <= 0:
            return 0.0
        return self.workers * batch_size / denom

    def headroom(
        self,
        uptime_s: float,
        observed_req_per_s: float,
        mode_costs: dict[str, float] | None = None,
    ) -> HeadroomReport:
        """Assemble the full report (see :class:`HeadroomReport`)."""
        with self._lock:
            fixed, per_request = self._fit_locked()
            busy = self._busy
            n = self._n
            sum_b = self._sum_b
            sum_bb = self._sum_bb
            batch_sizes = dict(self._batch_sizes)
            mode_requests = dict(self._mode_requests)
        mean_batch = sum_b / n if n else 0.0
        weighted_batch = sum_bb / sum_b if sum_b > 0 else 0.0
        utilization = (
            busy / (uptime_s * self.workers) if uptime_s > 0 else 0.0
        )
        saturation = self.saturation_req_per_s(weighted_batch or None)
        headroom = (
            max(0.0, 1.0 - observed_req_per_s / saturation)
            if saturation > 0
            else 0.0
        )
        total_requests = sum(mode_requests.values())
        per_mode: dict[str, dict] = {}
        for mode, count in sorted(mode_requests.items()):
            row: dict = {
                "requests": count,
                "share": count / total_requests if total_requests else 0.0,
            }
            cost = (mode_costs or {}).get(mode)
            if cost is not None and cost > 0:
                # The EWMA cost is per request *at the observed batch
                # amortization*, so workers/cost is that mode's pure-mix
                # sustainable rate.
                row["cost_s"] = cost
                row["saturation_req_per_s"] = self.workers / cost
            per_mode[mode] = row
        return HeadroomReport(
            utilization=utilization,
            observed_req_per_s=observed_req_per_s,
            saturation_req_per_s=saturation,
            headroom_fraction=headroom,
            busy_seconds=busy,
            uptime_s=uptime_s,
            workers=self.workers,
            fixed_s=fixed,
            per_request_s=per_request,
            mean_batch=mean_batch,
            request_weighted_batch=weighted_batch,
            batch_size_counts=batch_sizes,
            per_mode=per_mode,
        )

    def stats(self) -> dict:
        with self._lock:
            fixed, per_request = self._fit_locked()
            return {
                "batches": self._n,
                "requests": self._requests,
                "busy_seconds": self._busy,
                "fixed_s": fixed,
                "per_request_s": per_request,
            }
