"""Overload-safe serving: the traffic-safety layer above the engine.

The serving math below this module is exact and fast — but a front door
for live traffic needs three guarantees the engine alone cannot give:

* **bounded queues** — :class:`~repro.serving.scheduler.MicroBatcher`
  admission is capped (``ServingConfig.queue_cap``) with a configurable
  overload policy: ``"reject"`` fails the submit with a structured
  :class:`OverloadError`, ``"degrade"`` admits the request but walks it
  down the degradation ladder so the queue drains faster than it grows;
* **bounded latency** — every :class:`~repro.serving.server.Request`
  may carry a ``deadline`` (absolute injected-clock time).  A request
  whose remaining budget cannot cover its admitted mode (per the
  :class:`ModeCostModel`'s running estimates) is degraded rather than
  served late; a request whose deadline has already passed is failed
  with :class:`DeadlineExceeded` instead of wasting kernel work;
* **bounded blast radius** — a :class:`BreakerSource` wraps an
  approximate retrieval source (quantile funnel, IVF) in a
  :class:`CircuitBreaker`: consecutive failures or deadline blowouts
  trip it and route candidate generation to the exact oracle
  (:class:`~repro.retrieval.exact.ExactTopK`) until a half-open probe
  succeeds, so one sick index never takes the request path down.

Degradation ladder
------------------
``DEGRADATION_LADDER = ("sample", "map", "topk-rerank", "quality-topk")``
orders the serving modes by cost.  Queue pressure and deadline pressure
both walk a request *rightward* (never left); the terminal rung,
``quality-topk``, is served inline by this module — plain quality top-k
with pins leading and exclusions/history respected, no kernel work at
all.  Every degraded response is stamped (``Response.degraded=True``,
``Response.served_mode``) so callers can always distinguish an exact
slate from a shed one.  Requests carrying an explicit candidate slice
skip the ``topk-rerank`` rung (the engine rejects explicit-slice
rerank) and fall straight to ``quality-topk``.

Error taxonomy
--------------
:class:`ServingError` (a :class:`RuntimeError`) roots the structured
traffic-path errors: :class:`OverloadError` (admission shed),
:class:`DeadlineExceeded`, :class:`SourceUnavailable` (retrieval dead
even through its fallback), :class:`ShutdownError` (submitted to / left
queued in a closing batcher) and :class:`TransientError` (retryable,
e.g. an injected publish race).  All carry optional ``index`` /
``request`` context.

Fault injection
---------------
:class:`FaultPlan` is the deterministic chaos harness: slow shards,
failing or slow sources, exception-throwing or slow serves, and
transient publish failures — all counted down deterministically (or
drawn from a seeded RNG when a probability is given) and delayed through
the *injected* clock (a :class:`~repro.utils.timing.ManualClock` is
advanced; a real clock sleeps).  Attach it via
``ServingConfig(fault_plan=...)`` and the runtime wires every hook;
``tests/test_resilience.py`` and ``benchmarks/bench_overload.py`` are
the consumers.

The no-fault, no-pressure path is bit-identical to the stack without
this module: with no deadline, no queue pressure and no plan, the
:class:`ResilientServer` hands the engine the *same request objects* in
one batch and returns its responses unmodified (seeded samples
included) — pinned by the parity tests.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import replace as dataclass_replace
from typing import Callable, Sequence

import numpy as np

from ..retrieval import CandidateSource, ExactTopK
from ..utils.metrics import Counter, MetricsRegistry
from ..utils.topk import top_k_indices
from .observability import EventLog, StageRecorder
from .server import Request, Response, effective_request_quality

__all__ = [
    "ServingError",
    "OverloadError",
    "DeadlineExceeded",
    "SourceUnavailable",
    "ShutdownError",
    "TransientError",
    "DEGRADATION_LADDER",
    "QUALITY_TOPK",
    "AdmittedRequest",
    "ModeCostModel",
    "ResilientServer",
    "CircuitBreaker",
    "BreakerSource",
    "FaultPlan",
    "degrade_mode",
]


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class ServingError(RuntimeError):
    """Root of the structured serving errors (traffic paths only).

    Subclasses :class:`RuntimeError` so pre-taxonomy callers that catch
    broadly keep working; ``index`` / ``request`` attach the batch
    position and the offending request when known.
    """

    def __init__(self, message: str, index: int | None = None, request=None) -> None:
        super().__init__(message)
        self.index = index
        self.request = request


class OverloadError(ServingError):
    """Admission shed: the queue is at its cap and the policy is reject."""


class DeadlineExceeded(ServingError):
    """The request's deadline passed before (or while) it could be served."""


class SourceUnavailable(ServingError):
    """A candidate source failed, and so did its fallback (or none exists)."""


class ShutdownError(ServingError):
    """Submitted to a closed batcher, or left queued when one closed."""


class TransientError(ServingError):
    """A retryable infrastructure fault (e.g. a publish race); the
    runtime's retry-with-backoff loop absorbs these up to its budget."""


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
#: serving modes ordered by cost, cheapest last; pressure walks rightward
DEGRADATION_LADDER = ("sample", "map", "topk-rerank", "quality-topk")

#: the terminal rung: plain quality top-k, served inline with no kernel
QUALITY_TOPK = "quality-topk"


def degrade_mode(request: Request, rungs: int) -> str:
    """The mode ``request`` is served in after walking ``rungs`` rungs.

    Explicitly-sliced requests skip ``topk-rerank`` (the engine rejects
    explicit-slice rerank) and land on ``quality-topk`` directly.
    """
    if rungs <= 0:
        return request.mode
    position = DEGRADATION_LADDER.index(request.mode)
    target = DEGRADATION_LADDER[min(position + rungs, len(DEGRADATION_LADDER) - 1)]
    if target == "topk-rerank" and request.candidates is not None:
        return QUALITY_TOPK
    return target


def _next_rung(request: Request, mode: str) -> str:
    """One rung down from ``mode`` for this request (ladder skip rules)."""
    position = DEGRADATION_LADDER.index(mode)
    target = DEGRADATION_LADDER[min(position + 1, len(DEGRADATION_LADDER) - 1)]
    if target == "topk-rerank" and request.candidates is not None:
        return QUALITY_TOPK
    return target


class AdmittedRequest:
    """The envelope the runtime queues: the request plus the queue
    pressure (ladder rungs) it accumulated at admission, and — when the
    request was sampled for tracing — its in-flight
    :class:`~repro.serving.observability.Trace`."""

    __slots__ = ("request", "pressure", "trace")

    def __init__(self, request: Request, pressure: int = 0, trace=None) -> None:
        self.request = request
        self.pressure = int(pressure)
        self.trace = trace


class ModeCostModel:
    """EWMA per-request service-time estimates, one per served mode.

    Fed by the :class:`ResilientServer` from the injected clock around
    each engine call; read by the deadline-budget check (a request whose
    remaining budget is below its mode's estimate degrades further).
    Unknown modes estimate ``0.0``, so a cold model never degrades —
    which is exactly what keeps the no-pressure path bit-identical under
    a manual clock that only faults advance.
    """

    def __init__(self, decay: float = 0.3) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = float(decay)
        self._lock = threading.Lock()
        self._costs: dict[str, float] = {}

    def observe(self, mode: str, seconds: float) -> None:
        if seconds < 0:
            return
        with self._lock:
            previous = self._costs.get(mode)
            if previous is None:
                self._costs[mode] = float(seconds)
            else:
                self._costs[mode] = (
                    self.decay * float(seconds) + (1.0 - self.decay) * previous
                )

    def estimate(self, mode: str) -> float:
        with self._lock:
            return self._costs.get(mode, 0.0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._costs)


# ----------------------------------------------------------------------
# Inline quality top-k (the terminal rung)
# ----------------------------------------------------------------------
def _quality_topk_response(request: Request, index: int, snap) -> Response:
    """Serve one request as plain quality top-k: pins lead (request
    order), exclusions and history stay zeroed, positive-quality items
    fill the rest by descending quality.  Best effort — a short list is
    returned rather than an error when positive quality runs out, this
    being the shed path."""
    request.validate(snap.num_items, index)
    sliced = request.candidates is not None
    quality = effective_request_quality(
        request, index, snap.num_items, check_values=not sliced
    )
    if sliced:
        candidates = np.asarray(request.candidates, dtype=np.int64).reshape(-1)
        local = quality[candidates]
        if not np.all(np.isfinite(local)) or np.any(local < 0):
            raise ValueError(
                f"request {index}: quality must be finite and non-negative"
            )
    else:
        candidates = None
        local = quality
    items: list[int] = []
    if request.pins is not None:
        items = [int(pin) for pin in np.asarray(request.pins).reshape(-1)]
    taken = set(items)
    need = request.k - len(items)
    if need > 0:
        budget = min(local.shape[0], request.k + len(items))
        for position in top_k_indices(local, budget):
            if local[position] <= 0:
                break
            item = int(position if candidates is None else candidates[position])
            if item in taken:
                continue
            items.append(item)
            need -= 1
            if need == 0:
                break
    return Response(
        items=items,
        log_probability=None,
        mode=request.mode,
        k=request.k,
        version=snap.version,
        degraded=True,
        served_mode=QUALITY_TOPK,
    )


# ----------------------------------------------------------------------
# The resilient serving wrapper
# ----------------------------------------------------------------------
class ResilientServer:
    """Deadline budgets + degradation ladder around one engine.

    ``serve_admitted`` takes :class:`AdmittedRequest` envelopes and
    returns, position for position, either a stamped
    :class:`~repro.serving.server.Response` or a :class:`ServingError`
    *instance* (the batcher sets it on the matching future) — a shed
    request never poisons its batch neighbors.
    """

    def __init__(
        self,
        server,
        clock: Callable[[], float] | None = None,
        cost_model: ModeCostModel | None = None,
        fault_plan: "FaultPlan | None" = None,
        registry: MetricsRegistry | None = None,
        event_log: EventLog | None = None,
        stage_registry=None,
        capacity_model=None,
    ) -> None:
        self.server = server
        self._clock = clock if clock is not None else time.monotonic
        self.cost_model = cost_model if cost_model is not None else ModeCostModel()
        self.fault_plan = fault_plan
        # Performance introspection (PR 10), both optional: a
        # thread→stage registry makes every dispatched batch carry a
        # StageRecorder (so the sampling profiler can attribute stacks
        # even when no member is traced), and a CapacityModel receives
        # every engine batch's (size, seconds, mode mix) observation.
        self.stage_registry = stage_registry
        self.capacity_model = capacity_model
        metrics = registry if registry is not None else MetricsRegistry()
        self.registry = metrics
        self.event_log = (
            event_log if event_log is not None else EventLog(clock=self._clock)
        )
        # Engine-stage spans recorded for traced batches also feed the
        # aggregate per-stage latency histogram — one family labeled by
        # stage, the breakdown the telemetry page exposes.
        self._stage_seconds = metrics.histogram(
            "serving_stage_seconds",
            "per-stage time of traced batches (clock seconds)",
            labelnames=("stage",),
        )
        self._batch_seconds = metrics.histogram(
            "serving_engine_batch_seconds",
            "engine serve() wall time per batch (clock seconds)",
        )
        self._admitted = metrics.counter(
            "resilience_admitted_total", "requests entering the resilient layer"
        )
        self._degraded = metrics.counter(
            "resilience_degraded_total", "responses served below requested mode"
        )
        self._queue_degraded = metrics.counter(
            "resilience_queue_degraded_total", "requests degraded by queue pressure"
        )
        self._deadline_degraded = metrics.counter(
            "resilience_deadline_degraded_total",
            "requests degraded by deadline budget",
        )
        self._deadline_exceeded = metrics.counter(
            "resilience_deadline_exceeded_total",
            "requests failed with an expired deadline",
        )
        self._quality_topk = metrics.counter(
            "resilience_quality_topk_total",
            "requests shed to the terminal quality-topk rung",
        )
        # Version-labeled hot-path families (the unlabeled totals above
        # keep the legacy stats() shapes): publish canaries read
        # degradation rate and p99 service time per catalog version
        # straight off the registry.
        self._served_by_version = metrics.counter(
            "runtime_served_total",
            "responses served, labeled by catalog version",
            labelnames=("version",),
        )
        self._degraded_by_version = metrics.counter(
            "runtime_degraded_total",
            "degraded (incl. shed) responses, labeled by catalog version",
            labelnames=("version",),
        )
        self._failed_by_version = metrics.counter(
            "runtime_failed_total",
            "requests resolved with a serving error, labeled by catalog version",
            labelnames=("version",),
        )
        self._request_seconds_by_version = metrics.histogram(
            "runtime_request_seconds",
            "per-request engine service time, labeled by catalog version",
            labelnames=("version",),
        )
        # Stage recorders only help when the wrapped engine accepts a
        # ``stages=`` recorder; custom servers without the kwarg are
        # served exactly as before (checked once, not per batch).
        try:
            self._accepts_stages = (
                "stages" in inspect.signature(server.serve).parameters
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._accepts_stages = False

    def stats(self) -> dict:
        return {
            "admitted": int(self._admitted.value),
            "degraded": int(self._degraded.value),
            "queue_degraded": int(self._queue_degraded.value),
            "deadline_degraded": int(self._deadline_degraded.value),
            "deadline_exceeded": int(self._deadline_exceeded.value),
            "quality_topk_served": int(self._quality_topk.value),
            "mode_costs": self.cost_model.snapshot(),
        }

    # ------------------------------------------------------------------
    def serve_admitted(
        self, admitted: Sequence[AdmittedRequest], snapshot
    ) -> list:
        self._admitted.inc(len(admitted))
        now = self._clock()
        version_label = str(getattr(snapshot, "version", "none"))
        results: list = [None] * len(admitted)
        engine: list[tuple[int, AdmittedRequest, str]] = []
        shed: list[tuple[int, AdmittedRequest]] = []
        for position, item in enumerate(admitted):
            request = item.request
            trace = item.trace
            if trace is not None:
                # The queue span: submit time (trace start) to batch
                # pickup — the admission wait the scheduler histogram
                # also observes, now visible per traced request.
                trace.add_span("queue", trace.started, now)
            deadline = request.deadline
            if deadline is not None and now >= deadline:
                self._deadline_exceeded.inc()
                self._failed_by_version.labels(version=version_label).inc()
                self.event_log.record(
                    "deadline_exceeded",
                    index=position,
                    overrun_s=now - deadline,
                )
                if trace is not None:
                    trace.event("deadline_exceeded", overrun_s=now - deadline)
                    trace.annotate(outcome="deadline_exceeded")
                    trace.finish()
                results[position] = DeadlineExceeded(
                    f"request {position}: deadline passed "
                    f"{now - deadline:.6f}s before serving began",
                    index=position,
                    request=request,
                )
                continue
            mode = degrade_mode(request, item.pressure)
            if mode != request.mode:
                self._queue_degraded.inc()
                self.event_log.record(
                    "degraded",
                    reason="queue",
                    index=position,
                    from_mode=request.mode,
                    to_mode=mode,
                )
                if trace is not None:
                    trace.event(
                        "degraded",
                        reason="queue",
                        from_mode=request.mode,
                        to_mode=mode,
                    )
            if deadline is not None:
                remaining = deadline - now
                budget_mode = mode
                while (
                    mode != QUALITY_TOPK
                    and self.cost_model.estimate(mode) > remaining
                ):
                    mode = _next_rung(request, mode)
                if mode != budget_mode:
                    self._deadline_degraded.inc()
                    self.event_log.record(
                        "degraded",
                        reason="deadline",
                        index=position,
                        from_mode=budget_mode,
                        to_mode=mode,
                    )
                    if trace is not None:
                        trace.event(
                            "degraded",
                            reason="deadline",
                            from_mode=budget_mode,
                            to_mode=mode,
                        )
            if mode == QUALITY_TOPK:
                shed.append((position, item))
            else:
                engine.append((position, item, mode))
        if engine:
            # The parity contract lives here: with nothing degraded the
            # engine receives the original request objects, untouched
            # and in admission order, in a single serve call.
            requests = [
                item.request
                if mode == item.request.mode
                else dataclass_replace(item.request, mode=mode)
                for _, item, mode in engine
            ]
            # One recorder per dispatched batch, created only when a
            # traced member reaches the engine — stage spans are batch-
            # phase times, so every traced member carries the same ones.
            # A profiling runtime (stage_registry set) records every
            # batch: the profiler needs stage boundaries whether or not
            # anything is traced, and the recorder doubles as the
            # thread→stage publisher.
            recorder = None
            if self._accepts_stages and (
                self.stage_registry is not None
                or any(item.trace is not None for _, item, _ in engine)
            ):
                recorder = StageRecorder(
                    self._clock, registry=self.stage_registry
                )
            # The coarse "engine" window marker brackets the whole serve
            # call so every profiler sample during engine work carries at
            # least a stage; the engine's own stage spans nest inside it
            # (innermost wins at attribution time).
            if self.stage_registry is not None:
                self.stage_registry.push("engine")
            start = self._clock()
            try:
                if self.fault_plan is not None:
                    # Inside the timed window: injected serve delays feed
                    # the cost model exactly like real service time would.
                    self.fault_plan.serve_tick(len(requests))
                if recorder is not None:
                    responses = self.server.serve(
                        requests, snapshot=snapshot, stages=recorder
                    )
                else:
                    responses = self.server.serve(requests, snapshot=snapshot)
            finally:
                if self.stage_registry is not None:
                    self.stage_registry.pop()
            elapsed = self._clock() - start
            self._batch_seconds.observe(elapsed)
            if self.capacity_model is not None:
                mode_counts: dict[str, int] = {}
                for _, _, batch_mode in engine:
                    mode_counts[batch_mode] = mode_counts.get(batch_mode, 0) + 1
                self.capacity_model.observe(
                    len(requests), elapsed, mode_counts
                )
            if recorder is not None:
                for name, span_start, span_end, _ in recorder.spans:
                    self._stage_seconds.labels(stage=name).observe(
                        span_end - span_start
                    )
            engine_end = start + elapsed
            per_request = elapsed / len(requests) if requests else 0.0
            self._served_by_version.labels(version=version_label).inc(
                len(requests)
            )
            for (position, item, mode), response in zip(engine, responses):
                request = item.request
                self.cost_model.observe(mode, per_request)
                self._request_seconds_by_version.labels(
                    version=version_label
                ).observe(per_request)
                restamp: dict = {}
                if mode != request.mode:
                    self._degraded.inc()
                    self._degraded_by_version.labels(
                        version=version_label
                    ).inc()
                    restamp.update(
                        mode=request.mode, served_mode=mode, degraded=True
                    )
                trace = item.trace
                if trace is not None:
                    # Top-level coverage comes from three wall-to-wall
                    # spans — dispatch (admission bookkeeping), engine
                    # (the whole serve window), stamp (response fan-out
                    # up to this member) — with the recorder's stage
                    # spans nested inside ``engine`` so batch-phase
                    # detail never double-counts.
                    if start > now:
                        trace.add_span("dispatch", now, start)
                    trace.add_span("engine", start, engine_end)
                    if recorder is not None:
                        recorder.extend_trace(trace, nested=True)
                    trace.annotate(
                        served_mode=mode, degraded=mode != request.mode
                    )
                    stamp_end = self._clock()
                    if stamp_end > engine_end:
                        trace.add_span("stamp", engine_end, stamp_end)
                    trace.finish()
                    restamp["trace"] = trace
                results[position] = (
                    dataclass_replace(response, **restamp)
                    if restamp
                    else response
                )
        if shed:
            start = self._clock()
            for position, item in shed:
                request = item.request
                span_start = self._clock()
                if self.stage_registry is not None:
                    self.stage_registry.push("quality_topk")
                try:
                    response = _quality_topk_response(
                        request, position, snapshot
                    )
                finally:
                    if self.stage_registry is not None:
                        self.stage_registry.pop()
                span_end = self._clock()
                self._stage_seconds.labels(stage="quality_topk").observe(
                    span_end - span_start
                )
                self.event_log.record(
                    "shed", index=position, rung=QUALITY_TOPK
                )
                trace = item.trace
                if trace is not None:
                    # Shed members resolve with the rest of their batch:
                    # the engine serve and earlier shed neighbors ran
                    # first, and that wait is part of this request's
                    # latency — account it so coverage stays honest.
                    if span_start > now:
                        trace.add_span("batch_wait", now, span_start)
                    trace.add_span("quality_topk", span_start, span_end)
                    trace.event("shed", rung=QUALITY_TOPK)
                    trace.annotate(served_mode=QUALITY_TOPK, degraded=True)
                    trace.finish()
                    response = dataclass_replace(response, trace=trace)
                results[position] = response
            elapsed = self._clock() - start
            per_request = elapsed / len(shed)
            for _ in shed:
                self.cost_model.observe(QUALITY_TOPK, per_request)
                self._request_seconds_by_version.labels(
                    version=version_label
                ).observe(per_request)
            self._degraded.inc(len(shed))
            self._quality_topk.inc(len(shed))
            self._served_by_version.labels(version=version_label).inc(len(shed))
            self._degraded_by_version.labels(version=version_label).inc(
                len(shed)
            )
        return results


# ----------------------------------------------------------------------
# Circuit breaker around retrieval sources
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open → half-open failure gate (thread-safe).

    ``allow()`` answers "may the protected call run?": always in the
    closed state; in the open state only once the cooldown has elapsed,
    and then exactly one caller wins the half-open probe (concurrent
    callers keep falling back until the probe reports).  A probe success
    closes the breaker; a probe failure re-opens it for another
    cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be non-negative, got {cooldown}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._trips = 0
        # Optional ``listener(old_state, new_state)`` — the runtime hangs
        # its event log off this.  Transitions are captured inside the
        # lock but the listener fires outside it, so a listener that
        # reads breaker state back can never deadlock.
        self.listener: Callable[[str, str], None] | None = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def _notify(self, transition: tuple[str, str] | None) -> None:
        if transition is None:
            return
        listener = self.listener
        if listener is not None:
            listener(transition[0], transition[1])

    def allow(self) -> bool:
        transition = None
        with self._lock:
            if self._state == "closed":
                allowed = True
            elif self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = "half-open"
                    transition = ("open", "half-open")
                    allowed = True  # this caller is the probe
                else:
                    allowed = False
            else:
                allowed = False  # half-open: a probe is already in flight
        self._notify(transition)
        return allowed

    def record_success(self) -> None:
        with self._lock:
            previous = self._state
            self._state = "closed"
            self._failures = 0
        if previous != "closed":
            self._notify((previous, "closed"))

    def record_failure(self) -> None:
        transition = None
        with self._lock:
            if self._state == "half-open":
                self._state = "open"
                self._opened_at = self._clock()
                self._trips += 1
                transition = ("half-open", "open")
            else:
                self._failures += 1
                if (
                    self._state == "closed"
                    and self._failures >= self.failure_threshold
                ):
                    self._state = "open"
                    self._opened_at = self._clock()
                    self._trips += 1
                    transition = ("closed", "open")
        self._notify(transition)


class BreakerSource(CandidateSource):
    """A circuit breaker around one candidate source, exact fallback.

    While the breaker is closed, pools come from ``primary``; a raised
    exception — or a call slower than ``slow_threshold`` injected-clock
    seconds (a deadline blowout; the slow result is still *used*, it
    just counts against the breaker) — records a failure.  At
    ``failure_threshold`` consecutive failures the breaker opens and
    every batch routes to ``fallback`` (default
    :class:`~repro.retrieval.exact.ExactTopK` — the oracle, so recall is
    unaffected while tripped) until the cooldown elapses and a half-open
    probe of the primary succeeds.  Fallback-served batches count as
    ``fallback_rows`` in the standard source stats; if the fallback
    itself fails, :class:`SourceUnavailable` is raised.
    """

    name = "breaker"

    def __init__(
        self,
        primary: CandidateSource,
        fallback: CandidateSource | None = None,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        slow_threshold: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        super().__init__()
        self.primary = primary
        self.fallback = fallback if fallback is not None else ExactTopK()
        self.slow_threshold = slow_threshold
        self._clock = clock if clock is not None else time.monotonic
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold, cooldown=cooldown, clock=self._clock
        )
        self._primary_failures = Counter(
            "breaker_primary_failures_total", "primary source exceptions"
        )
        self._slow_calls = Counter(
            "breaker_slow_calls_total", "primary calls over slow_threshold"
        )
        self._fallback_batches = Counter(
            "breaker_fallback_batches_total", "batches served by the fallback"
        )

    def _serve_fallback(
        self, quality: np.ndarray, width: int, snapshot, cause: Exception | None
    ) -> tuple[np.ndarray, int]:
        self._fallback_batches.inc()
        try:
            out = self.fallback.pools(quality, width, snapshot)
        except Exception as error:
            raise SourceUnavailable(
                f"candidate source '{self.primary.name}' is unavailable and "
                f"its fallback '{self.fallback.name}' failed: {error}"
            ) from (cause if cause is not None else error)
        return out, int(quality.shape[0])

    def _pools(
        self, quality: np.ndarray, width: int, snapshot
    ) -> tuple[np.ndarray, int]:
        if not self.breaker.allow():
            return self._serve_fallback(quality, width, snapshot, None)
        start = self._clock()
        try:
            out = self.primary.pools(quality, width, snapshot)
        except Exception as error:
            self.breaker.record_failure()
            self._primary_failures.inc()
            return self._serve_fallback(quality, width, snapshot, error)
        elapsed = self._clock() - start
        if self.slow_threshold is not None and elapsed > self.slow_threshold:
            # A deadline blowout is a failure signal even though the
            # (late) pools are still returned to this caller.
            self.breaker.record_failure()
            self._slow_calls.inc()
        else:
            self.breaker.record_success()
        return out, 0

    def stats(self) -> dict:
        out = super().stats()
        out["breaker"] = {
            "state": self.breaker.state,
            "trips": self.breaker.trips,
            "primary_failures": int(self._primary_failures.value),
            "slow_calls": int(self._slow_calls.value),
            "fallback_batches": int(self._fallback_batches.value),
        }
        out["primary"] = self.primary.stats()
        return out

    def reset_stats(self) -> None:
        """Zero the wrapper's counters *and* the primary's (uniform
        contract, see :meth:`CandidateSource.reset_stats`); breaker gate
        state — open/closed, trip count — is state, not a counter, and
        survives."""
        super().reset_stats()
        self._primary_failures.reset()
        self._slow_calls.reset()
        self._fallback_batches.reset()
        self.primary.reset_stats()


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------
class _Fault:
    """One armed fault: fires ``times`` more times (None = always), or
    with ``probability`` per tick from the plan's seeded RNG."""

    __slots__ = ("seconds", "times", "probability")

    def __init__(
        self,
        seconds: float = 0.0,
        times: int | None = 1,
        probability: float | None = None,
    ) -> None:
        self.seconds = float(seconds)
        self.times = times
        self.probability = probability

    def fire(self, rng: np.random.Generator) -> bool:
        if self.times is not None and self.times <= 0:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        if self.times is not None:
            self.times -= 1
        return True


class FaultPlan:
    """Deterministic chaos: armed faults consumed by the serving stack.

    All faults count down deterministically (``times``) or draw from one
    seeded RNG (``probability``), and every delay goes through the
    injected clock — a :class:`~repro.utils.timing.ManualClock` is
    *advanced* (no wall time passes), a real clock sleeps — so a chaos
    test replays exactly.  Hand the plan to the runtime via
    ``ServingConfig(fault_plan=...)``; it wires the serve and publish
    hooks itself and calls :meth:`attach` on its candidate source.
    """

    def __init__(self, clock: Callable[[], float] | None = None, seed: int = 0) -> None:
        self._clock = clock
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._source_failures: list[_Fault] = []
        self._source_delays: list[_Fault] = []
        self._shard_delays: dict[int, list[_Fault]] = {}
        self._serve_failures: list[_Fault] = []
        self._serve_delays: list[_Fault] = []
        self._publish_failures: list[_Fault] = []
        self._injected = {
            "source_failures": 0,
            "source_delays": 0,
            "shard_delays": 0,
            "serve_failures": 0,
            "serve_delays": 0,
            "publish_failures": 0,
        }

    # -------------------------------------------------------------- arming
    def fail_source(
        self, times: int | None = 1, probability: float | None = None
    ) -> "FaultPlan":
        """Arm candidate-source failures (raised as :class:`SourceUnavailable`)."""
        with self._lock:
            self._source_failures.append(_Fault(times=times, probability=probability))
        return self

    def slow_source(self, seconds: float, times: int | None = 1) -> "FaultPlan":
        """Arm whole-source delays (applied before the source runs)."""
        with self._lock:
            self._source_delays.append(_Fault(seconds=seconds, times=times))
        return self

    def slow_shard(
        self, shard: int, seconds: float, times: int | None = None
    ) -> "FaultPlan":
        """Arm per-shard delays — fires on every funnel pass over
        ``shard`` (``times=None``) or the next ``times`` passes."""
        with self._lock:
            self._shard_delays.setdefault(int(shard), []).append(
                _Fault(seconds=seconds, times=times)
            )
        return self

    def fail_serve(
        self, times: int | None = 1, probability: float | None = None
    ) -> "FaultPlan":
        """Arm engine-serve failures (raised as :class:`TransientError`;
        the batcher's solo-retry isolates them per request)."""
        with self._lock:
            self._serve_failures.append(_Fault(times=times, probability=probability))
        return self

    def slow_serve(self, seconds: float, times: int | None = 1) -> "FaultPlan":
        """Arm engine-serve delays — they land inside the resilient
        layer's timed window, so the cost model sees them."""
        with self._lock:
            self._serve_delays.append(_Fault(seconds=seconds, times=times))
        return self

    def fail_publish(self, times: int | None = 1) -> "FaultPlan":
        """Arm transient publish failures (:class:`TransientError`) —
        the runtime's retry-with-backoff loop is their consumer."""
        with self._lock:
            self._publish_failures.append(_Fault(times=times))
        return self

    # ------------------------------------------------------------- plumbing
    def _delay(self, seconds: float) -> None:
        if seconds <= 0:
            return
        advance = getattr(self._clock, "advance", None)
        if advance is not None:
            advance(seconds)
        else:
            time.sleep(seconds)

    def _consume(self, faults: list[_Fault]) -> _Fault | None:
        for fault in faults:
            if fault.fire(self._rng):
                return fault
        return None

    # ---------------------------------------------------------------- hooks
    def source_tick(self, name: str, rows: int) -> None:
        """Candidate-source entry hook (``CandidateSource.fault_hook``)."""
        with self._lock:
            delay = self._consume(self._source_delays)
            failure = self._consume(self._source_failures)
            if delay is not None:
                self._injected["source_delays"] += 1
            if failure is not None:
                self._injected["source_failures"] += 1
        if delay is not None:
            self._delay(delay.seconds)
        if failure is not None:
            raise SourceUnavailable(
                f"injected fault: candidate source '{name}' unavailable"
            )

    def shard_tick(self, shard: int) -> None:
        """Per-shard funnel hook (``CandidateSource.shard_hook``)."""
        with self._lock:
            fault = self._consume(self._shard_delays.get(int(shard), []))
            if fault is not None:
                self._injected["shard_delays"] += 1
        if fault is not None:
            self._delay(fault.seconds)

    def serve_tick(self, batch_size: int) -> None:
        """Engine-serve hook, called inside the resilient timed window."""
        with self._lock:
            delay = self._consume(self._serve_delays)
            failure = self._consume(self._serve_failures)
            if delay is not None:
                self._injected["serve_delays"] += 1
            if failure is not None:
                self._injected["serve_failures"] += 1
        if delay is not None:
            self._delay(delay.seconds)
        if failure is not None:
            raise TransientError(
                f"injected fault: serve failed for a batch of {batch_size}"
            )

    def publish_tick(self) -> None:
        """Publish hook — fires mid-flight races as retryable errors."""
        with self._lock:
            fault = self._consume(self._publish_failures)
            if fault is not None:
                self._injected["publish_failures"] += 1
        if fault is not None:
            raise TransientError("injected fault: transient publish failure")

    def attach(self, source: CandidateSource) -> None:
        """Wire the source hooks onto ``source`` — onto its primary when
        it is a :class:`BreakerSource`, so the exact fallback path stays
        clean (that is the whole point of the breaker)."""
        target = getattr(source, "primary", source)
        target.fault_hook = self.source_tick
        target.shard_hook = self.shard_tick

    def stats(self) -> dict:
        with self._lock:
            return dict(self._injected)
