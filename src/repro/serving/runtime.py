"""The online serving runtime: live traffic in, versioned k-DPP lists out.

:class:`ServingRuntime` composes the pieces of this package into the
process a service actually runs:

* a **catalog** — monolithic :class:`ItemCatalog` or
  :class:`~repro.serving.sharding.ShardedCatalog` — publishing immutable
  factor snapshots;
* a matching **server** — :class:`KDPPServer`, or the shard-funnel
  :class:`~repro.serving.sharding.ShardedKDPPServer` — doing exact
  batched k-DPP work;
* a :class:`~repro.serving.scheduler.MicroBatcher` coalescing
  single-request :meth:`submit` calls into engine batches on worker
  threads.

Request lifecycle::

    submit(request)                      # returns a Future immediately
      └─ admission: pin the current catalog snapshot to the request
           └─ micro-batch window (size max_batch / time max_wait)
                └─ shard fan-out: per-shard quality top-k funnel
                     └─ one exact k-DPP over the merged candidate pool
                          └─ Future resolves to a version-stamped Response

Snapshot hot-swap: :meth:`publish` double-buffers retrained factors
into the catalog (build fully, then one reference swap).  Because every
request pinned its snapshot at *admission*, requests already in the
micro-batch queue complete against the version they were admitted
under; requests submitted after :meth:`publish` are served — and
stamped — with the new version.  The batcher serves each distinct
snapshot in its own engine call, so one dispatched batch never mixes
factor generations.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Callable, Sequence

import numpy as np

from .catalog import ItemCatalog
from .scheduler import MicroBatcher
from .server import KDPPServer, Request, Response
from .sharding import ShardedCatalog, ShardedKDPPServer

__all__ = ["ServingRuntime"]


class ServingRuntime:
    """Async admission + micro-batching + hot-swap over a k-DPP server.

    Parameters
    ----------
    catalog:
        :class:`ItemCatalog` or :class:`ShardedCatalog`; picks the
        default server flavor.
    server:
        Override the engine (must serve ``(requests, snapshot=...)``).
    max_batch / max_wait / workers / clock:
        Micro-batcher admission knobs, see
        :class:`~repro.serving.scheduler.MicroBatcher`.  ``workers=0``
        is the deterministic inline mode (drive with :meth:`poll` /
        :meth:`flush`).
    funnel_width / rerank_pool:
        Forwarded to the default server construction.
    source / funnel_cache:
        Candidate-generation plug-ins forwarded to the default
        :class:`~repro.serving.sharding.ShardedKDPPServer` (ignored for
        a monolithic catalog, which has no funnel): any
        :class:`~repro.retrieval.base.CandidateSource` and an optional
        :class:`~repro.retrieval.cache.FunnelCache`, which
        :meth:`publish` invalidates eagerly on every hot-swap.
    """

    def __init__(
        self,
        catalog: ItemCatalog | ShardedCatalog,
        server: KDPPServer | None = None,
        max_batch: int = 32,
        max_wait: float = 0.002,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
        funnel_width: int = 32,
        rerank_pool: int = 100,
        source=None,
        funnel_cache=None,
    ) -> None:
        self.catalog = catalog
        if server is None:
            if isinstance(catalog, ShardedCatalog):
                server = ShardedKDPPServer(
                    catalog,
                    funnel_width=funnel_width,
                    rerank_pool=rerank_pool,
                    source=source,
                    funnel_cache=funnel_cache,
                )
            elif source is not None or funnel_cache is not None:
                raise ValueError(
                    "candidate sources / funnel caches require a sharded "
                    "catalog (the monolithic engine has no funnel stage)"
                )
            else:
                server = KDPPServer(catalog, rerank_pool=rerank_pool)
        elif source is not None or funnel_cache is not None:
            raise ValueError(
                "pass source/funnel_cache either to the runtime (to build "
                "the default server) or to your own server, not both"
            )
        self.server = server
        self._batcher = MicroBatcher(
            self._serve_tagged,
            max_batch=max_batch,
            max_wait=max_wait,
            workers=workers,
            clock=clock,
        )

    def _serve_tagged(self, requests: list[Request], snapshot) -> Sequence[Response]:
        return self.server.serve(requests, snapshot=snapshot)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Future:
        """Admit one request; resolves to its version-stamped Response.

        The catalog snapshot is captured here — at admission — so a
        concurrent :meth:`publish` never retroactively changes what an
        already-queued request serves against.
        """
        return self._batcher.submit(request, tag=self.catalog.snapshot())

    def submit_many(self, requests: Sequence[Request]) -> list[Future]:
        snapshot = self.catalog.snapshot()
        return [self._batcher.submit(request, tag=snapshot) for request in requests]

    def serve_now(self, requests: Sequence[Request]) -> list[Response]:
        """Bypass admission: serve synchronously on the caller's thread
        against the current snapshot (baselines, offline evaluation)."""
        return self.server.serve(requests, snapshot=self.catalog.snapshot())

    # ------------------------------------------------------------------
    # Snapshot publication
    # ------------------------------------------------------------------
    def publish(self, factors: np.ndarray) -> int:
        """Hot-swap retrained factors; returns the new catalog version.

        Safe under in-flight traffic: double-buffered inside the
        catalog, and queued requests keep their admission snapshot.  An
        attached funnel cache is invalidated down to the new version —
        correctness never depends on it (cache keys carry the version),
        but the displaced generation's pools are reclaimed eagerly.
        """
        version = self.catalog.publish(factors)
        cache = getattr(self.server, "funnel_cache", None)
        if cache is not None:
            cache.invalidate(keep_version=version)
        return version

    @property
    def version(self) -> int:
        return self.catalog.version

    # ------------------------------------------------------------------
    # Scheduling controls / lifecycle
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Manual mode: dispatch due micro-batches inline (see batcher)."""
        return self._batcher.poll()

    def flush(self) -> int:
        """Manual mode: dispatch everything pending inline."""
        return self._batcher.flush()

    @property
    def pending(self) -> int:
        return self._batcher.pending

    @property
    def stats(self) -> dict:
        stats = self._batcher.stats
        stats["catalog_version"] = self.catalog.version
        retrieval = getattr(self.server, "retrieval_stats", None)
        if retrieval is not None:
            # Funnel time (source) vs queue time (admission_wait_*): the
            # two halves of the pre-kernel request cost, split out so
            # the retrieval benchmark can attribute wins correctly.
            stats["retrieval"] = retrieval()
        return stats

    def close(self) -> None:
        self._batcher.close()

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
