"""The online serving runtime: live traffic in, versioned k-DPP lists out.

:class:`ServingRuntime` composes the pieces of this package into the
process a service actually runs:

* a **catalog** — monolithic :class:`ItemCatalog` or
  :class:`~repro.serving.sharding.ShardedCatalog` — publishing immutable
  factor snapshots;
* a matching **server** — :class:`KDPPServer`, or the shard-funnel
  :class:`~repro.serving.sharding.ShardedKDPPServer` — doing exact
  batched k-DPP work;
* a :class:`~repro.serving.scheduler.MicroBatcher` coalescing
  single-request :meth:`submit` calls into engine batches on worker
  threads.

Request lifecycle::

    submit(request)                      # returns a Future immediately
      └─ admission: pin the current catalog snapshot to the request
           └─ micro-batch window (size max_batch / time max_wait)
                └─ shard fan-out: per-shard quality top-k funnel
                     └─ one exact k-DPP over the merged candidate pool
                          └─ Future resolves to a version-stamped Response

Snapshot hot-swap: :meth:`publish` double-buffers retrained factors
into the catalog (build fully, then one reference swap).  Because every
request pinned its snapshot at *admission*, requests already in the
micro-batch queue complete against the version they were admitted
under; requests submitted after :meth:`publish` are served — and
stamped — with the new version.  The batcher serves each distinct
snapshot in its own engine call, so one dispatched batch never mixes
factor generations.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence

import numpy as np

from ..utils.metrics import MetricsRegistry
from .catalog import ItemCatalog
from .config import UNSET, ServingConfig, resolve_config
from .health import (
    _STATUS_SEVERITY,
    DEGRADED,
    HEALTHY,
    AlertSink,
    CanaryReport,
    HealthStatus,
    ResponseAuditor,
    SLOTracker,
)
from .observability import EventLog, RuntimeTelemetry, Trace
from .profiling import (
    CapacityModel,
    FootprintReport,
    HeadroomReport,
    SamplingProfiler,
    StageRegistry,
    collect_footprint,
)
from .resilience import AdmittedRequest, ResilientServer, TransientError
from .scheduler import MicroBatcher
from .server import KDPPServer, Request, Response
from .sharding import ShardedCatalog, ShardedKDPPServer

__all__ = ["ServingRuntime"]


class ServingRuntime:
    """Async admission + micro-batching + hot-swap over a k-DPP server.

    Parameters
    ----------
    catalog:
        :class:`ItemCatalog` or :class:`ShardedCatalog`; picks the
        default server flavor.
    server:
        Override the engine (must serve ``(requests, snapshot=...)``).
    config:
        A :class:`~repro.serving.config.ServingConfig` carrying every
        infrastructure knob — micro-batcher admission windows
        (``max_batch`` / ``max_wait`` / ``workers`` / ``clock``;
        ``workers=0`` is the deterministic inline mode, drive with
        :meth:`poll` / :meth:`flush`), default-server pool sizes
        (``funnel_width`` / ``rerank_pool``), and the funnel plug-ins
        (``source`` / ``funnel_cache``, sharded catalogs only; an
        attached cache is invalidated eagerly by :meth:`publish`).
        :meth:`from_config` is the constructor-shaped spelling.

    The pre-config kwargs (``max_batch=``, ``funnel_width=``, ...) still
    work but emit :class:`DeprecationWarning`; combining them with
    ``config=`` is an error.
    """

    def __init__(
        self,
        catalog: ItemCatalog | ShardedCatalog,
        server: KDPPServer | None = None,
        max_batch: int = UNSET,
        max_wait: float = UNSET,
        workers: int = UNSET,
        clock: Callable[[], float] = UNSET,
        funnel_width: int = UNSET,
        rerank_pool: int = UNSET,
        source=UNSET,
        funnel_cache=UNSET,
        config: ServingConfig | None = None,
    ) -> None:
        config = resolve_config(
            config,
            {
                "max_batch": max_batch,
                "max_wait": max_wait,
                "workers": workers,
                "clock": clock,
                "funnel_width": funnel_width,
                "rerank_pool": rerank_pool,
                "source": source,
                "funnel_cache": funnel_cache,
            },
            type(self).__name__,
        )
        self.catalog = catalog
        self.config = config
        if server is None:
            if isinstance(catalog, ShardedCatalog):
                server = ShardedKDPPServer(catalog, config=config)
            elif config.source is not None or config.funnel_cache is not None:
                raise ValueError(
                    "candidate sources / funnel caches require a sharded "
                    "catalog (the monolithic engine has no funnel stage)"
                )
            else:
                server = KDPPServer(catalog, config=config)
        elif config.source is not None or config.funnel_cache is not None:
            raise ValueError(
                "pass source/funnel_cache either to the runtime (to build "
                "the default server) or to your own server, not both"
            )
        self.server = server
        clock = config.clock if config.clock is not None else time.monotonic
        self._clock = clock
        # One registry + one event log span the whole runtime: the
        # scheduler, the resilient layer and the publish path all
        # register into them, so telemetry().to_text() is one page.
        self._registry = MetricsRegistry()
        self._event_log = EventLog(
            capacity=config.event_log_capacity, clock=clock
        )
        self._telemetry = RuntimeTelemetry(
            self._registry, self._event_log, clock=clock
        )
        # Deterministic trace sampling (credit accumulator — no RNG, so
        # seeded sample streams are untouched; rate 0 short-circuits).
        self._trace_rate = float(config.trace_rate)
        self._trace_lock = threading.Lock()
        self._trace_credit = 0.0
        self._fault_plan = config.fault_plan
        # Performance introspection (PR 10).  The capacity model always
        # observes engine batches (pure arithmetic, no serving-path
        # change); the sampling profiler and its thread→stage registry
        # exist only at profile_hz > 0 — the registry's push/pop in the
        # stage machinery is the *only* serving-path delta, and the
        # sampler itself is a passive daemon thread (no RNG, no serving
        # lock), keeping profile_hz=0 bit-identical, samples included.
        self._capacity = CapacityModel(
            workers=max(1, config.workers), max_batch=config.max_batch
        )
        self._stage_registry: StageRegistry | None = None
        self._profiler: SamplingProfiler | None = None
        if config.profile_hz > 0:
            self._stage_registry = StageRegistry()
            self._profiler = SamplingProfiler(
                hz=config.profile_hz, registry=self._stage_registry
            )
            self._profiler.start()
        # The resilience layer sits between the batcher and the engine:
        # deadline budgets, the degradation ladder, and fault-injection
        # hooks (no-op on the default no-pressure path — parity-pinned).
        self._resilient = ResilientServer(
            server,
            clock=clock,
            fault_plan=config.fault_plan,
            registry=self._registry,
            event_log=self._event_log,
            stage_registry=self._stage_registry,
            capacity_model=self._capacity,
        )
        if config.fault_plan is not None:
            source = getattr(server, "source", None)
            if source is not None:
                config.fault_plan.attach(source)
        self._publishes = self._registry.counter(
            "publish_total", "catalog versions published"
        )
        self._publish_retry_count = self._registry.counter(
            "publish_retries_total", "transient publish failures retried"
        )
        breaker = getattr(getattr(server, "source", None), "breaker", None)
        if breaker is not None:
            transitions = self._registry.counter(
                "breaker_transitions_total",
                "circuit-breaker state transitions",
                labelnames=("from_state", "to_state"),
            )

            def _on_breaker(old: str, new: str) -> None:
                transitions.labels(from_state=old, to_state=new).inc()
                self._event_log.record("breaker", from_state=old, to_state=new)

            breaker.listener = _on_breaker
        # Product health (PR 9): the alert channel, the SLO burn
        # tracker, and the sampled slate auditor — all fed post-serve
        # by _serve_tagged, so the engine's batch window never pays.
        self._alert_sink = AlertSink(
            callback=config.alert_sink, clock=clock
        )
        self._slo_tracker = SLOTracker(
            slos=tuple(config.slos) if config.slos is not None else (),
            clock=clock,
            registry=self._registry,
            event_log=self._event_log,
            alert_sink=self._alert_sink,
        )
        self._auditor = ResponseAuditor(
            self._registry,
            self._event_log,
            clock=clock,
            audit_rate=config.audit_rate,
            window=config.audit_window,
            canary_min_audits=config.canary_min_audits,
            canary_tolerance=config.canary_tolerance,
            drift_window=config.drift_window,
            drift_threshold=config.drift_threshold,
            slo_tracker=self._slo_tracker,
            alert_sink=self._alert_sink,
        )
        self._health_gauge = self._registry.gauge(
            "serving_health_status",
            "runtime.health(): 0 healthy / 1 degraded / 2 unhealthy",
        )
        self._batcher = MicroBatcher.from_config(
            self._serve_tagged,
            config,
            on_overload=self._on_overload,
            registry=self._registry,
        )
        # Legacy stats() dicts ride into the merged snapshot as named
        # providers; req/s derives from the scheduler's served counter.
        self._telemetry.add_provider("scheduler", lambda: self._batcher.stats)
        self._telemetry.add_provider("resilience", self._resilient.stats)
        retrieval = getattr(server, "retrieval_stats", None)
        if retrieval is not None:
            self._telemetry.add_provider("retrieval", retrieval)
        self._telemetry.add_provider(
            "catalog", lambda: {"version": self.catalog.version}
        )
        if config.fault_plan is not None:
            self._telemetry.add_provider(
                "faults_injected", config.fault_plan.stats
            )
        self._telemetry.add_provider("audit", self._auditor.stats)
        # Performance-introspection sections (telemetry schema v3):
        # memory accounting and the capacity headroom report always,
        # the profiler's sample/attribution stats when it runs.
        self._telemetry.add_provider(
            "footprint", lambda: self.footprint().to_dict()
        )
        self._telemetry.add_provider(
            "headroom", lambda: self.headroom().to_dict()
        )
        if self._profiler is not None:
            self._telemetry.add_provider("profile", self._profiler.stats)
        self._telemetry.set_health(lambda: self.health().to_dict())
        served_counter = self._registry.get("scheduler_served_total")
        self._telemetry.set_served_total(lambda: served_counter.value)

    @classmethod
    def from_config(
        cls,
        catalog: ItemCatalog | ShardedCatalog,
        config: ServingConfig | None = None,
        server: KDPPServer | None = None,
    ) -> "ServingRuntime":
        """Build a runtime from one :class:`ServingConfig` (the preferred
        spelling; ``config=None`` means all defaults)."""
        return cls(catalog, server=server, config=config)

    def _serve_tagged(
        self, admitted: list[AdmittedRequest], snapshot
    ) -> Sequence:
        start = self._clock()
        results = self._resilient.serve_admitted(admitted, snapshot)
        # Post-serve product-health hook: version counters land in the
        # resilient layer, SLO windows and credit-sampled slate audits
        # here — after the batch resolved, never inside its window.
        self._auditor.observe_batch(
            admitted, results, snapshot, self._clock() - start
        )
        return results

    def _on_overload(self, item: AdmittedRequest, depth: int) -> None:
        """Degrade-policy callback: each full multiple of the cap in the
        queue is one more degradation-ladder rung (cap → 1 rung,
        2×cap → 2, ...) — pressure scales with how far behind we are."""
        cap = self.config.queue_cap
        item.pressure += 1 + (depth - cap) // cap

    def _maybe_trace(self) -> Trace | None:
        """A fresh trace when this request is sampled, else ``None``.

        Deterministic credit accumulator: at rate ``r`` exactly every
        ``1/r``-th submission traces — no RNG is consumed, so the seeded
        sample streams the parity tests pin are byte-identical whether
        tracing is on or off.
        """
        rate = self._trace_rate
        if rate <= 0.0:
            return None
        if rate >= 1.0:
            return Trace(self._clock)
        with self._trace_lock:
            self._trace_credit += rate
            if self._trace_credit >= 1.0:
                self._trace_credit -= 1.0
                return Trace(self._clock)
        return None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Future:
        """Admit one request; resolves to its version-stamped Response.

        The catalog snapshot is captured here — at admission — so a
        concurrent :meth:`publish` never retroactively changes what an
        already-queued request serves against.  ``request.deadline``
        rides along: the batcher caps retry work with it, the resilience
        layer degrades or sheds against it.
        """
        return self._batcher.submit(
            AdmittedRequest(request, trace=self._maybe_trace()),
            tag=self.catalog.snapshot(),
            deadline=request.deadline,
        )

    def submit_many(self, requests: Sequence[Request]) -> list[Future]:
        snapshot = self.catalog.snapshot()
        return [
            self._batcher.submit(
                AdmittedRequest(request, trace=self._maybe_trace()),
                tag=snapshot,
                deadline=request.deadline,
            )
            for request in requests
        ]

    def serve_now(self, requests: Sequence[Request]) -> list[Response]:
        """Bypass admission: serve synchronously on the caller's thread
        against the current snapshot (baselines, offline evaluation)."""
        return self.server.serve(requests, snapshot=self.catalog.snapshot())

    # ------------------------------------------------------------------
    # Snapshot publication
    # ------------------------------------------------------------------
    def publish(self, factors: np.ndarray) -> int:
        """Hot-swap retrained factors; returns the new catalog version.

        Safe under in-flight traffic: double-buffered inside the
        catalog, and queued requests keep their admission snapshot.  An
        attached funnel cache is invalidated down to the new version —
        correctness never depends on it (cache keys carry the version),
        but the displaced generation's pools are reclaimed eagerly.

        Transient failures (:class:`TransientError`, e.g. a publish race
        injected by a fault plan) are retried up to
        ``config.publish_retries`` times with exponential backoff from
        ``config.publish_backoff`` — slept through the injected clock
        when it is a manual one, so chaos tests never block on wall
        time.  Non-transient errors propagate immediately.

        When auditing is on, the pre-swap version's audit windows are
        frozen *before* the swap as the canary baseline; once the new
        version accrues ``config.canary_min_audits`` audited responses
        the auditor emits a :class:`~repro.serving.health.CanaryReport`
        (a ``canary_regression`` event + alert if quality regressed).
        """
        # Freeze the baseline before the swap: audits racing this
        # publish keep landing in the old version's windows, but the
        # comparison point is pinned to the moment the swap began.
        # (Skipped entirely when auditing is off — no extra events.)
        baseline = (
            self._auditor.canary_baseline(self.catalog.version)
            if self._auditor.rate > 0
            else None
        )
        delay = self.config.publish_backoff
        for attempt in range(self.config.publish_retries + 1):
            try:
                if self._fault_plan is not None:
                    self._fault_plan.publish_tick()
                version = self.catalog.publish(factors)
                break
            except TransientError:
                if attempt == self.config.publish_retries:
                    raise
                self._publish_retry_count.inc()
                self._event_log.record("publish_retry", attempt=attempt + 1)
                if delay > 0:
                    advance = getattr(self._clock, "advance", None)
                    if advance is not None:
                        advance(delay)
                    else:
                        time.sleep(delay)
                    delay *= 2
        cache = getattr(self.server, "funnel_cache", None)
        if cache is not None:
            cache.invalidate(keep_version=version)
        self._publishes.inc()
        self._event_log.record("publish", version=version)
        if baseline is not None:
            self._auditor.arm_canary(baseline, version)
        return version

    @property
    def version(self) -> int:
        return self.catalog.version

    # ------------------------------------------------------------------
    # Product health
    # ------------------------------------------------------------------
    def health(self) -> HealthStatus:
        """The runtime's product-health verdict right now.

        SLO burn rates (fast/slow multi-window, on the injected clock)
        decide ``unhealthy`` (both windows burning) vs ``degraded``
        (one window hot); a regressed canary targeting the live catalog
        version or flagged metric drift lifts ``healthy`` to
        ``degraded``.  Also refreshes the ``serving_health_status`` /
        ``slo_burn_rate`` gauges the text exposition renders.
        """
        status, reasons, evaluations = self._slo_tracker.health(self._clock())
        audit_reasons = self._auditor.health_reasons(self.catalog.version)
        if audit_reasons and status == HEALTHY:
            status = DEGRADED
        reasons.extend(audit_reasons)
        self._health_gauge.set(_STATUS_SEVERITY[status])
        return HealthStatus(
            status=status, reasons=tuple(reasons), slos=evaluations
        )

    # ------------------------------------------------------------------
    # Performance introspection (PR 10)
    # ------------------------------------------------------------------
    def footprint(self) -> FootprintReport:
        """Byte accounting of everything the stack is holding alive:
        every retained snapshot generation's structures (factors, Gram,
        dual spectrum, outer-product table, retrieval extensions), the
        funnel cache's pools, plus current/peak RSS.  An old version
        still reported here long after a publish is the leak signature
        (a displaced generation pinned by in-flight requests)."""
        return collect_footprint(self.catalog, self.server)

    def headroom(self) -> HeadroomReport:
        """Utilization and predicted saturation at the current mix.

        Fuses the capacity model's affine batch-cost fit (fed by every
        engine batch the resilient layer timed) with the EWMA per-mode
        cost estimates; the profiling benchmark validates the
        saturation estimate within ±30% of the measured closed-loop
        knee.  Meaningful once traffic has flowed — a cold model
        reports zero saturation, never a guess.
        """
        return self._capacity.headroom(
            uptime_s=self._telemetry.uptime,
            observed_req_per_s=self._telemetry.requests_per_second(),
            mode_costs=self._resilient.cost_model.snapshot(),
        )

    @property
    def profiler(self) -> SamplingProfiler | None:
        """The continuous sampling profiler (None at ``profile_hz=0``);
        ``profiler.collapsed()`` is the flame-graph export."""
        return self._profiler

    @property
    def auditor(self) -> ResponseAuditor:
        return self._auditor

    @property
    def alert_sink(self) -> AlertSink:
        return self._alert_sink

    @property
    def last_canary(self) -> CanaryReport | None:
        """The most recent post-publish canary verdict (None before
        any canary completed)."""
        return self._auditor.last_canary

    # ------------------------------------------------------------------
    # Scheduling controls / lifecycle
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Manual mode: dispatch due micro-batches inline (see batcher)."""
        return self._batcher.poll()

    def flush(self) -> int:
        """Manual mode: dispatch everything pending inline."""
        return self._batcher.flush()

    @property
    def pending(self) -> int:
        return self._batcher.pending

    @property
    def stats(self) -> dict:
        stats = self._batcher.stats
        stats["catalog_version"] = self.catalog.version
        retrieval = getattr(self.server, "retrieval_stats", None)
        if retrieval is not None:
            # Funnel time (source) vs queue time (admission_wait_*): the
            # two halves of the pre-kernel request cost, split out so
            # the retrieval benchmark can attribute wins correctly.
            stats["retrieval"] = retrieval()
        # Degradation / shed accounting, and the running per-mode cost
        # estimates the deadline-budget check degrades against.
        stats["resilience"] = self._resilient.stats()
        stats["publish_retries"] = int(self._publish_retry_count.value)
        if self._fault_plan is not None:
            stats["faults_injected"] = self._fault_plan.stats()
        return stats

    def telemetry(self) -> RuntimeTelemetry:
        """The unified telemetry facade: ``telemetry().snapshot()`` is
        the one versioned dict over every layer's visibility,
        ``telemetry().to_text()`` the Prometheus-style page."""
        return self._telemetry

    def close(self, drain: bool = True) -> None:
        """Close the batcher: ``drain=True`` serves queued requests,
        ``drain=False`` fails them with :class:`ShutdownError` (see
        :meth:`MicroBatcher.close`)."""
        self._batcher.close(drain=drain)
        if self._profiler is not None:
            self._profiler.stop()

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
