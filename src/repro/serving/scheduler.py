"""Micro-batched request admission: single submits, batched serving.

The engine's ~6x batching win (``BENCH_serving_engine.json``) only
materializes when someone hands :meth:`KDPPServer.serve` a whole batch —
but live traffic arrives one request at a time.  :class:`MicroBatcher`
is the funnel in between: ``submit()`` enqueues one request and returns
a :class:`concurrent.futures.Future`; worker threads pull *batches* off
the shared queue whenever either admission trigger fires:

* **size window** — ``max_batch`` requests are pending, or
* **time window** — the oldest pending request has waited ``max_wait``
  seconds (the latency budget a request pays to buy batching).

Batching is adaptive under load: while every worker is busy serving,
arrivals keep queueing, so the next free worker drains a *bigger* batch
— exactly the backpressure behavior a closed-loop load test wants
(see ``benchmarks/bench_runtime.py``).

Determinism hooks: the clock is injectable (pass a
:class:`~repro.utils.timing.ManualClock` and drive time by hand) and
``workers=0`` runs no threads at all — batches are dispatched inline by
explicit :meth:`poll` (honor the triggers against the injected clock)
or :meth:`flush` (dispatch everything now), which is how the hot-swap
and scheduling tests replay exact admission orders.

Entries carry an opaque ``tag`` — the serving runtime passes the
catalog snapshot captured at *admission* time, and ``serve`` is invoked
once per distinct tag within a dispatched batch, so requests admitted
under different published versions are never mixed into one kernel
build (in-flight work completes against the version it was admitted
under).

Error isolation: if a batch serve raises (e.g. one request fails
validation), the batch is retried request by request so only the
offending futures carry the exception (``retries`` /
``isolated_failures`` in :attr:`MicroBatcher.stats` count this work);
entries whose deadline already passed are failed with
:class:`~repro.serving.resilience.DeadlineExceeded` instead of being
re-served.  The backend may also return *exception instances* in place
of responses — the per-request error channel the resilience layer uses
to shed one request without poisoning its batch.

Admission control (``queue_cap`` / ``overload_policy``): a submit that
finds the queue at or past the cap either raises a structured
:class:`~repro.serving.resilience.OverloadError` (``"reject"``) or is
admitted through the ``on_overload`` callback (``"degrade"`` — the
runtime uses it to add degradation-ladder pressure).  Submitting to a
closed batcher raises :class:`~repro.serving.resilience.ShutdownError`,
and :meth:`close` never strands a queued future: it is drained
(``drain=True``, the default) or failed with ``ShutdownError``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Sequence

from ..utils.metrics import MetricsRegistry
from .resilience import DeadlineExceeded, OverloadError, ShutdownError

__all__ = ["MicroBatcher"]


class _Pending:
    __slots__ = ("request", "tag", "future", "admitted", "deadline")

    def __init__(
        self, request, tag, future, admitted: float, deadline: float | None = None
    ) -> None:
        self.request = request
        self.tag = tag
        self.future = future
        self.admitted = admitted
        self.deadline = deadline


class MicroBatcher:
    """Coalesces single-request ``submit()`` calls into served batches.

    Parameters
    ----------
    serve:
        ``serve(requests, tag) -> responses`` — the batch backend (the
        runtime binds this to ``KDPPServer.serve`` pinned to the tag's
        snapshot).  Called from worker threads (or inline when
        ``workers=0``).
    max_batch:
        Size trigger and per-dispatch cap.
    max_wait:
        Time trigger, in clock seconds: no admitted request waits longer
        than this before its batch is formed (scheduling delay, not
        service time).
    workers:
        Serving threads.  ``0`` = manual mode (:meth:`poll` /
        :meth:`flush` drive dispatch inline — deterministic).
    clock:
        Monotonic time source; inject a manual clock for determinism.
        Threaded waiting assumes clock seconds are wall seconds, so
        manual clocks belong with ``workers=0``.
    queue_cap / overload_policy / on_overload:
        Admission control (see the module docstring).  ``on_overload``
        is only consulted under the ``"degrade"`` policy; it receives
        ``(request, queue_depth)`` under the admission lock and may
        mutate the request envelope (the runtime bumps its
        degradation-ladder pressure).

    :meth:`from_config` builds a batcher from the admission fields of a
    :class:`~repro.serving.config.ServingConfig` — the spelling the
    runtime uses, so the whole stack shares one config object.
    """

    def __init__(
        self,
        serve: Callable[[list, Any], Sequence],
        max_batch: int = 32,
        max_wait: float = 0.002,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
        queue_cap: int | None = None,
        overload_policy: str = "degrade",
        on_overload: Callable[[Any, int], None] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        if workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if queue_cap is not None and queue_cap < 1:
            raise ValueError(
                f"queue_cap must be positive (or None for unbounded), got {queue_cap}"
            )
        if overload_policy not in ("reject", "degrade"):
            raise ValueError(
                f"overload_policy must be 'reject' or 'degrade', got {overload_policy!r}"
            )
        self._serve = serve
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.workers = workers
        self.queue_cap = queue_cap
        self.overload_policy = overload_policy
        self._on_overload = on_overload
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: list[_Pending] = []
        self._closed = False
        # Counters live on registry primitives (each series has its own
        # lock) so worker-thread increments never tear a reader — and so
        # the runtime's telemetry page includes admission accounting for
        # free when it passes its shared registry in.
        metrics = registry if registry is not None else MetricsRegistry()
        self.registry = metrics
        self._submitted = metrics.counter(
            "scheduler_submitted_total", "requests admitted into the queue"
        )
        self._served = metrics.counter(
            "scheduler_served_total", "futures resolved with a response"
        )
        self._failed = metrics.counter(
            "scheduler_failed_total", "futures resolved with an exception"
        )
        self._cancelled = metrics.counter(
            "scheduler_cancelled_total", "futures cancelled before serving"
        )
        self._batches = metrics.counter(
            "scheduler_batches_total", "dispatched micro-batches"
        )
        self._dispatched = metrics.counter(
            "scheduler_dispatched_total", "requests leaving the queue in batches"
        )
        # Admission accounting (in clock seconds): how deep the queue
        # got, and how long dispatched requests sat in it — the "queue
        # time" half of the pre-kernel cost, reported separately from
        # funnel time by the retrieval benchmark.
        self._queue_depth = metrics.gauge(
            "scheduler_queue_depth", "requests currently queued"
        )
        self._max_queue_depth = metrics.gauge(
            "scheduler_max_queue_depth", "peak queue depth"
        )
        self._max_batch_size = metrics.gauge(
            "scheduler_max_batch_size", "largest dispatched batch"
        )
        self._queue_wait = metrics.histogram(
            "scheduler_queue_wait_seconds",
            "queue-entry to batch-formation wait (clock seconds)",
        )
        self._queue_wait_max = metrics.gauge(
            "scheduler_queue_wait_max_seconds", "longest observed queue wait"
        )
        self._latency = metrics.histogram(
            "scheduler_request_latency_seconds",
            "admission to future-resolution latency (clock seconds)",
        )
        # Resilience accounting: admissions shed or degraded at the cap,
        # solo-retry work, and per-request isolated failures.
        self._rejected = metrics.counter(
            "scheduler_rejected_total", "submits rejected at the queue cap"
        )
        self._degraded_admissions = metrics.counter(
            "scheduler_degraded_admissions_total",
            "submits admitted with queue pressure at the cap",
        )
        self._retries = metrics.counter(
            "scheduler_retries_total", "solo retries after a failed batch"
        )
        self._isolated_failures = metrics.counter(
            "scheduler_isolated_failures_total",
            "per-request failures isolated from their batch",
        )
        self._deadline_expired = metrics.counter(
            "scheduler_deadline_expired_total",
            "entries failed because their deadline passed before a retry",
        )
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"microbatcher-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @classmethod
    def from_config(
        cls,
        serve: Callable[[list, Any], Sequence],
        config,
        on_overload: Callable[[Any, int], None] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "MicroBatcher":
        """A batcher from the admission fields of a ``ServingConfig``
        (``clock=None`` in the config means ``time.monotonic``)."""
        return cls(
            serve,
            max_batch=config.max_batch,
            max_wait=config.max_wait,
            workers=config.workers,
            clock=config.clock if config.clock is not None else time.monotonic,
            queue_cap=config.queue_cap,
            overload_policy=config.overload_policy,
            on_overload=on_overload,
            registry=registry,
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request, tag: Any = None, deadline: float | None = None) -> Future:
        """Admit one request; the future resolves when its batch is served.

        ``deadline`` (absolute clock time) caps solo-retry work: an
        entry whose deadline has passed when its batch is retried is
        failed with :class:`DeadlineExceeded` instead of re-served.
        Raises :class:`ShutdownError` after :meth:`close`, and
        :class:`OverloadError` at the queue cap under the ``"reject"``
        policy.
        """
        future: Future = Future()
        entry = _Pending(request, tag, future, self._clock(), deadline)
        with self._cond:
            if self._closed:
                raise ShutdownError("cannot submit to a closed MicroBatcher")
            depth = len(self._pending)
            if self.queue_cap is not None and depth >= self.queue_cap:
                if self.overload_policy == "reject":
                    self._rejected.inc()
                    raise OverloadError(
                        f"queue depth {depth} is at the cap "
                        f"{self.queue_cap}; request rejected",
                        request=request,
                    )
                self._degraded_admissions.inc()
                if self._on_overload is not None:
                    self._on_overload(request, depth)
            self._pending.append(entry)
            self._submitted.inc()
            self._queue_depth.set(len(self._pending))
            self._max_queue_depth.set_max(len(self._pending))
            self._cond.notify()
        return future

    def submit_many(self, requests: Sequence, tag: Any = None) -> list[Future]:
        return [self.submit(request, tag) for request in requests]

    def try_cancel(self, future: Future) -> bool:
        """Remove a still-queued future from the pending queue.

        The escape hatch for a caller that timed out on
        ``future.result(timeout=...)``: on success the entry is gone (no
        zombie request will be served) and the future is CANCELLED,
        counted under ``stats["cancelled"]``.  Returns ``False`` when
        the entry already left the queue — a dispatched-but-unstarted
        future may still be cancelled through the returned
        ``future.cancel()`` attempt (the dispatch path counts those)."""
        with self._cond:
            for position, entry in enumerate(self._pending):
                if entry.future is future:
                    if not future.cancel():  # pragma: no cover - queued
                        return False  # futures are PENDING, so cancellable
                    del self._pending[position]
                    self._cancelled.inc()
                    self._queue_depth.set(len(self._pending))
                    return True
        return future.cancel()

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def stats(self) -> dict:
        """Counter snapshot; ``queue_depth`` is the instantaneous value.

        The legacy dict shape, assembled from the registry primitives.
        Outcome counters are read *before* ``submitted`` so the
        ``served + failed + cancelled <= submitted`` invariant holds
        even when the dict is assembled mid-flight.
        """
        served = int(self._served.value)
        failed = int(self._failed.value)
        cancelled = int(self._cancelled.value)
        snapshot = {
            "served": served,
            "failed": failed,
            "cancelled": cancelled,
            "batches": int(self._batches.value),
            "max_batch_size": int(self._max_batch_size.value),
            "max_queue_depth": int(self._max_queue_depth.value),
            "dispatched": int(self._dispatched.value),
            "admission_wait_total_s": self._queue_wait.total,
            "admission_wait_max_s": self._queue_wait_max.value,
            "rejected": int(self._rejected.value),
            "degraded_admissions": int(self._degraded_admissions.value),
            "retries": int(self._retries.value),
            "isolated_failures": int(self._isolated_failures.value),
            "deadline_expired": int(self._deadline_expired.value),
            "submitted": int(self._submitted.value),
        }
        with self._cond:
            snapshot["queue_depth"] = len(self._pending)
        return snapshot

    # ------------------------------------------------------------------
    # Dispatch triggers
    # ------------------------------------------------------------------
    def _due_locked(self) -> bool:
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        return self._clock() - self._pending[0].admitted >= self.max_wait

    def _pop_batch_locked(self) -> list[_Pending]:
        batch = self._pending[: self.max_batch]
        del self._pending[: self.max_batch]
        # Admission latency is measured at dispatch: queue-entry to
        # batch-formation, in injected-clock seconds (service time is
        # the caller's to measure off the future).
        now = self._clock()
        for entry in batch:
            wait = now - entry.admitted
            self._queue_wait.observe(wait)
            self._queue_wait_max.set_max(wait)
        self._dispatched.inc(len(batch))
        self._queue_depth.set(len(self._pending))
        return batch

    # ------------------------------------------------------------------
    # Manual (deterministic) dispatch
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Dispatch every batch whose trigger has fired; returns count.

        Manual-mode pump: honors the same size/time triggers as the
        worker threads but against the injected clock, serving inline.
        """
        dispatched = 0
        while True:
            with self._cond:
                if not self._due_locked():
                    return dispatched
                batch = self._pop_batch_locked()
            self._execute(batch)
            dispatched += 1

    def flush(self) -> int:
        """Dispatch all pending requests now, triggers or not."""
        dispatched = 0
        while True:
            with self._cond:
                if not self._pending:
                    return dispatched
                batch = self._pop_batch_locked()
            self._execute(batch)
            dispatched += 1

    # ------------------------------------------------------------------
    # Threaded dispatch
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._due_locked():
                    if self._pending:
                        timeout = max(
                            0.0,
                            self._pending[0].admitted
                            + self.max_wait
                            - self._clock(),
                        )
                        self._cond.wait(timeout)
                    else:
                        self._cond.wait()
                if not self._pending:
                    if self._closed:
                        return
                    continue
                batch = self._pop_batch_locked()
            self._execute(batch)

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and resolve every queued future.

        ``drain=True`` (default) serves the stragglers inline after the
        workers join; ``drain=False`` fails them with
        :class:`ShutdownError`.  Either way no future admitted before
        the close — including one racing it — is ever left unresolved:
        a submit either lands before the closed flag (its entry is
        drained or failed here) or raises ``ShutdownError`` itself.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        # Whatever the workers did not drain (manual mode, or entries
        # admitted in the closing race) is resolved inline.
        if drain:
            self.flush()
        else:
            self._fail_pending()

    def _fail_pending(self) -> None:
        with self._cond:
            stranded = self._pending[:]
            self._pending.clear()
        failed = cancelled = 0
        for entry in stranded:
            # RUNNING-transition first, exactly like _execute_group: a
            # future the caller already cancelled takes no exception.
            if entry.future.set_running_or_notify_cancel():
                entry.future.set_exception(
                    ShutdownError(
                        "MicroBatcher closed before this request was served",
                        request=entry.request,
                    )
                )
                failed += 1
            else:
                cancelled += 1
        self._failed.inc(failed)
        self._cancelled.inc(cancelled)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, batch: list[_Pending]) -> None:
        self._batches.inc()
        self._max_batch_size.set_max(len(batch))
        # One serve per distinct admission tag (= catalog snapshot):
        # requests admitted across a hot-swap stay on their own version.
        # Hashable tags group by equality — the tag is the dict key, so
        # snapshots (which hash by identity: their version semantics)
        # and value tags (ints, strings, tuples) both coalesce
        # correctly; unhashable tags fall back to object identity.
        groups: dict = {}
        order: dict = {}
        for entry in batch:
            try:
                hash(entry.tag)
                key = entry.tag
            except TypeError:
                key = ("unhashable-tag", id(entry.tag))
            groups.setdefault(key, []).append(entry)
            order[key] = entry.tag
        for key, members in groups.items():
            self._execute_group(members, order[key])

    def _execute_group(self, members: list[_Pending], tag: Any) -> None:
        # Transition every future to RUNNING first: a future a caller
        # already cancelled is dropped here (no work, no result), and
        # the rest can no longer be cancelled — so the set_result /
        # set_exception calls below cannot raise InvalidStateError and
        # kill the worker thread mid-batch.
        live = [m for m in members if m.future.set_running_or_notify_cancel()]
        if len(live) != len(members):
            self._cancelled.inc(len(members) - len(live))
        members = live
        if not members:
            return
        try:
            responses = self._serve([m.request for m in members], tag)
            if len(responses) != len(members):
                # A miscounting backend must not strand futures (a zip
                # would drop the tail silently); the solo-retry path
                # below surfaces the defect per request instead.
                raise RuntimeError(
                    f"serve returned {len(responses)} responses for "
                    f"{len(members)} requests"
                )
        except Exception:
            # A single bad request must not poison its batch neighbors:
            # retry one by one so only the offender's future errors.
            # Deadline-expired entries are failed without re-serving —
            # solo retries are O(batch) engine calls, exactly the work
            # an overloaded process cannot afford to spend on requests
            # nobody is waiting for anymore.
            succeeded = failed = retries = isolated = expired = 0
            for member in members:
                if member.deadline is not None and self._clock() >= member.deadline:
                    member.future.set_exception(
                        DeadlineExceeded(
                            "deadline passed before the solo retry of a "
                            "failed batch reached this request",
                            request=member.request,
                        )
                    )
                    failed += 1
                    expired += 1
                    continue
                retries += 1
                try:
                    response = self._serve([member.request], tag)[0]
                except Exception as error:  # noqa: BLE001 - forwarded to caller
                    member.future.set_exception(error)
                    failed += 1
                    isolated += 1
                else:
                    if isinstance(response, BaseException):
                        member.future.set_exception(response)
                        failed += 1
                        isolated += 1
                    else:
                        member.future.set_result(response)
                        succeeded += 1
                self._latency.observe(self._clock() - member.admitted)
            self._served.inc(succeeded)
            self._failed.inc(failed)
            self._retries.inc(retries)
            self._isolated_failures.inc(isolated)
            self._deadline_expired.inc(expired)
            return
        succeeded = failed = 0
        now = self._clock()
        for member, response in zip(members, responses):
            # The backend may shed individual requests by returning an
            # exception instance in that slot (the resilience layer's
            # per-request error channel) — no batch retry needed.
            if isinstance(response, BaseException):
                member.future.set_exception(response)
                failed += 1
            else:
                member.future.set_result(response)
                succeeded += 1
            self._latency.observe(now - member.admitted)
        self._served.inc(succeeded)
        self._failed.inc(failed)
        if failed:
            self._isolated_failures.inc(failed)
