"""Batched multi-user k-DPP serving.

One :class:`KDPPServer` turns a batch of personalization requests over a
shared :class:`~repro.serving.catalog.ItemCatalog` into recommendation
lists.  Per Eq. 2 a request only reweights the shared factors — its
kernel is ``L_u = Diag(q_u) V Vᵀ Diag(q_u)`` — so the whole batch shares
every catalog-sized computation:

* all dual kernels ``C_u = Vᵀ Diag(q_u²) V`` are one ``(B, M)``-by-table
  matmul (:meth:`ItemCatalog.build_duals`);
* one stacked ``eigh`` factorizes every request's dual;
* one :func:`~repro.dpp.esp.batched_log_esp` produces every Eq. 6
  normalizer, heterogeneous ``k`` included;
* sampling and greedy MAP run vectorized across the batch
  (:func:`~repro.dpp.kdpp.batched_sample_elementary_shared`,
  :func:`~repro.dpp.map_inference.batched_greedy_map_shared`), with each
  request consuming its own seeded RNG stream so a batch reproduces the
  per-user ``KDPP.from_factors(...).sample(rng)`` loop draw for draw.

Request semantics
-----------------
``mode`` is one of:

* ``"sample"`` — an exact k-DPP draw (diversity by randomization);
* ``"map"`` — greedy MAP over the ground set (deterministic);
* ``"topk-rerank"`` — restrict to the request's top ``rerank_pool``
  items by quality, then greedy MAP inside that slice (the classic
  serving pattern of post-hoc DPP re-rankers).

``exclude`` removes items from the ground set by zeroing their quality:
a zero factor row can never be selected and contributes nothing to the
dual kernel, so this is exactly equivalent to deleting the rows — while
keeping every request in the batch the same shape.  ``candidates``
restricts a request to an explicit item slice (the
:class:`~repro.serving.bridge.RecommenderBridge` uses it for
user-specific top-N candidate pools); results are reported in catalog
ids either way.

``serve_sequential`` is the PR 2 one-request-at-a-time loop over the
same request semantics — the parity oracle for the tests and the
baseline the serving benchmark measures against.  One caveat: greedy
MAP under *exactly* tied marginal gains (perfectly uniform quality on a
unit-diagonal catalog) may break ties differently on the two paths —
each returns a valid greedy solution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dpp.esp import batched_esp_table, batched_log_esp
from ..dpp.kdpp import (
    KDPP,
    batched_sample_elementary_shared,
    batched_sample_elementary_stacked,
    kdpp_spectrum_scale,
    select_eigenvectors_from_esp_table,
)
from ..dpp.kernels import LowRankKernel
from ..dpp.map_inference import (
    batched_greedy_map_shared,
    batched_greedy_map_stacked,
    greedy_map,
)
from ..utils.topk import top_k_indices
from .catalog import CatalogSnapshot, ItemCatalog

__all__ = [
    "Request",
    "Response",
    "KDPPServer",
    "REQUEST_MODES",
    "validate_request_mode_and_k",
    "effective_request_quality",
]

REQUEST_MODES = ("sample", "map", "topk-rerank")


def validate_request_mode_and_k(request: "Request", index: int) -> None:
    """Shared field checks — one source of truth for every serving
    front end (the engine's ``_resolve`` and the sharded funnel)."""
    if request.mode not in REQUEST_MODES:
        raise ValueError(
            f"request {index}: mode must be one of {REQUEST_MODES}, "
            f"got {request.mode!r}"
        )
    if request.k < 1:
        raise ValueError(f"request {index}: k must be positive, got {request.k}")
    if request.rerank_pool is not None and request.rerank_pool < 1:
        raise ValueError(
            f"request {index}: rerank_pool must be positive, got "
            f"{request.rerank_pool}"
        )


def effective_request_quality(
    request: "Request", index: int, num_items: int, check_values: bool = True
) -> np.ndarray:
    """The request's catalog-sized quality with exclusions zeroed.

    Shape and exclusion-id bounds are always enforced;
    ``check_values=False`` defers the O(M) finiteness/negativity scan to
    a later ``_resolve`` pass (the sharded funnel uses this so lowered
    requests are not value-scanned twice).
    """
    quality = np.asarray(request.quality, dtype=np.float64)
    if quality.shape != (num_items,):
        raise ValueError(
            f"request {index}: quality shape {quality.shape} does not "
            f"match catalog size {num_items}"
        )
    if check_values and (
        not np.all(np.isfinite(quality)) or np.any(quality < 0)
    ):
        raise ValueError(
            f"request {index}: quality must be finite and non-negative"
        )
    if request.exclude is not None and len(request.exclude) > 0:
        exclude = np.asarray(request.exclude, dtype=np.int64)
        if np.any(exclude < 0) or np.any(exclude >= num_items):
            raise ValueError(
                f"request {index}: exclusion ids must be in [0, {num_items})"
            )
        quality = quality.copy()
        quality[exclude] = 0.0
    return quality


@dataclass(frozen=True)
class Request:
    """One user's recommendation request against the shared catalog.

    ``quality`` is the catalog-sized vector of positive per-item quality
    scores ``q_u`` (Eq. 2 / Eq. 13) — typically produced by a trained
    :class:`~repro.models.base.Recommender` through the
    :class:`~repro.serving.bridge.RecommenderBridge`.

    ``user`` is an optional stable requester id.  The engine itself
    ignores it; the sharded funnel's
    :class:`~repro.retrieval.cache.FunnelCache` keys on it, under the
    contract that one ``user`` id maps to one quality vector per catalog
    version (the bridge guarantees this via its score snapshot).
    """

    quality: np.ndarray
    k: int
    mode: str = "sample"
    exclude: np.ndarray | None = None
    candidates: np.ndarray | None = None
    seed: int | None = None
    rerank_pool: int | None = None
    user: int | None = None


@dataclass
class Response:
    """Result of one request: selected items (catalog ids, list order =
    selection order) and the set's k-DPP log-probability under the
    request's personalized kernel (``None`` when greedy MAP stopped
    early with fewer than k items).  ``version`` stamps the catalog
    snapshot the request was served against — under live snapshot
    hot-swaps it tells the caller exactly which factor generation
    produced the list."""

    items: list[int]
    log_probability: float | None
    mode: str
    k: int
    cached: bool = False
    version: int | None = None


@dataclass
class _Resolved:
    """A validated request: zero-quality exclusions applied, topk-rerank
    lowered to MAP over an explicit candidate slice."""

    index: int
    quality: np.ndarray  # catalog-sized effective quality
    k: int
    mode: str  # "sample" | "map" after lowering
    report_mode: str  # the caller's mode, echoed in the Response
    candidates: np.ndarray | None
    seed: int | None


class KDPPServer:
    """Batched k-DPP recommendation engine over one :class:`ItemCatalog`."""

    def __init__(self, catalog: ItemCatalog, rerank_pool: int = 100) -> None:
        if rerank_pool < 1:
            raise ValueError(f"rerank_pool must be positive, got {rerank_pool}")
        self.catalog = catalog
        self.rerank_pool = rerank_pool
        # Unseeded requests draw from generators spawned off one entropy
        # source under a lock: numpy Generators are not thread-safe, and
        # the micro-batcher serves batches from worker threads.
        self._seed_sequence = np.random.SeedSequence()
        self._seed_lock = threading.Lock()

    def _pin(self, snapshot: CatalogSnapshot | None) -> CatalogSnapshot:
        """The snapshot a batch serves against, captured exactly once.

        The runtime passes the snapshot each request was *admitted*
        under, so in-flight work survives a concurrent
        :meth:`ItemCatalog.refresh`; direct callers get the catalog's
        current version.
        """
        return snapshot if snapshot is not None else self.catalog.snapshot()

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, request: Request, index: int, snap: CatalogSnapshot
    ) -> _Resolved:
        num_items = snap.num_items
        validate_request_mode_and_k(request, index)
        # The O(M) value scan runs on whatever can reach a kernel: the
        # full vector for full-catalog (and topk-rerank, which ranks the
        # whole vector) requests, but only the candidate slice for
        # explicitly-sliced ones — funnel-lowered requests at catalog
        # scale would otherwise pay two full passes per request to
        # validate entries their k-DPP never reads (the slice scan
        # happens below, once candidates are known).
        sliced = request.candidates is not None and request.mode != "topk-rerank"
        quality = effective_request_quality(
            request, index, num_items, check_values=not sliced
        )
        candidates = request.candidates
        mode = request.mode
        local = None  # quality gathered at the candidate slice, once
        if mode == "topk-rerank":
            if candidates is not None:
                raise ValueError(
                    f"request {index}: topk-rerank builds its own candidate "
                    "pool; pass mode='map' to rerank an explicit slice"
                )
            pool = (
                self.rerank_pool if request.rerank_pool is None else request.rerank_pool
            )
            candidates = top_k_indices(quality, max(pool, request.k))
            local = quality[candidates]
            mode = "map"
        elif candidates is not None:
            candidates = np.asarray(candidates, dtype=np.int64)
            if candidates.ndim != 1 or len(set(candidates.tolist())) != len(candidates):
                raise ValueError(
                    f"request {index}: candidates must be unique item ids"
                )
            if np.any(candidates < 0) or np.any(candidates >= num_items):
                raise ValueError(
                    f"request {index}: candidate ids must be in [0, {num_items})"
                )
            local = quality[candidates]
            if not np.all(np.isfinite(local)) or np.any(local < 0):
                raise ValueError(
                    f"request {index}: quality must be finite and non-negative"
                )
        ground = num_items if candidates is None else candidates.shape[0]
        if request.k > ground:
            raise ValueError(
                f"request {index}: k={request.k} exceeds ground-set size {ground}"
            )
        # A zero-quality item can never be selected, so the *effective*
        # ground set is the positive-quality slice; catching k overruns
        # here turns an opaque downstream eigensolver/ESP failure into a
        # request-indexed error before any batch work starts.
        effective = int(np.count_nonzero(quality if local is None else local))
        if request.k > effective:
            raise ValueError(
                f"request {index}: k={request.k} exceeds the effective "
                f"candidate count {effective} (items with positive quality "
                f"left after exclusions and candidate slicing; ground set "
                f"has {ground})"
            )
        return _Resolved(
            index=index,
            quality=quality,
            k=int(request.k),
            mode=mode,
            report_mode=request.mode,
            candidates=candidates,
            seed=request.seed,
        )

    def _request_rng(self, resolved: _Resolved) -> np.random.Generator:
        if resolved.seed is None:
            with self._seed_lock:
                child = self._seed_sequence.spawn(1)[0]
            return np.random.default_rng(child)
        return np.random.default_rng(resolved.seed)

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[Request],
        snapshot: CatalogSnapshot | None = None,
    ) -> list[Response]:
        """Serve a batch of requests with shared catalog-scale work.

        ``snapshot`` pins the batch to one published catalog version
        (default: the current one); every response is stamped with it.
        """
        snap = self._pin(snapshot)
        resolved = [
            self._resolve(request, i, snap) for i, request in enumerate(requests)
        ]
        responses: list[Response | None] = [None] * len(resolved)
        groups: dict[tuple, list[_Resolved]] = {}
        for item in resolved:
            ground = (
                snap.num_items if item.candidates is None else item.candidates.shape[0]
            )
            key = (item.candidates is None, ground, item.k, item.mode)
            groups.setdefault(key, []).append(item)
        for (is_full, _, k, mode), members in groups.items():
            if is_full:
                self._serve_full_group(members, k, mode, responses, snap)
            else:
                self._serve_sliced_group(members, k, mode, responses, snap)
        return responses  # type: ignore[return-value]

    def _log_normalizers(
        self, eigenvalues: np.ndarray, members, k: int, mode: str
    ) -> np.ndarray:
        """Batched Eq. 6 normalizers, mirroring ``KDPP.from_factors``.

        Sample mode enforces the k-DPP's rank requirement with the same
        ``ValueError`` the per-request constructor raises; MAP mode
        tolerates deficient spectra (the greedy selection simply stops
        early, exactly like the sequential loop) and reports ``-inf``.
        """
        if k <= eigenvalues.shape[1]:
            log_normalizers = batched_log_esp(eigenvalues, k)
        else:
            log_normalizers = np.full(len(members), -np.inf)
        if mode == "sample" and not np.all(np.isfinite(log_normalizers)):
            bad = members[int(np.flatnonzero(~np.isfinite(log_normalizers))[0])]
            raise ValueError(
                f"request {bad.index}: factor rank is below k={k} (e_k of "
                "the dual spectrum is 0); a k-DPP needs at least k nonzero "
                "eigenvalues"
            )
        return log_normalizers

    def _phase1_coefficients(
        self,
        eigenvalues: np.ndarray,
        dual_vectors: np.ndarray,
        k: int,
        rngs: list[np.random.Generator],
    ) -> np.ndarray:
        """Batched phase 1: pick k dual eigenvectors per request and
        assemble the ``(B, r, k)`` lift coefficient stack
        ``W_b = Ĉ_b[:, chosen] / sqrt(λ_chosen)``.

        The ESP tables for every request are built in one vectorized
        recursion; the backward walks consume each request's own RNG
        stream, matching the per-user sampler exactly.
        """
        batch = eigenvalues.shape[0]
        scales = np.array(
            [kdpp_spectrum_scale(eigenvalues[b], k) for b in range(batch)]
        )
        scaled = eigenvalues / scales[:, None]
        tables = batched_esp_table(scaled, k)
        chosen = np.array(
            [
                select_eigenvectors_from_esp_table(scaled[b], tables[b], k, rngs[b])
                for b in range(batch)
            ],
            dtype=np.int64,
        )
        selected = np.take_along_axis(eigenvalues, chosen, axis=1)
        if np.any(selected <= 0):  # pragma: no cover - unreachable: zero
            # eigenvalues have zero inclusion probability in the walk
            raise RuntimeError("phase 1 selected a zero eigenvalue")
        coefficients = np.take_along_axis(dual_vectors, chosen[:, None, :], axis=2)
        return coefficients / np.sqrt(selected)[:, None, :]

    def _group_spectra(
        self, quality: np.ndarray, snap: CatalogSnapshot
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dual spectra for a full-catalog request group.

        Constant-quality requests (``q_u = c``) are served straight from
        the catalog's version-cached spectrum — ``C_u = c² VᵀV``, so the
        cached eigenvectors apply verbatim and the eigenvalues only
        rescale.  Everything else goes through the batched dual build
        (one matmul against the outer-product table) and one stacked
        ``eigh`` over the non-uniform rows.
        """
        batch, _ = quality.shape
        rank = snap.rank
        uniform_scale = np.full(batch, -1.0)
        for b in range(batch):
            first = quality[b, 0]
            if first > 0 and np.all(quality[b] == first):
                uniform_scale[b] = first
        eigenvalues = np.empty((batch, rank))
        dual_vectors = np.empty((batch, rank, rank))
        uniform = uniform_scale > 0
        if np.any(uniform):
            cached_values, cached_vectors = snap.dual_spectrum()
            scales = uniform_scale[uniform]
            eigenvalues[uniform] = scales[:, None] ** 2 * cached_values
            dual_vectors[uniform] = cached_vectors
        general = ~uniform
        if np.any(general):
            duals = snap.build_duals(quality[general] ** 2)
            values, vectors = np.linalg.eigh(duals)
            eigenvalues[general] = np.clip(values, 0.0, None)
            dual_vectors[general] = vectors
        return eigenvalues, dual_vectors

    def _group_log_probabilities(
        self,
        factor_rows: np.ndarray,
        log_normalizers: np.ndarray,
    ) -> np.ndarray:
        """``log P_k(S_b) = log det(L_{S_b}) - log Z_k`` for a ``(B, k, r)``
        stack of selected factor rows, via one stacked ``slogdet``."""
        grams = np.matmul(factor_rows, np.swapaxes(factor_rows, 1, 2))
        signs, logdets = np.linalg.slogdet(grams)
        logdets = np.where(signs > 0, logdets, -np.inf)
        return logdets - log_normalizers

    def _serve_full_group(
        self,
        members: list[_Resolved],
        k: int,
        mode: str,
        responses: list,
        snap: CatalogSnapshot,
    ) -> None:
        factors = snap.factors
        quality = np.stack([member.quality for member in members])
        eigenvalues, dual_vectors = self._group_spectra(quality, snap)
        log_normalizers = self._log_normalizers(eigenvalues, members, k, mode)
        if mode == "sample":
            rngs = [self._request_rng(member) for member in members]
            coefficients = self._phase1_coefficients(
                eigenvalues, dual_vectors, k, rngs
            )
            samples = batched_sample_elementary_shared(
                factors,
                quality,
                coefficients,
                rngs,
                gram_products=snap.gram_products(),
            )
        else:
            samples = batched_greedy_map_shared(factors, quality, k)
        self._emit(
            members, samples, log_normalizers, quality, None, k, responses, snap
        )

    def _serve_sliced_group(
        self,
        members: list[_Resolved],
        k: int,
        mode: str,
        responses: list,
        snap: CatalogSnapshot,
    ) -> None:
        candidates = np.stack([member.candidates for member in members])
        local_quality = np.stack(
            [member.quality[member.candidates] for member in members]
        )
        stack = local_quality[:, :, None] * snap.take_rows(candidates)
        duals = np.matmul(np.swapaxes(stack, 1, 2), stack)
        eigenvalues, dual_vectors = np.linalg.eigh(duals)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        log_normalizers = self._log_normalizers(eigenvalues, members, k, mode)
        if mode == "sample":
            rngs = [self._request_rng(member) for member in members]
            coefficients = self._phase1_coefficients(
                eigenvalues, dual_vectors, k, rngs
            )
            bases = np.matmul(stack, coefficients)
            samples = batched_sample_elementary_stacked(bases, rngs)
        else:
            samples = batched_greedy_map_stacked(stack, k)
        self._emit(
            members, samples, log_normalizers, None, stack, k, responses, snap
        )

    def _emit(
        self,
        members: list[_Resolved],
        samples: list[list[int]],
        log_normalizers: np.ndarray,
        quality: np.ndarray | None,
        stack: np.ndarray | None,
        k: int,
        responses: list,
        snap: CatalogSnapshot,
    ) -> None:
        """Attach log-probabilities and map local picks to catalog ids."""
        complete = [
            b
            for b, sample in enumerate(samples)
            if len(sample) == k and np.isfinite(log_normalizers[b])
        ]
        log_probabilities: dict[int, float] = {}
        if complete:
            if stack is None:
                picks = np.array([samples[b] for b in complete], dtype=np.int64)
                rows = snap.factors[picks] * quality[complete][
                    np.arange(len(complete))[:, None], picks
                ][:, :, None]
            else:
                picks = np.array([samples[b] for b in complete], dtype=np.int64)
                rows = stack[
                    np.asarray(complete)[:, None], picks
                ]
            values = self._group_log_probabilities(rows, log_normalizers[complete])
            log_probabilities = dict(zip(complete, values))
        for b, member in enumerate(members):
            local = samples[b]
            if member.candidates is None:
                items = [int(i) for i in local]
            else:
                items = [int(member.candidates[i]) for i in local]
            value = log_probabilities.get(b)
            responses[member.index] = Response(
                items=items,
                log_probability=None if value is None else float(value),
                mode=member.report_mode,
                k=member.k,
                version=snap.version,
            )

    # ------------------------------------------------------------------
    # Sequential reference (the PR 2 loop)
    # ------------------------------------------------------------------
    def serve_sequential(
        self,
        requests: Sequence[Request],
        snapshot: CatalogSnapshot | None = None,
    ) -> list[Response]:
        """One ``KDPP.from_factors`` / ``greedy_map`` per request.

        This is exactly the serving loop PR 2 made fast for a *single*
        request — rebuild the low-rank kernel, eigendecompose its dual,
        sample or rerank — repeated per request with no shared work.  It
        is both the benchmark baseline and the parity oracle: for seeded
        requests, :meth:`serve` must return identical items.
        """
        snap = self._pin(snapshot)
        responses: list[Response] = []
        for i, request in enumerate(requests):
            member = self._resolve(request, i, snap)
            if member.candidates is None:
                factors = member.quality[:, None] * snap.factors
            else:
                factors = (
                    member.quality[member.candidates][:, None]
                    * snap.take_rows(member.candidates)
                )
            lowrank = LowRankKernel(factors)
            if member.mode == "sample":
                dpp = KDPP.from_factors(lowrank, member.k)
                local = dpp.sample(self._request_rng(member))
                log_probability = dpp.log_subset_probability(local)
            else:
                local = greedy_map(lowrank, member.k)
                if len(local) == member.k:
                    dpp = KDPP.from_factors(lowrank, member.k)
                    log_probability = dpp.log_subset_probability(local)
                else:
                    log_probability = None
            if member.candidates is None:
                items = [int(item) for item in local]
            else:
                items = [int(member.candidates[item]) for item in local]
            responses.append(
                Response(
                    items=items,
                    log_probability=log_probability,
                    mode=member.report_mode,
                    k=member.k,
                    version=snap.version,
                )
            )
        return responses
