"""Batched multi-user k-DPP serving.

One :class:`KDPPServer` turns a batch of personalization requests over a
shared :class:`~repro.serving.catalog.ItemCatalog` into recommendation
lists.  Per Eq. 2 a request only reweights the shared factors — its
kernel is ``L_u = Diag(q_u) V Vᵀ Diag(q_u)`` — so the whole batch shares
every catalog-sized computation:

* all dual kernels ``C_u = Vᵀ Diag(q_u²) V`` are one ``(B, M)``-by-table
  matmul (:meth:`ItemCatalog.build_duals`);
* one stacked ``eigh`` factorizes every request's dual;
* one :func:`~repro.dpp.esp.batched_log_esp` produces every Eq. 6
  normalizer, heterogeneous ``k`` included;
* sampling and greedy MAP run vectorized across the batch
  (:func:`~repro.dpp.kdpp.batched_sample_elementary_shared`,
  :func:`~repro.dpp.map_inference.batched_greedy_map_shared`), with each
  request consuming its own seeded RNG stream so a batch reproduces the
  per-user ``KDPP.from_factors(...).sample(rng)`` loop draw for draw.

Request semantics
-----------------
``mode`` is one of:

* ``"sample"`` — an exact k-DPP draw (diversity by randomization);
* ``"map"`` — greedy MAP over the ground set (deterministic);
* ``"topk-rerank"`` — restrict to the request's top ``rerank_pool``
  items by quality, then greedy MAP inside that slice (the classic
  serving pattern of post-hoc DPP re-rankers).

``exclude`` removes items from the ground set by zeroing their quality:
a zero factor row can never be selected and contributes nothing to the
dual kernel, so this is exactly equivalent to deleting the rows — while
keeping every request in the batch the same shape.  ``candidates``
restricts a request to an explicit item slice (the
:class:`~repro.serving.bridge.RecommenderBridge` uses it for
user-specific top-N candidate pools); results are reported in catalog
ids either way.

Session-aware serving
---------------------
Four request fields extend the model to multi-page sessions and
constrained slates; all default to "off", and requests that leave them
off are served through the exact pre-session code paths (bit-identical
results, seeded samples included):

* ``alpha`` — per-request diversity strength.  The effective quality is
  ``q_u^(1/alpha)``: ``alpha=1`` is the paper's Eq. 2 kernel, larger
  values flatten quality so the determinant's diversity term dominates
  (ReAgent's DPP-wrapper knob), smaller values sharpen quality toward
  plain top-k.  A monotone transform, so funnels and rerank pools are
  unchanged — only the kernel trade-off moves.
* ``history`` — items already shown earlier in the session.  They are
  zeroed out of the ground set like exclusions *and* conditioned out of
  the kernel: the low-rank Schur complement of ``L_u`` given a shown
  set A is exactly the kernel of the factor rows deflated by an
  orthonormal basis ``U`` of ``span{v_h : h ∈ A}`` (``B̃ = B(I - UUᵀ)``,
  dual ``C̃ = PCP`` with ``P = I - UUᵀ`` — still r × r, one O(r²h)
  correction per request after the shared batched dual build).  Samples
  and MAP slates are therefore diverse *against the pages the user
  already saw*, not just internally.
* ``pins`` — must-include items (MAP modes only).  They occupy the
  front of the returned list and seed the greedy Gram–Schmidt state, so
  the remaining ``k - |pins|`` picks maximize the determinant *given*
  the pins.
* ``quotas`` / ``categories`` — per-category minimum counts (MAP modes
  only).  The batched greedy loop restricts its argmax to deficit
  categories whenever the remaining slots are all needed to close the
  quotas; the funnel guarantees each quota'd category enough
  positive-quality pool members.

``serve_sequential`` is the PR 2 one-request-at-a-time loop over the
same request semantics — the parity oracle for the tests and the
baseline the serving benchmark measures against.  One caveat: greedy
MAP under *exactly* tied marginal gains (perfectly uniform quality on a
unit-diagonal catalog) may break ties differently on the two paths —
each returns a valid greedy solution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..dpp.esp import batched_esp_table, batched_log_esp
from ..dpp.kdpp import (
    KDPP,
    batched_sample_elementary_shared,
    batched_sample_elementary_stacked,
    kdpp_spectrum_scale,
    select_eigenvectors_from_esp_table,
)
from ..dpp.kernels import LowRankKernel
from ..dpp.map_inference import (
    batched_greedy_map_shared,
    batched_greedy_map_shared_session,
    batched_greedy_map_stacked,
    batched_greedy_map_stacked_session,
    greedy_map,
)
from ..utils.topk import top_k_indices
from .catalog import CatalogSnapshot, ItemCatalog
from .config import UNSET, ServingConfig, resolve_config
from .observability import StageRecorder, stage_span

__all__ = [
    "Request",
    "Response",
    "KDPPServer",
    "REQUEST_MODES",
    "validate_request_mode_and_k",
    "effective_request_quality",
    "extend_pool_for_constraints",
]

REQUEST_MODES = ("sample", "map", "topk-rerank")

#: ceiling on ``quality ** (1/alpha)`` — keeps extreme alpha values from
#: overflowing to inf (the kernel only needs quality *ratios*)
ALPHA_QUALITY_CLIP = 1e150


def _as_ids(values, dtype=np.int64) -> np.ndarray | None:
    """``None``/empty → ``None``; otherwise a 1-D int64 id array."""
    if values is None:
        return None
    ids = np.asarray(values, dtype=dtype)
    if ids.size == 0:
        return None
    return ids.reshape(-1)


def _orthonormal_columns(rows: np.ndarray) -> np.ndarray | None:
    """Orthonormal basis (r, s) of the span of ``rows`` (h, r), rank-
    revealing: linearly dependent rows contribute no spurious basis
    vector (a QR would), so conditioning never over-deflates."""
    if rows.size == 0:
        return None
    u, s, _ = np.linalg.svd(rows.T, full_matrices=False)
    if s.size == 0 or s[0] <= 0.0:
        return None
    keep = s > max(rows.shape) * np.finfo(np.float64).eps * s[0]
    if not np.any(keep):
        return None
    return np.ascontiguousarray(u[:, keep])


def validate_request_mode_and_k(request: "Request", index: int) -> None:
    """Shared field checks — one source of truth for every serving
    front end (the engine's ``_resolve`` and the sharded funnel)."""
    if request.mode not in REQUEST_MODES:
        raise ValueError(
            f"request {index}: mode must be one of {REQUEST_MODES}, "
            f"got {request.mode!r}"
        )
    if request.k < 1:
        raise ValueError(f"request {index}: k must be positive, got {request.k}")
    if request.rerank_pool is not None and request.rerank_pool < 1:
        raise ValueError(
            f"request {index}: rerank_pool must be positive, got "
            f"{request.rerank_pool}"
        )


def effective_request_quality(
    request: "Request", index: int, num_items: int, check_values: bool = True
) -> np.ndarray:
    """The request's catalog-sized quality with exclusions *and* history
    zeroed (shown items must never re-enter a pool or a slate).

    Shape and exclusion-id bounds are always enforced;
    ``check_values=False`` defers the O(M) finiteness/negativity scan to
    a later ``_resolve`` pass (the sharded funnel uses this so lowered
    requests are not value-scanned twice).
    """
    quality = np.asarray(request.quality, dtype=np.float64)
    if quality.shape != (num_items,):
        raise ValueError(
            f"request {index}: quality shape {quality.shape} does not "
            f"match catalog size {num_items}"
        )
    if check_values and (
        not np.all(np.isfinite(quality)) or np.any(quality < 0)
    ):
        raise ValueError(
            f"request {index}: quality must be finite and non-negative"
        )
    zero = []
    if request.exclude is not None and len(request.exclude) > 0:
        exclude = np.asarray(request.exclude, dtype=np.int64)
        if np.any(exclude < 0) or np.any(exclude >= num_items):
            raise ValueError(
                f"request {index}: exclusion ids must be in [0, {num_items})"
            )
        zero.append(exclude)
    history = _as_ids(request.history)
    if history is not None:
        if np.any(history < 0) or np.any(history >= num_items):
            raise ValueError(
                f"request {index}: history ids must be in [0, {num_items})"
            )
        zero.append(history)
    if zero:
        quality = quality.copy()
        quality[np.concatenate(zero)] = 0.0
    return quality


def extend_pool_for_constraints(
    pool: np.ndarray,
    quality: np.ndarray,
    pins: np.ndarray | None,
    quotas: Mapping[int, int] | None,
    categories: np.ndarray | None,
) -> np.ndarray:
    """Union pins and per-category quota tops into a candidate pool.

    Used wherever serving builds a pool on the caller's behalf (the
    engine's ``topk-rerank`` lowering, the sharded funnel): the pool
    stays the pure quality funnel output — so funnel caches stay
    reusable across constraint changes — and the constraint extras are
    appended after it in deterministic order (pins in request order,
    then quota top-ups by ascending category, each descending quality).
    Explicit caller-provided ``candidates`` are never extended.
    """
    pins = _as_ids(pins)
    if pins is None and not quotas:
        return pool
    pool = np.asarray(pool, dtype=np.int64)
    present = set(pool.tolist())
    extras: list[int] = []
    if pins is not None:
        for pin in pins.tolist():
            if pin not in present:
                extras.append(pin)
                present.add(pin)
    if quotas:
        merged = np.concatenate([pool, np.asarray(extras, dtype=np.int64)])
        for category, need in sorted(quotas.items()):
            in_pool = int(
                np.count_nonzero(
                    (categories[merged] == category) & (quality[merged] > 0)
                )
            )
            if in_pool >= need:
                continue
            mask = (categories == category) & (quality > 0)
            mask[merged] = False
            eligible = np.flatnonzero(mask)
            if eligible.size == 0:
                continue
            order = eligible[
                np.argsort(-quality[eligible], kind="stable")[: need - in_pool]
            ]
            extras.extend(int(item) for item in order)
            merged = np.concatenate([merged, order])
    if not extras:
        return pool
    return np.concatenate([pool, np.asarray(extras, dtype=np.int64)])


@dataclass(frozen=True)
class Request:
    """One user's recommendation request against the shared catalog.

    ``quality`` is the catalog-sized vector of positive per-item quality
    scores ``q_u`` (Eq. 2 / Eq. 13) — typically produced by a trained
    :class:`~repro.models.base.Recommender` through the
    :class:`~repro.serving.bridge.RecommenderBridge`.

    ``user`` is an optional stable requester id.  The engine itself
    ignores it; the sharded funnel's
    :class:`~repro.retrieval.cache.FunnelCache` keys on it, under the
    contract that one ``user`` id maps to one quality vector per catalog
    version (the bridge guarantees this via its score snapshot).

    Session fields (see the module docstring for the semantics):
    ``alpha`` rescales quality to ``q_u^(1/alpha)`` (diversity strength;
    1.0 is the neutral pre-session kernel), ``history`` conditions
    already-shown items out of the kernel, ``pins`` force-includes items
    at the front of a MAP slate, and ``quotas`` (with the catalog-sized
    ``categories`` labeling) imposes per-category minimum counts on a
    MAP slate.  All default to off; :meth:`validate` is the single
    authority on their invariants.

    ``deadline`` is an absolute latency budget in the serving clock's
    domain (the injected micro-batcher clock; ``time.monotonic`` by
    default).  The engine itself ignores it — the resilience layer
    (:mod:`repro.serving.resilience`) degrades a request whose remaining
    budget cannot cover its mode and fails an expired one with
    :class:`~repro.serving.resilience.DeadlineExceeded` instead of
    serving it late.  ``None`` (the default) means unbounded.
    """

    quality: np.ndarray
    k: int
    mode: str = "sample"
    exclude: np.ndarray | None = None
    candidates: np.ndarray | None = None
    seed: int | None = None
    rerank_pool: int | None = None
    user: int | None = None
    alpha: float = 1.0
    history: np.ndarray | None = None
    pins: np.ndarray | None = None
    quotas: Mapping[int, int] | None = None
    categories: np.ndarray | None = None
    deadline: float | None = None

    def validate(self, num_items: int, index: int = 0) -> None:
        """Check every structural field invariant, raising request-
        indexed ``ValueError``s (the quality *values* are scanned
        separately by :func:`effective_request_quality`, which knows
        whether the request is sliced).

        This is the one source of truth for request validation — the
        engine's ``_resolve`` and the sharded funnel's ``_lower`` both
        start here instead of running their own ad-hoc checks.
        """
        validate_request_mode_and_k(self, index)
        if self.deadline is not None and not np.isfinite(float(self.deadline)):
            raise ValueError(
                f"request {index}: deadline must be a finite clock time, "
                f"got {self.deadline}"
            )
        alpha = float(self.alpha)
        if not np.isfinite(alpha) or alpha <= 0:
            raise ValueError(
                f"request {index}: alpha must be a positive finite number, "
                f"got {self.alpha}"
            )
        history = _as_ids(self.history)
        if history is not None and (
            np.any(history < 0) or np.any(history >= num_items)
        ):
            raise ValueError(
                f"request {index}: history ids must be in [0, {num_items})"
            )
        pins = _as_ids(self.pins)
        if pins is not None:
            if self.mode == "sample":
                raise ValueError(
                    f"request {index}: pins require a MAP mode ('map' or "
                    "'topk-rerank'); a sample cannot force-include items"
                )
            if np.any(pins < 0) or np.any(pins >= num_items):
                raise ValueError(
                    f"request {index}: pin ids must be in [0, {num_items})"
                )
            if len(set(pins.tolist())) != pins.shape[0]:
                raise ValueError(f"request {index}: pin ids must be unique")
            if pins.shape[0] > self.k:
                raise ValueError(
                    f"request {index}: {pins.shape[0]} pins exceed k={self.k}"
                )
            exclude = _as_ids(self.exclude)
            if exclude is not None and np.any(np.isin(pins, exclude)):
                raise ValueError(
                    f"request {index}: pins overlap the exclusion set"
                )
            if history is not None and np.any(np.isin(pins, history)):
                raise ValueError(
                    f"request {index}: pins overlap the session history"
                )
            if self.candidates is not None and not np.all(
                np.isin(pins, np.asarray(self.candidates, dtype=np.int64))
            ):
                raise ValueError(
                    f"request {index}: pins must be members of the explicit "
                    "candidate slice"
                )
        if self.quotas:
            if self.mode == "sample":
                raise ValueError(
                    f"request {index}: quotas require a MAP mode ('map' or "
                    "'topk-rerank')"
                )
            if self.categories is None:
                raise ValueError(
                    f"request {index}: quotas need a catalog-sized "
                    "'categories' labeling"
                )
            categories = np.asarray(self.categories)
            if categories.shape != (num_items,) or not np.issubdtype(
                categories.dtype, np.integer
            ):
                raise ValueError(
                    f"request {index}: categories must be an integer array "
                    f"of shape ({num_items},), got shape {categories.shape} "
                    f"dtype {categories.dtype}"
                )
            total = 0
            for category, need in self.quotas.items():
                if int(need) < 1:
                    raise ValueError(
                        f"request {index}: quota minimum for category "
                        f"{category} must be positive, got {need}"
                    )
                total += int(need)
            if total > self.k:
                raise ValueError(
                    f"request {index}: quota minimums sum to {total}, "
                    f"exceeding k={self.k}"
                )


@dataclass(frozen=True)
class Response:
    """Result of one request (immutable — callers and caches share
    instances safely; derive variants with :func:`dataclasses.replace`).

    ``items`` are catalog ids in selection order; pinned items lead.
    ``log_probability`` is the set's k-DPP log-probability under the
    request's personalized kernel — conditioned on the request's
    ``history`` when one was given — and is ``None`` exactly when
    greedy MAP stopped early with fewer than ``k`` items (exhausted
    rank, unsatisfiable quota, or all remaining marginal gains below
    the stopping epsilon); the short ``items`` list is still a valid
    prefix slate.  ``version`` stamps the catalog snapshot the request
    was served against — under live snapshot hot-swaps it tells the
    caller exactly which factor generation produced the list.

    ``degraded`` / ``served_mode`` are the overload stamps (see
    :mod:`repro.serving.resilience`): ``degraded=True`` means queue or
    deadline pressure walked the request down the degradation ladder and
    ``served_mode`` names the rung that actually produced ``items``
    (``mode`` still echoes what the caller asked for).  On the terminal
    ``"quality-topk"`` rung no kernel runs, so ``log_probability`` is
    ``None`` for the same reason as a short greedy slate: there is no
    exact k-DPP probability to report.  ``served_mode=None`` on a
    non-degraded response means "as requested".

    ``trace`` carries the finished per-stage
    :class:`~repro.serving.observability.Trace` when the request was
    sampled for tracing (``ServingConfig.trace_rate``), else ``None``.
    It is diagnostic payload, excluded from equality and repr — two
    responses that served the same slate compare equal whether or not
    one was traced."""

    items: list[int]
    log_probability: float | None
    mode: str
    k: int
    cached: bool = False
    version: int | None = None
    degraded: bool = False
    served_mode: str | None = None
    trace: Any | None = field(default=None, compare=False, repr=False)


@dataclass
class _Resolved:
    """A validated request: zero-quality exclusions/history applied,
    alpha folded into the quality, topk-rerank lowered to MAP over an
    explicit candidate slice."""

    index: int
    quality: np.ndarray  # catalog-sized effective quality (alpha applied)
    k: int
    mode: str  # "sample" | "map" after lowering
    report_mode: str  # the caller's mode, echoed in the Response
    candidates: np.ndarray | None
    seed: int | None
    history: np.ndarray | None = None
    pins: np.ndarray | None = None
    quotas: Mapping[int, int] | None = None
    categories: np.ndarray | None = None

    @property
    def has_session(self) -> bool:
        """True when the request needs the session serving paths.

        ``alpha`` deliberately does not count: it only rescales the
        quality vector, so alpha-only requests ride the original
        (bit-stable) group paths.
        """
        return (
            self.history is not None
            or self.pins is not None
            or bool(self.quotas)
        )


class KDPPServer:
    """Batched k-DPP recommendation engine over one :class:`ItemCatalog`.

    Configure with ``config=ServingConfig(...)``; the legacy
    ``rerank_pool=`` kwarg still works but is deprecated.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        rerank_pool: int = UNSET,
        config: ServingConfig | None = None,
    ) -> None:
        self.config = resolve_config(
            config, {"rerank_pool": rerank_pool}, type(self).__name__
        )
        self.catalog = catalog
        self.rerank_pool = self.config.rerank_pool
        # Unseeded requests draw from generators spawned off one entropy
        # source under a lock: numpy Generators are not thread-safe, and
        # the micro-batcher serves batches from worker threads.
        self._seed_sequence = np.random.SeedSequence()
        self._seed_lock = threading.Lock()

    def _pin(self, snapshot: CatalogSnapshot | None) -> CatalogSnapshot:
        """The snapshot a batch serves against, captured exactly once.

        The runtime passes the snapshot each request was *admitted*
        under, so in-flight work survives a concurrent
        :meth:`ItemCatalog.refresh`; direct callers get the catalog's
        current version.
        """
        return snapshot if snapshot is not None else self.catalog.snapshot()

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, request: Request, index: int, snap: CatalogSnapshot
    ) -> _Resolved:
        num_items = snap.num_items
        request.validate(num_items, index)
        # The O(M) value scan runs on whatever can reach a kernel: the
        # full vector for full-catalog (and topk-rerank, which ranks the
        # whole vector) requests, but only the candidate slice for
        # explicitly-sliced ones — funnel-lowered requests at catalog
        # scale would otherwise pay two full passes per request to
        # validate entries their k-DPP never reads (the slice scan
        # happens below, once candidates are known).
        sliced = request.candidates is not None and request.mode != "topk-rerank"
        quality = effective_request_quality(
            request, index, num_items, check_values=not sliced
        )
        alpha = float(request.alpha)
        if alpha != 1.0:
            # q^(1/alpha), guarded: negative entries (only reachable on
            # the deferred-scan sliced path) power to nan and fail the
            # slice scan below with the standard quality error.
            with np.errstate(invalid="ignore", over="ignore"):
                quality = np.power(quality, 1.0 / alpha)
            np.minimum(quality, ALPHA_QUALITY_CLIP, out=quality)
        history = _as_ids(request.history)
        pins = _as_ids(request.pins)
        candidates = request.candidates
        mode = request.mode
        local = None  # quality gathered at the candidate slice, once
        if mode == "topk-rerank":
            if candidates is not None:
                raise ValueError(
                    f"request {index}: topk-rerank builds its own candidate "
                    "pool; pass mode='map' to rerank an explicit slice"
                )
            pool = (
                self.rerank_pool if request.rerank_pool is None else request.rerank_pool
            )
            candidates = top_k_indices(quality, max(pool, request.k))
            candidates = extend_pool_for_constraints(
                candidates, quality, pins, request.quotas, request.categories
            )
            local = quality[candidates]
            mode = "map"
        elif candidates is not None:
            candidates = np.asarray(candidates, dtype=np.int64)
            if candidates.ndim != 1 or len(set(candidates.tolist())) != len(candidates):
                raise ValueError(
                    f"request {index}: candidates must be unique item ids"
                )
            if np.any(candidates < 0) or np.any(candidates >= num_items):
                raise ValueError(
                    f"request {index}: candidate ids must be in [0, {num_items})"
                )
            local = quality[candidates]
            if not np.all(np.isfinite(local)) or np.any(local < 0):
                raise ValueError(
                    f"request {index}: quality must be finite and non-negative"
                )
        ground = num_items if candidates is None else candidates.shape[0]
        if request.k > ground:
            raise ValueError(
                f"request {index}: k={request.k} exceeds ground-set size {ground}"
            )
        # A zero-quality item can never be selected, so the *effective*
        # ground set is the positive-quality slice; catching k overruns
        # here turns an opaque downstream eigensolver/ESP failure into a
        # request-indexed error before any batch work starts.
        effective = int(np.count_nonzero(quality if local is None else local))
        if request.k > effective:
            raise ValueError(
                f"request {index}: k={request.k} exceeds the effective "
                f"candidate count {effective} (items with positive quality "
                f"left after exclusions and candidate slicing; ground set "
                f"has {ground})"
            )
        if pins is not None and np.any(quality[pins] <= 0):
            raise ValueError(
                f"request {index}: pins must have positive effective "
                "quality (an excluded or zero-quality item cannot be pinned)"
            )
        return _Resolved(
            index=index,
            quality=quality,
            k=int(request.k),
            mode=mode,
            report_mode=request.mode,
            candidates=candidates,
            seed=request.seed,
            history=history,
            pins=pins,
            quotas=dict(request.quotas) if request.quotas else None,
            categories=(
                np.asarray(request.categories, dtype=np.int64)
                if request.quotas
                else None
            ),
        )

    def _request_rng(self, resolved: _Resolved) -> np.random.Generator:
        if resolved.seed is None:
            with self._seed_lock:
                child = self._seed_sequence.spawn(1)[0]
            return np.random.default_rng(child)
        return np.random.default_rng(resolved.seed)

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[Request],
        snapshot: CatalogSnapshot | None = None,
        stages: StageRecorder | None = None,
    ) -> list[Response]:
        """Serve a batch of requests with shared catalog-scale work.

        ``snapshot`` pins the batch to one published catalog version
        (default: the current one); every response is stamped with it.
        ``stages`` (optional, wired by the resilience layer when the
        batch holds a traced request) collects the engine's batch-phase
        spans — resolve / dual_build / eigh / normalizer / selection /
        emit — through the recorder's injected clock.
        """
        snap = self._pin(snapshot)
        with stage_span(stages, "resolve"):
            resolved = [
                self._resolve(request, i, snap)
                for i, request in enumerate(requests)
            ]
        responses: list[Response | None] = [None] * len(resolved)
        groups: dict[tuple, list[_Resolved]] = {}
        for item in resolved:
            ground = (
                snap.num_items if item.candidates is None else item.candidates.shape[0]
            )
            # Session requests (history/pins/quotas) are grouped apart
            # from clean ones: clean groups run the original code paths
            # verbatim, which is what keeps the default request shape
            # bit-identical to pre-session serving.
            key = (
                item.candidates is None,
                ground,
                item.k,
                item.mode,
                item.has_session,
            )
            groups.setdefault(key, []).append(item)
        for (is_full, _, k, mode, has_session), members in groups.items():
            if not has_session:
                if is_full:
                    self._serve_full_group(members, k, mode, responses, snap, stages)
                else:
                    self._serve_sliced_group(members, k, mode, responses, snap, stages)
            elif is_full:
                self._serve_full_session_group(members, k, mode, responses, snap, stages)
            else:
                self._serve_sliced_session_group(members, k, mode, responses, snap, stages)
        return responses  # type: ignore[return-value]

    def _log_normalizers(
        self, eigenvalues: np.ndarray, members, k: int, mode: str
    ) -> np.ndarray:
        """Batched Eq. 6 normalizers, mirroring ``KDPP.from_factors``.

        Sample mode enforces the k-DPP's rank requirement with the same
        ``ValueError`` the per-request constructor raises; MAP mode
        tolerates deficient spectra (the greedy selection simply stops
        early, exactly like the sequential loop) and reports ``-inf``.
        """
        if k <= eigenvalues.shape[1]:
            log_normalizers = batched_log_esp(eigenvalues, k)
        else:
            log_normalizers = np.full(len(members), -np.inf)
        if mode == "sample" and not np.all(np.isfinite(log_normalizers)):
            bad = members[int(np.flatnonzero(~np.isfinite(log_normalizers))[0])]
            hint = (
                " (history conditioning removes one eigenvalue per "
                "independent shown item)"
                if bad.history is not None
                else ""
            )
            raise ValueError(
                f"request {bad.index}: factor rank is below k={k} (e_k of "
                "the dual spectrum is 0); a k-DPP needs at least k nonzero "
                f"eigenvalues{hint}"
            )
        return log_normalizers

    def _phase1_coefficients(
        self,
        eigenvalues: np.ndarray,
        dual_vectors: np.ndarray,
        k: int,
        rngs: list[np.random.Generator],
    ) -> np.ndarray:
        """Batched phase 1: pick k dual eigenvectors per request and
        assemble the ``(B, r, k)`` lift coefficient stack
        ``W_b = Ĉ_b[:, chosen] / sqrt(λ_chosen)``.

        The ESP tables for every request are built in one vectorized
        recursion; the backward walks consume each request's own RNG
        stream, matching the per-user sampler exactly.
        """
        batch = eigenvalues.shape[0]
        scales = np.array(
            [kdpp_spectrum_scale(eigenvalues[b], k) for b in range(batch)]
        )
        scaled = eigenvalues / scales[:, None]
        tables = batched_esp_table(scaled, k)
        chosen = np.array(
            [
                select_eigenvectors_from_esp_table(scaled[b], tables[b], k, rngs[b])
                for b in range(batch)
            ],
            dtype=np.int64,
        )
        selected = np.take_along_axis(eigenvalues, chosen, axis=1)
        if np.any(selected <= 0):  # pragma: no cover - unreachable: zero
            # eigenvalues have zero inclusion probability in the walk
            raise RuntimeError("phase 1 selected a zero eigenvalue")
        coefficients = np.take_along_axis(dual_vectors, chosen[:, None, :], axis=2)
        return coefficients / np.sqrt(selected)[:, None, :]

    def _group_spectra(
        self,
        quality: np.ndarray,
        snap: CatalogSnapshot,
        stages: StageRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dual spectra for a full-catalog request group.

        Constant-quality requests (``q_u = c``) are served straight from
        the catalog's version-cached spectrum — ``C_u = c² VᵀV``, so the
        cached eigenvectors apply verbatim and the eigenvalues only
        rescale.  Everything else goes through the batched dual build
        (one matmul against the outer-product table) and one stacked
        ``eigh`` over the non-uniform rows.
        """
        batch, _ = quality.shape
        rank = snap.rank
        uniform_scale = np.full(batch, -1.0)
        for b in range(batch):
            first = quality[b, 0]
            if first > 0 and np.all(quality[b] == first):
                uniform_scale[b] = first
        eigenvalues = np.empty((batch, rank))
        dual_vectors = np.empty((batch, rank, rank))
        uniform = uniform_scale > 0
        if np.any(uniform):
            cached_values, cached_vectors = snap.dual_spectrum()
            scales = uniform_scale[uniform]
            eigenvalues[uniform] = scales[:, None] ** 2 * cached_values
            dual_vectors[uniform] = cached_vectors
        general = ~uniform
        if np.any(general):
            with stage_span(stages, "dual_build"):
                duals = snap.build_duals(quality[general] ** 2)
            with stage_span(stages, "eigh"):
                values, vectors = np.linalg.eigh(duals)
            eigenvalues[general] = np.clip(values, 0.0, None)
            dual_vectors[general] = vectors
        return eigenvalues, dual_vectors

    def _group_log_probabilities(
        self,
        factor_rows: np.ndarray,
        log_normalizers: np.ndarray,
    ) -> np.ndarray:
        """``log P_k(S_b) = log det(L_{S_b}) - log Z_k`` for a ``(B, k, r)``
        stack of selected factor rows, via one stacked ``slogdet``."""
        grams = np.matmul(factor_rows, np.swapaxes(factor_rows, 1, 2))
        signs, logdets = np.linalg.slogdet(grams)
        logdets = np.where(signs > 0, logdets, -np.inf)
        return logdets - log_normalizers

    def _serve_full_group(
        self,
        members: list[_Resolved],
        k: int,
        mode: str,
        responses: list,
        snap: CatalogSnapshot,
        stages: StageRecorder | None = None,
    ) -> None:
        factors = snap.factors
        quality = np.stack([member.quality for member in members])
        eigenvalues, dual_vectors = self._group_spectra(quality, snap, stages)
        with stage_span(stages, "normalizer"):
            log_normalizers = self._log_normalizers(eigenvalues, members, k, mode)
        with stage_span(stages, "selection"):
            if mode == "sample":
                rngs = [self._request_rng(member) for member in members]
                coefficients = self._phase1_coefficients(
                    eigenvalues, dual_vectors, k, rngs
                )
                samples = batched_sample_elementary_shared(
                    factors,
                    quality,
                    coefficients,
                    rngs,
                    gram_products=snap.gram_products(),
                )
            else:
                samples = batched_greedy_map_shared(factors, quality, k)
        with stage_span(stages, "emit"):
            self._emit(
                members, samples, log_normalizers, quality, None, k, responses, snap
            )

    def _serve_sliced_group(
        self,
        members: list[_Resolved],
        k: int,
        mode: str,
        responses: list,
        snap: CatalogSnapshot,
        stages: StageRecorder | None = None,
    ) -> None:
        with stage_span(stages, "dual_build"):
            candidates = np.stack([member.candidates for member in members])
            local_quality = np.stack(
                [member.quality[member.candidates] for member in members]
            )
            stack = local_quality[:, :, None] * snap.take_rows(candidates)
            duals = np.matmul(np.swapaxes(stack, 1, 2), stack)
        with stage_span(stages, "eigh"):
            eigenvalues, dual_vectors = np.linalg.eigh(duals)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        with stage_span(stages, "normalizer"):
            log_normalizers = self._log_normalizers(eigenvalues, members, k, mode)
        with stage_span(stages, "selection"):
            if mode == "sample":
                rngs = [self._request_rng(member) for member in members]
                coefficients = self._phase1_coefficients(
                    eigenvalues, dual_vectors, k, rngs
                )
                bases = np.matmul(stack, coefficients)
                samples = batched_sample_elementary_stacked(bases, rngs)
            else:
                samples = batched_greedy_map_stacked(stack, k)
        with stage_span(stages, "emit"):
            self._emit(
                members, samples, log_normalizers, None, stack, k, responses, snap
            )

    # ------------------------------------------------------------------
    # Session serving (history conditioning, pins, quotas)
    # ------------------------------------------------------------------
    def _session_units(
        self, history: np.ndarray | None, snap: CatalogSnapshot
    ) -> np.ndarray | None:
        """Orthonormal ``(r, h')`` basis of the history rows' span (the
        deflation directions of the conditioned kernel), or ``None``."""
        if history is None:
            return None
        return _orthonormal_columns(snap.take_rows(history))

    def _local_pins(self, member: _Resolved) -> np.ndarray | None:
        """The member's pins as local ground-set ids (positions inside
        its candidate slice when one exists, catalog ids otherwise)."""
        if member.pins is None:
            return None
        if member.candidates is None:
            return member.pins
        position = {int(item): i for i, item in enumerate(member.candidates)}
        return np.array(
            [position[int(pin)] for pin in member.pins], dtype=np.int64
        )

    def _session_map_inputs(
        self,
        members: list[_Resolved],
        units: list[np.ndarray | None],
        snap: CatalogSnapshot,
        stack: np.ndarray | None,
    ) -> tuple[np.ndarray | None, list, list | None]:
        """Assemble the constrained-greedy inputs for one session group:
        zero-padded seed directions, per-member local pins and quota
        specs.

        On the full-catalog path (``stack=None``) each member's seeds
        span its history *and* pin rows (both from the shared factors);
        on the sliced path the stack rows are already history-deflated,
        so the seeds span only the (deflated) pinned rows.
        """
        bases: list[np.ndarray | None] = []
        pins: list[np.ndarray | None] = []
        quota: list[tuple | None] = []
        any_quota = False
        for b, member in enumerate(members):
            local_pins = self._local_pins(member)
            pins.append(local_pins)
            if stack is None:
                rows = []
                if member.history is not None:
                    rows.append(snap.take_rows(member.history))
                if member.pins is not None:
                    rows.append(snap.take_rows(member.pins))
                basis = (
                    _orthonormal_columns(np.concatenate(rows)) if rows else None
                )
            elif local_pins is not None:
                basis = _orthonormal_columns(stack[b, local_pins])
            else:
                basis = None
            bases.append(basis)
            if member.quotas:
                categories = member.categories
                if member.candidates is not None:
                    categories = categories[member.candidates]
                quota.append((categories, member.quotas))
                any_quota = True
            else:
                quota.append(None)
        widths = [0 if basis is None else basis.shape[1] for basis in bases]
        seeds = None
        if any(widths):
            seeds = np.zeros(
                (len(members), max(widths), snap.rank), dtype=np.float64
            )
            for b, basis in enumerate(bases):
                if basis is not None:
                    seeds[b, : basis.shape[1]] = basis.T
        return seeds, pins, (quota if any_quota else None)

    def _serve_full_session_group(
        self,
        members: list[_Resolved],
        k: int,
        mode: str,
        responses: list,
        snap: CatalogSnapshot,
        stages: StageRecorder | None = None,
    ) -> None:
        """The full-catalog group path for session requests.

        One shared batched dual build exactly like the clean path, plus
        an O(r²h) per-member deflation ``C̃ = (I-UUᵀ) C (I-UUᵀ)`` for
        history conditioning — the eigenvectors of ``C̃`` with positive
        eigenvalues lie in the deflated subspace, so the unchanged
        projector samplers draw from the conditional k-DPP as-is.
        """
        factors = snap.factors
        quality = np.stack([member.quality for member in members])
        with stage_span(stages, "dual_build"):
            units = [
                self._session_units(member.history, snap) for member in members
            ]
            duals = snap.build_duals(quality**2)
            for b, basis in enumerate(units):
                if basis is not None:
                    correction = duals[b] @ basis
                    duals[b] -= correction @ basis.T
                    duals[b] -= basis @ (
                        correction.T - (basis.T @ correction) @ basis.T
                    )
        with stage_span(stages, "eigh"):
            values, vectors = np.linalg.eigh(duals)
        eigenvalues = np.clip(values, 0.0, None)
        with stage_span(stages, "normalizer"):
            log_normalizers = self._log_normalizers(eigenvalues, members, k, mode)
        with stage_span(stages, "selection"):
            if mode == "sample":
                rngs = [self._request_rng(member) for member in members]
                coefficients = self._phase1_coefficients(
                    eigenvalues, vectors, k, rngs
                )
                samples = batched_sample_elementary_shared(
                    factors,
                    quality,
                    coefficients,
                    rngs,
                    gram_products=snap.gram_products(),
                )
            else:
                seeds, pins, quota = self._session_map_inputs(
                    members, units, snap, stack=None
                )
                samples = batched_greedy_map_shared_session(
                    factors, quality, k, seeds=seeds, pins=pins, quota=quota
                )
        with stage_span(stages, "emit"):
            self._emit(
                members,
                samples,
                log_normalizers,
                quality,
                None,
                k,
                responses,
                snap,
                units=units,
            )

    def _serve_sliced_session_group(
        self,
        members: list[_Resolved],
        k: int,
        mode: str,
        responses: list,
        snap: CatalogSnapshot,
        stages: StageRecorder | None = None,
    ) -> None:
        """The candidate-slice group path for session requests: the
        per-request factor stack rows are deflated against the history
        span (``b̃_i = b_i(I - UUᵀ)``, the low-rank Schur complement of
        conditioning), then the clean sliced machinery — stacked duals,
        normalizers, projector sampling — applies verbatim; constrained
        MAP runs the session greedy over the deflated stack."""
        with stage_span(stages, "dual_build"):
            candidates = np.stack([member.candidates for member in members])
            local_quality = np.stack(
                [member.quality[member.candidates] for member in members]
            )
            stack = local_quality[:, :, None] * snap.take_rows(candidates)
            units = [
                self._session_units(member.history, snap) for member in members
            ]
            for b, basis in enumerate(units):
                if basis is not None:
                    stack[b] -= (stack[b] @ basis) @ basis.T
            duals = np.matmul(np.swapaxes(stack, 1, 2), stack)
        with stage_span(stages, "eigh"):
            eigenvalues, dual_vectors = np.linalg.eigh(duals)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        with stage_span(stages, "normalizer"):
            log_normalizers = self._log_normalizers(eigenvalues, members, k, mode)
        with stage_span(stages, "selection"):
            if mode == "sample":
                rngs = [self._request_rng(member) for member in members]
                coefficients = self._phase1_coefficients(
                    eigenvalues, dual_vectors, k, rngs
                )
                bases = np.matmul(stack, coefficients)
                samples = batched_sample_elementary_stacked(bases, rngs)
            else:
                seeds, pins, quota = self._session_map_inputs(
                    members, units, snap, stack=stack
                )
                samples = batched_greedy_map_stacked_session(
                    stack, k, seeds=seeds, pins=pins, quota=quota
                )
        with stage_span(stages, "emit"):
            self._emit(
                members, samples, log_normalizers, None, stack, k, responses, snap
            )

    def _emit(
        self,
        members: list[_Resolved],
        samples: list[list[int]],
        log_normalizers: np.ndarray,
        quality: np.ndarray | None,
        stack: np.ndarray | None,
        k: int,
        responses: list,
        snap: CatalogSnapshot,
        units: list | None = None,
    ) -> None:
        """Attach log-probabilities and map local picks to catalog ids.

        ``units`` (full-catalog session groups only) carries per-member
        history deflation bases: selected rows are deflated before the
        stacked ``slogdet`` so reported probabilities are those of the
        history-*conditioned* kernel, matching the conditioned
        normalizers.  Sliced session groups pass an already-deflated
        ``stack`` instead.
        """
        complete = [
            b
            for b, sample in enumerate(samples)
            if len(sample) == k and np.isfinite(log_normalizers[b])
        ]
        log_probabilities: dict[int, float] = {}
        if complete:
            if stack is None:
                picks = np.array([samples[b] for b in complete], dtype=np.int64)
                rows = snap.factors[picks] * quality[complete][
                    np.arange(len(complete))[:, None], picks
                ][:, :, None]
                if units is not None:
                    for j, b in enumerate(complete):
                        basis = units[b]
                        if basis is not None:
                            rows[j] -= (rows[j] @ basis) @ basis.T
            else:
                picks = np.array([samples[b] for b in complete], dtype=np.int64)
                rows = stack[
                    np.asarray(complete)[:, None], picks
                ]
            values = self._group_log_probabilities(rows, log_normalizers[complete])
            log_probabilities = dict(zip(complete, values))
        for b, member in enumerate(members):
            local = samples[b]
            if member.candidates is None:
                items = [int(i) for i in local]
            else:
                items = [int(member.candidates[i]) for i in local]
            value = log_probabilities.get(b)
            responses[member.index] = Response(
                items=items,
                log_probability=None if value is None else float(value),
                mode=member.report_mode,
                k=member.k,
                version=snap.version,
            )

    # ------------------------------------------------------------------
    # Sequential reference (the PR 2 loop)
    # ------------------------------------------------------------------
    def serve_sequential(
        self,
        requests: Sequence[Request],
        snapshot: CatalogSnapshot | None = None,
    ) -> list[Response]:
        """One ``KDPP.from_factors`` / ``greedy_map`` per request.

        This is exactly the serving loop PR 2 made fast for a *single*
        request — rebuild the low-rank kernel, eigendecompose its dual,
        sample or rerank — repeated per request with no shared work.  It
        is both the benchmark baseline and the parity oracle: for seeded
        requests, :meth:`serve` must return identical items.
        """
        snap = self._pin(snapshot)
        responses: list[Response] = []
        for i, request in enumerate(requests):
            member = self._resolve(request, i, snap)
            if member.candidates is None:
                factors = member.quality[:, None] * snap.factors
            else:
                factors = (
                    member.quality[member.candidates][:, None]
                    * snap.take_rows(member.candidates)
                )
            basis = self._session_units(member.history, snap)
            if basis is not None:
                # Primal deflation — deliberately a different route than
                # the batched dual deflation, so the two paths cross-
                # check the conditioning math, not just each other.
                factors = factors - (factors @ basis) @ basis.T
            lowrank = LowRankKernel(factors)
            if member.mode == "sample":
                dpp = KDPP.from_factors(lowrank, member.k)
                local = dpp.sample(self._request_rng(member))
                log_probability = dpp.log_subset_probability(local)
            else:
                if member.pins is None and not member.quotas:
                    local = greedy_map(lowrank, member.k)
                else:
                    local_pins = self._local_pins(member)
                    seeds = None
                    if local_pins is not None:
                        pin_basis = _orthonormal_columns(factors[local_pins])
                        if pin_basis is not None:
                            seeds = pin_basis.T[None]
                    quota = None
                    if member.quotas:
                        categories = member.categories
                        if member.candidates is not None:
                            categories = categories[member.candidates]
                        quota = [(categories, member.quotas)]
                    local = batched_greedy_map_stacked_session(
                        factors[None],
                        member.k,
                        seeds=seeds,
                        pins=[local_pins],
                        quota=quota,
                    )[0]
                if len(local) == member.k:
                    dpp = KDPP.from_factors(lowrank, member.k)
                    log_probability = dpp.log_subset_probability(local)
                else:
                    log_probability = None
            if member.candidates is None:
                items = [int(item) for item in local]
            else:
                items = [int(member.candidates[item]) for item in local]
            responses.append(
                Response(
                    items=items,
                    log_probability=log_probability,
                    mode=member.report_mode,
                    k=member.k,
                    version=snap.version,
                )
            )
        return responses
