"""Multi-page session state: accumulate shown items, condition the next page.

One :class:`Session` tracks what a user has already been shown and
builds each next-page :class:`~repro.serving.server.Request` with that
history attached, so every page is diverse *against the pages before
it* (the kernel is conditioned on the shown set, see the server module
docstring) and never repeats an item.  Usage::

    session = Session(user=7, alpha=1.3)
    for page in range(3):
        request = session.request(quality, k=10, mode="map")
        response = server.serve([request])[0]
        session.record(response)

The caller owns the serving loop — a session works identically through
:meth:`KDPPServer.serve`, the sharded funnel, or the async runtime's
``submit`` (record each response when its future resolves, in page
order).

``window`` bounds the conditioning cost for long sessions: only the
most recent ``window`` shown items are conditioned out of the kernel
(one O(r²·h) correction per request), while *all* shown items stay
excluded from the ground set — forgetting diversity pressure from old
pages is acceptable, re-showing an item is not.
"""

from __future__ import annotations

import numpy as np

from .server import Request, Response

__all__ = ["Session"]


class Session:
    """Accumulates shown items across pages of one user's session.

    Parameters
    ----------
    user:
        Forwarded to every built request (lets a
        :class:`~repro.retrieval.cache.FunnelCache` key the session's
        funnel pools).
    alpha:
        Default diversity strength for every page (overridable per
        :meth:`request` call).
    window:
        When set, only the last ``window`` shown items are *conditioned*
        out of the kernel; every shown item is always *excluded* from
        selection regardless.
    """

    def __init__(
        self,
        user: int | None = None,
        alpha: float = 1.0,
        window: int | None = None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.user = user
        self.alpha = alpha
        self.window = window
        self._shown: list[int] = []

    # ------------------------------------------------------------------
    @property
    def shown(self) -> list[int]:
        """Every item shown so far, in page order."""
        return list(self._shown)

    @property
    def history(self) -> np.ndarray | None:
        """The conditioning window: the last ``window`` shown items
        (all of them when no window is set), or None before page one."""
        if not self._shown:
            return None
        shown = self._shown
        if self.window is not None:
            shown = shown[-self.window :]
        return np.asarray(shown, dtype=np.int64)

    # ------------------------------------------------------------------
    def request(self, quality: np.ndarray, k: int, mode: str = "map", **fields) -> Request:
        """The next page's request: session history and identity attached.

        ``fields`` pass through to :class:`Request` (``seed``,
        ``exclude``, ``pins``, ``quotas``, ...); ``alpha`` defaults to
        the session's.  Items shown on earlier pages but outside the
        conditioning window are folded into ``exclude`` so they can
        never be re-shown.
        """
        fields.setdefault("alpha", self.alpha)
        fields.setdefault("user", self.user)
        history = self.history
        if history is not None and len(history) < len(self._shown):
            forgotten = np.asarray(
                self._shown[: len(self._shown) - len(history)], dtype=np.int64
            )
            exclude = fields.get("exclude")
            if exclude is not None:
                forgotten = np.concatenate(
                    [np.asarray(exclude, dtype=np.int64), forgotten]
                )
            fields["exclude"] = forgotten
        return Request(quality=quality, k=k, mode=mode, history=history, **fields)

    def record(self, shown) -> "Session":
        """Append a served page — a :class:`Response` or an id iterable.

        Returns the session for chaining.  Recording is what advances
        the session; a request built but never recorded (e.g. a failed
        serve) leaves the state untouched.
        """
        items = shown.items if isinstance(shown, Response) else shown
        self._shown.extend(int(item) for item in items)
        return self

    def reset(self) -> None:
        """Forget all shown items (a new session for the same user)."""
        self._shown.clear()

    def __len__(self) -> int:
        return len(self._shown)
