"""Sharded catalogs: k-DPP serving past the single-dual-build ceiling.

Above ~10⁵ items the monolithic fast path starts to strain — the
outer-product table behind :meth:`CatalogSnapshot.build_duals` grows as
``O(M r²/2)`` and every full-catalog request drags ``O(M)`` state
through each sampling/MAP step.  :class:`ShardedCatalog` partitions the
item axis into contiguous per-shard :class:`CatalogSnapshot` slices, and
:class:`ShardedKDPPServer` serves them with a **shard-then-batch
funnel**:

1. every request's per-item quality funnels through a pluggable
   :class:`~repro.retrieval.base.CandidateSource` — by default the
   exact per-shard top-``w`` (:class:`~repro.retrieval.exact.ExactTopK`,
   two vectorized passes per shard for a whole request batch), or the
   approximate quantile-sketch / IVF sources of ``repro.retrieval`` —
   optionally short-circuited per user by a
   :class:`~repro.retrieval.cache.FunnelCache`;
2. the per-shard winners are merged into one candidate pool per request
   (disjoint global ids, shard order);
3. one **exact** k-DPP — Liu/Walder/Xie's LkP semantics, via the same
   batched dual build + stacked ``eigh`` + projector samplers the
   engine uses for candidate slices — runs over the merged pool.

The k-DPP stage is exact for *every* source: approximation, when
chosen, lives entirely in pool membership (step 1), which is why
recall@funnel is the one number that characterizes an approximate
source end to end (``benchmarks/bench_retrieval.py`` measures it along
with the NDCG delta).

Because the per-pool duals stay ``r × r`` (Gartrell/Paquet/Koenigstein's
low-rank construction), step 3 costs the same as serving a small
catalog: the funnel turns catalog scale into pool scale without
approximating the k-DPP on the pool.  Step 1 is where the catalog size
lives, and it is embarrassingly shardable — the levers later PRs pull
(per-shard processes, replicas) all slot in behind the same
:class:`ShardedSnapshot` read interface.

Parity contract (pinned by ``tests/test_runtime.py``): for the same
merged candidate pool, :meth:`ShardedKDPPServer.serve` returns exactly
what a monolithic :class:`KDPPServer` over the unsharded factors
returns for ``Request(candidates=pool)`` — identical seeded samples,
identical MAP selections, identical log-probabilities.  One caveat,
analogous to the engine's greedy-MAP tie caveat: quality values tied
*exactly at a pool cutoff* may break differently between per-shard and
whole-catalog top-k, so pool membership (and hence `topk-rerank`
equality with the monolithic server) is guaranteed only for tie-free
qualities — which continuous scores are almost surely.

Publication is double-buffered like :meth:`ItemCatalog.refresh`: a
:meth:`ShardedCatalog.publish` builds every new shard snapshot first,
then swaps one :class:`ShardedSnapshot` reference, so readers captured
mid-swap keep a consistent all-old view and never see shards from two
generations.
"""

from __future__ import annotations

import threading
from dataclasses import replace as dataclass_replace
from typing import Sequence

import numpy as np

from ..retrieval import CandidateSource, ExactTopK, FunnelCache
from ..retrieval.cache import session_token
from ..utils.topk import top_k_indices
from .catalog import CatalogSnapshot, VersionedExtensions
from .config import UNSET, ServingConfig, resolve_config
from .observability import StageRecorder, stage_span
from .server import (
    KDPPServer,
    Request,
    effective_request_quality,
    extend_pool_for_constraints,
)

__all__ = ["ShardedCatalog", "ShardedSnapshot", "ShardedKDPPServer"]


class ShardedSnapshot(VersionedExtensions):
    """One immutable published generation of all shard snapshots.

    Exposes the same read surface the serving engine needs from a
    :class:`CatalogSnapshot` (``num_items`` / ``rank`` / ``version`` /
    ``take_rows``), plus the shard-funnel primitive ``shard_topk``.
    """

    def __init__(
        self, shards: Sequence[CatalogSnapshot], offsets: np.ndarray, version: int
    ) -> None:
        self.shards = tuple(shards)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self._version = int(version)
        self._lock = threading.Lock()
        self._factors: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_items(self) -> int:
        return int(self.offsets[-1])

    @property
    def rank(self) -> int:
        return self.shards[0].rank

    @property
    def factors(self) -> np.ndarray:
        """The concatenated ``(M, r)`` view (lazy; debugging/parity use —
        the serving paths only gather rows per shard)."""
        if self._factors is None:
            with self._lock:
                if self._factors is None:
                    stacked = np.concatenate([s.factors for s in self.shards])
                    stacked.setflags(write=False)
                    self._factors = stacked
        return self._factors

    def shard_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    # ------------------------------------------------------------------
    def take_rows(self, indices: np.ndarray) -> np.ndarray:
        """Gather factor rows for global item ids of any index shape.

        Ids are mapped to ``(shard, local)`` with one ``searchsorted``
        against the shard boundaries, then gathered shard by shard —
        no concatenated factor matrix is ever materialized.
        """
        indices = np.asarray(indices, dtype=np.int64)
        flat = indices.ravel()
        rows = np.empty((flat.shape[0], self.rank), dtype=np.float64)
        owners = np.searchsorted(self.offsets, flat, side="right") - 1
        for s, shard in enumerate(self.shards):
            mask = owners == s
            if np.any(mask):
                rows[mask] = shard.factors[flat[mask] - self.offsets[s]]
        return rows.reshape(*indices.shape, self.rank)

    def shard_topk(self, quality: np.ndarray, width: int) -> np.ndarray:
        """Per-shard quality top-``width`` funnel for a request batch.

        ``quality`` is the ``(B, M)`` effective-quality stack; each shard
        contributes its ``min(width, shard size)`` highest-quality items
        per request (descending within a shard), reported as global ids
        and concatenated in shard order — every request's merged
        candidate pool is one row of the ``(B, P)`` result.  This is
        :class:`~repro.retrieval.exact.ExactTopK` (where the PR 4
        inlined implementation moved), kept as a snapshot method for
        direct callers and the parity tests.
        """
        return ExactTopK().pools(quality, width, self)


class ShardedCatalog:
    """Partitioned item catalog: contiguous shards, atomic publication."""

    def __init__(
        self, factors: np.ndarray, num_shards: int = 4, version: int = 0
    ) -> None:
        factors = np.asarray(factors)
        if factors.ndim != 2:
            raise ValueError(f"factors must be (M, r), got shape {factors.shape}")
        if not 1 <= num_shards <= factors.shape[0]:
            raise ValueError(
                f"num_shards must be in [1, {factors.shape[0]}], got {num_shards}"
            )
        bounds = np.linspace(0, factors.shape[0], num_shards + 1).astype(np.int64)
        self._offsets = bounds
        self._swap_lock = threading.Lock()
        self._current = self._build(factors, version)
        self._previous: ShardedSnapshot | None = None

    def _build(self, factors: np.ndarray, version: int) -> ShardedSnapshot:
        shards = [
            CatalogSnapshot(
                factors[self._offsets[s] : self._offsets[s + 1]], version
            )
            for s in range(len(self._offsets) - 1)
        ]
        return ShardedSnapshot(shards, self._offsets, version)

    # ------------------------------------------------------------------
    def snapshot(self) -> ShardedSnapshot:
        return self._current

    def publish(self, factors: np.ndarray) -> int:
        """Swap in retrained factors under the next version (atomic).

        All shard snapshots of the new generation are built (validated,
        copied, frozen) *before* the single reference assignment that
        publishes them; the displaced generation is retained as the back
        buffer for in-flight readers.  Returns the new version.
        """
        factors = np.asarray(factors)
        if factors.ndim != 2 or factors.shape[0] != self.num_items:
            raise ValueError(
                f"published factors must keep the catalog's item axis "
                f"({self.num_items}), got shape {factors.shape}"
            )
        with self._swap_lock:
            fresh = self._build(factors, self._current.version + 1)
            self._previous = self._current
            self._current = fresh
            return fresh.version

    #: the runtime hot-swaps either catalog flavor through one name.
    refresh = publish

    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        return int(self._offsets[-1])

    @property
    def num_shards(self) -> int:
        return len(self._offsets) - 1

    @property
    def rank(self) -> int:
        return self._current.rank

    @property
    def version(self) -> int:
        return self._current.version


class ShardedKDPPServer(KDPPServer):
    """Funnelled k-DPP serving over a :class:`ShardedCatalog`.

    Requests keep the full :class:`~repro.serving.server.Request`
    semantics (catalog-sized quality, per-request ``k``, exclusions,
    modes, seeds).  Serving *lowers* each request to an explicit
    candidate slice — the merged per-shard top-``funnel_width`` pool —
    and then reuses the engine's exact candidate-slice path, so the
    result over the pool is an exact k-DPP draw / greedy MAP, bit-equal
    to a monolithic :class:`KDPPServer` handed the same pool.

    ``funnel_width`` is the per-shard candidate budget (clipped to the
    shard size; at least ``k`` is always taken).  ``topk-rerank``
    requests funnel per-shard top-``rerank_pool`` and then keep the
    exact global top-``rerank_pool`` of the union — per-shard top-N
    contains global top-N, so for tie-free qualities the rerank pool
    matches the monolithic server's item for item (exact ties at the
    cutoff may resolve to different, equally-ranked members).  With an
    approximate ``source`` the same global re-selection runs over the
    approximate union instead.

    ``source`` picks the candidate-generation implementation (default:
    :class:`~repro.retrieval.exact.ExactTopK`, which keeps this server
    bit-identical to the pre-subsystem funnel).  ``funnel_cache``
    short-circuits the source for requests that carry a ``user`` id:
    repeat visitors within one catalog version reuse their pool.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        funnel_width: int = UNSET,
        rerank_pool: int = UNSET,
        source: CandidateSource | None = UNSET,
        funnel_cache: FunnelCache | None = UNSET,
        config: ServingConfig | None = None,
    ) -> None:
        config = resolve_config(
            config,
            {
                "funnel_width": funnel_width,
                "rerank_pool": rerank_pool,
                "source": source,
                "funnel_cache": funnel_cache,
            },
            type(self).__name__,
        )
        super().__init__(catalog, config=config)  # type: ignore[arg-type]
        self.funnel_width = config.funnel_width
        self.source = config.source if config.source is not None else ExactTopK()
        self.funnel_cache = config.funnel_cache

    # ------------------------------------------------------------------
    def _funnel_pools(
        self,
        members: list[tuple[int, Request, np.ndarray]],
        width: int,
        snap: ShardedSnapshot,
        stages: StageRecorder | None = None,
    ) -> list[np.ndarray]:
        """One pool per member: funnel cache first, then the source.

        Cache hits (requests carrying a ``user`` id with a pool already
        memoized for this catalog version and width) skip candidate
        generation entirely; the misses run through ``self.source`` as
        one stacked batch and are written back for the next visit.
        """
        cache = self.funnel_cache
        pools: list[np.ndarray | None] = [None] * len(members)
        miss_rows: list[int] = []
        tokens: list[int | None] = [None] * len(members)
        for row, (_, request, quality) in enumerate(members):
            if cache is not None and request.user is not None:
                # Exclusions and session history are zeroed into the
                # quality the funnel sees, so they are part of the
                # pool's identity — the token keys them exactly (the
                # strided quality fingerprint alone could miss a few
                # zeroed entries, and a cached pool must never
                # resurface an already-shown item).
                tokens[row] = session_token(request.exclude, request.history)
                hit = cache.get(
                    request.user, snap.version, width, quality, tokens[row]
                )
                if hit is not None:
                    pools[row] = hit
                    continue
            miss_rows.append(row)
        if miss_rows:
            stacked = np.stack([members[row][2] for row in miss_rows])
            # "source" nests inside the enclosing "funnel" span, so it
            # is marked nested — coverage sums must not count it twice.
            with stage_span(stages, "source", nested=True):
                fresh = self.source.pools(stacked, width, snap)
            for out_row, row in enumerate(miss_rows):
                pools[row] = fresh[out_row]
                _, request, quality = members[row]
                if cache is not None and request.user is not None:
                    cache.put(
                        request.user,
                        snap.version,
                        width,
                        fresh[out_row],
                        quality,
                        tokens[row],
                    )
        return pools  # type: ignore[return-value]

    def _lower(
        self,
        requests: Sequence[Request],
        snap: ShardedSnapshot,
        stages: StageRecorder | None = None,
    ) -> list[Request]:
        """Rewrite every request as an explicit merged-pool slice.

        Funnel pools for same-width requests — rerank included — are
        built in one :meth:`CandidateSource.pools` batch over the
        stacked qualities (cache hits excepted).  Field validation
        reuses the engine's helpers; the O(M) finiteness/negativity scan
        runs once, in ``_resolve`` on the lowered request (non-finite
        entries can transiently enter a pool, but never reach a kernel).
        """
        lowered: list[Request | None] = [None] * len(requests)
        by_width: dict[int, list[tuple[int, Request, np.ndarray]]] = {}
        for index, request in enumerate(requests):
            request.validate(snap.num_items, index)
            if request.candidates is not None:
                # Caller-specified slices bypass the funnel untouched
                # (the engine validates and serves them as-is).
                lowered[index] = request
                continue
            quality = effective_request_quality(
                request, index, snap.num_items, check_values=False
            )
            if request.mode == "topk-rerank":
                pool_size = (
                    self.rerank_pool
                    if request.rerank_pool is None
                    else request.rerank_pool
                )
                width = max(pool_size, request.k)
            else:
                width = max(self.funnel_width, request.k)
            by_width.setdefault(width, []).append((index, request, quality))
        for width, members in by_width.items():
            pools = self._funnel_pools(members, width, snap, stages)
            for row, (index, request, quality) in enumerate(members):
                if request.mode == "topk-rerank":
                    # Exact global top-N over the union: per-shard top-N
                    # covers it, so rank the union and keep the winners.
                    union = pools[row]
                    pool = union[top_k_indices(quality[union], width)]
                    mode = "map"
                else:
                    pool, mode = pools[row], request.mode
                # Constraint extras join *after* the cache/rerank stage:
                # the cached pool stays the pure funnel output (reusable
                # across constraint changes) while pins and quota'd
                # categories are guaranteed pool membership.
                pool = extend_pool_for_constraints(
                    pool,
                    quality,
                    request.pins,
                    request.quotas,
                    request.categories,
                )
                lowered[index] = Request(
                    quality=quality,
                    k=request.k,
                    mode=mode,
                    candidates=pool,
                    seed=request.seed,
                    user=request.user,
                    alpha=request.alpha,
                    history=request.history,
                    pins=request.pins,
                    quotas=request.quotas,
                    categories=request.categories,
                    deadline=request.deadline,
                )
        return lowered  # type: ignore[return-value]

    def retrieval_stats(self) -> dict:
        """Funnel-side counters: the source's batches/rows/fallbacks/time
        plus the cache's hits/misses (None when no cache is attached) —
        what the retrieval benchmark reads to split funnel time from
        queue time."""
        return {
            "source": self.source.stats(),
            "cache": None if self.funnel_cache is None else self.funnel_cache.stats(),
        }

    @staticmethod
    def _restamp_modes(requests: Sequence[Request], responses: list) -> list:
        """Report the caller's mode for funnel-lowered rerank requests
        (the engine saw them as ``map`` over an explicit slice).
        ``Response`` is frozen, so restamping builds replacements."""
        return [
            dataclass_replace(response, mode="topk-rerank")
            if request.mode == "topk-rerank" and request.candidates is None
            else response
            for request, response in zip(requests, responses)
        ]

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[Request],
        snapshot: ShardedSnapshot | None = None,
        stages: StageRecorder | None = None,
    ) -> list:
        snap = self._pin(snapshot)
        with stage_span(stages, "funnel"):
            lowered = self._lower(requests, snap, stages)
        responses = super().serve(lowered, snapshot=snap, stages=stages)
        return self._restamp_modes(requests, responses)

    def serve_sequential(
        self,
        requests: Sequence[Request],
        snapshot: ShardedSnapshot | None = None,
    ) -> list:
        snap = self._pin(snapshot)
        responses = super().serve_sequential(
            self._lower(requests, snap), snapshot=snap
        )
        return self._restamp_modes(requests, responses)

    def funnel_pool(self, request: Request, snapshot: ShardedSnapshot | None = None) -> np.ndarray:
        """The merged candidate pool this server would build for one
        request — exposed so callers (tests, monolithic parity baselines)
        can serve the identical pool elsewhere."""
        snap = self._pin(snapshot)
        lowered = self._lower([request], snap)[0]
        if lowered.candidates is None:  # pragma: no cover - lowering always slices
            raise RuntimeError("lowering produced no candidate pool")
        return np.asarray(lowered.candidates, dtype=np.int64)
