"""``repro.train`` — the generic training harness.

* :class:`~repro.train.config.TrainConfig` — run hyper-parameters;
* :class:`~repro.train.trainer.Trainer` — Adam loop with per-epoch
  resampling, validation-based selection and epochs-to-best tracking;
* :func:`~repro.train.grid.grid_search` — the paper's validation-set
  hyper-parameter tuning protocol.
"""

from .config import TrainConfig
from .grid import GridPoint, grid_search
from .trainer import EpochRecord, Trainer, TrainResult

__all__ = [
    "TrainConfig",
    "Trainer",
    "TrainResult",
    "EpochRecord",
    "GridPoint",
    "grid_search",
]
