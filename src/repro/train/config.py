"""Training configuration dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrainConfig"]


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    Attributes
    ----------
    epochs:
        Maximum number of epochs.
    batch_size:
        Instances per optimization step (instances are whatever the
        criterion's sampler emits — pairs for BPR, ground sets for LkP).
    lr / weight_decay:
        Adam settings.  The paper uses Adam with grid-searched lr.
    eval_every:
        Validate every this many epochs (1 = every epoch).
    patience:
        Early-stopping patience measured in *validations* without
        improvement; ``0`` disables early stopping.
    monitor:
        Validation metric key driving model selection (e.g. ``"Nd@5"``).
    cutoffs:
        Ranking cutoffs computed during validation.
    seed:
        Seed for shuffling / negative sampling during training.
    verbose:
        Print one line per validation.
    loss_backend:
        Minibatch evaluation strategy for criteria that support more than
        one (currently LkP): ``"batched"`` for the fused stacked-kernel
        path, ``"reference"`` for the per-instance loop, ``None`` to keep
        the criterion's own default.
    """

    epochs: int = 30
    batch_size: int = 64
    lr: float = 0.01
    weight_decay: float = 1e-5
    eval_every: int = 1
    patience: int = 5
    monitor: str = "Nd@5"
    cutoffs: tuple[int, ...] = (5, 10, 20)
    seed: int = 0
    verbose: bool = False
    loss_backend: str | None = None

    def __post_init__(self) -> None:
        if self.loss_backend not in (None, "batched", "reference"):
            raise ValueError(
                "loss_backend must be None, 'batched' or 'reference', "
                f"got {self.loss_backend!r}"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        family = self.monitor.split("@")[0]
        if family not in ("Re", "Nd", "CC", "F"):
            raise ValueError(f"unknown monitor metric family {family!r}")
        cutoff = int(self.monitor.split("@")[1])
        if cutoff not in self.cutoffs:
            self.cutoffs = tuple(sorted({*self.cutoffs, cutoff}))
