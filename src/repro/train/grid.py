"""Grid search over training hyper-parameters.

The paper tunes learning rates and regularization per method on the
validation set ("we have carefully explored the corresponding parameters
... and report the best results of each model by tuning the
hyperparameters on a validation set").  :func:`grid_search` reproduces
that protocol generically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable

from ..data.interactions import DatasetSplit
from ..losses.base import Criterion
from ..models.base import Recommender
from .config import TrainConfig
from .trainer import TrainResult, Trainer

__all__ = ["GridPoint", "grid_search"]


@dataclass
class GridPoint:
    """One evaluated configuration."""

    params: dict[str, float]
    value: float
    result: TrainResult


def grid_search(
    model_factory: Callable[[], Recommender],
    criterion_factory: Callable[[], Criterion],
    split: DatasetSplit,
    base_config: TrainConfig,
    grid: dict[str, list],
) -> tuple[GridPoint, list[GridPoint]]:
    """Train one model per grid point; select by the monitored metric.

    Parameters
    ----------
    model_factory / criterion_factory:
        Zero-argument constructors so every point starts fresh.
    grid:
        Mapping from :class:`TrainConfig` field name to candidate values,
        e.g. ``{"lr": [0.05, 0.01], "weight_decay": [1e-5, 1e-4]}``.

    Returns the best point and the full trace.
    """
    if not grid:
        raise ValueError("grid must contain at least one parameter")
    for key in grid:
        if not hasattr(base_config, key):
            raise ValueError(f"TrainConfig has no field {key!r}")
    names = sorted(grid)
    points: list[GridPoint] = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        config = replace(base_config, **params)
        trainer = Trainer(model_factory(), criterion_factory(), split, config)
        result = trainer.fit()
        points.append(GridPoint(params=params, value=result.best_value, result=result))
    best = max(points, key=lambda point: point.value)
    return best, points
