"""Generic trainer: any criterion × any backbone × any split.

Implements the paper's training loop discipline: Adam, per-epoch
re-sampling of training instances (fresh negatives each epoch),
validation-based model selection, and tracking of the epoch at which the
best validation score was reached (the "epochs to best" statistic plotted
in Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autodiff import optim
from ..data.interactions import DatasetSplit
from ..eval.evaluate import EvalResult, evaluate_model
from ..losses.base import Criterion
from ..models.base import Recommender
from ..utils.rng import ensure_rng
from .config import TrainConfig

__all__ = ["EpochRecord", "TrainResult", "Trainer"]


@dataclass
class EpochRecord:
    """One epoch's training loss and (optional) validation snapshot."""

    epoch: int
    train_loss: float
    val_metrics: dict[str, float] | None = None


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: list[EpochRecord] = field(default_factory=list)
    best_epoch: int = 0
    best_value: float = -np.inf
    epochs_run: int = 0
    monitor: str = "Nd@5"

    @property
    def epochs_to_best(self) -> int:
        """The Figure 2 statistic: epochs needed to reach peak validation."""
        return self.best_epoch

    def losses(self) -> list[float]:
        return [record.train_loss for record in self.history]


class Trainer:
    """Trains a :class:`Recommender` with a :class:`Criterion` on a split."""

    def __init__(
        self,
        model: Recommender,
        criterion: Criterion,
        split: DatasetSplit,
        config: TrainConfig | None = None,
        epoch_callback: Callable[[int, Recommender], None] | None = None,
    ) -> None:
        self.model = model
        self.criterion = criterion
        self.split = split
        self.config = config or TrainConfig()
        self.sampler = criterion.make_sampler(split)
        self.epoch_callback = epoch_callback

    def fit(self) -> TrainResult:
        # Thread the configured minibatch strategy into criteria that
        # support one (LkP's fused batched path vs. reference loop),
        # restoring afterwards so a shared criterion instance is not
        # permanently reconfigured by one trainer's config.
        override = self.config.loss_backend
        if override is None or not hasattr(self.criterion, "backend"):
            return self._fit()
        original = self.criterion.backend
        self.criterion.backend = override
        try:
            return self._fit()
        finally:
            self.criterion.backend = original

    def _fit(self) -> TrainResult:
        config = self.config
        rng = ensure_rng(config.seed)
        optimizer = optim.Adam(
            self.model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )
        result = TrainResult(monitor=config.monitor)
        best_state: dict[str, np.ndarray] | None = None
        stale_validations = 0

        if self.epoch_callback is not None:
            # Epoch-0 snapshot (Figure 4 plots probabilities before training).
            self.epoch_callback(0, self.model)

        for epoch in range(1, config.epochs + 1):
            instances = self.sampler.instances(rng)
            order = rng.permutation(len(instances))
            epoch_loss = 0.0
            batches = 0
            self.model.train()
            for start in range(0, len(order), config.batch_size):
                batch = [instances[i] for i in order[start : start + config.batch_size]]
                representations = self.model.representations()
                loss = self.criterion.batch_loss(self.model, representations, batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            record = EpochRecord(epoch=epoch, train_loss=epoch_loss / max(batches, 1))

            if epoch % config.eval_every == 0:
                self.model.eval()
                snapshot = evaluate_model(
                    self.model, self.split, cutoffs=config.cutoffs, target="val"
                )
                record.val_metrics = snapshot.metrics
                value = snapshot.metrics[config.monitor]
                if config.verbose:
                    print(
                        f"[{self.criterion.name}] epoch {epoch:>3}  "
                        f"loss {record.train_loss:.4f}  "
                        f"{config.monitor} {value:.4f}"
                    )
                if value > result.best_value:
                    result.best_value = value
                    result.best_epoch = epoch
                    best_state = self.model.state_dict()
                    stale_validations = 0
                else:
                    stale_validations += 1

            result.history.append(record)
            result.epochs_run = epoch
            if self.epoch_callback is not None:
                self.epoch_callback(epoch, self.model)
            if config.patience and stale_validations >= config.patience:
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return result

    def evaluate(self, target: str = "test") -> EvalResult:
        """Evaluate the (best) model on the requested target."""
        return evaluate_model(
            self.model, self.split, cutoffs=self.config.cutoffs, target=target
        )
