"""Shared utilities: deterministic RNG handling, top-k selection, timing."""

from .rng import ensure_rng, seeded_children, spawn
from .timing import Stopwatch, latency_percentiles, timed
from .topk import rank_of_items, top_k_indices

__all__ = [
    "ensure_rng",
    "spawn",
    "seeded_children",
    "top_k_indices",
    "rank_of_items",
    "Stopwatch",
    "timed",
    "latency_percentiles",
]
