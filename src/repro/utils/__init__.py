"""Shared utilities: deterministic RNG handling, top-k selection, timing,
and the zero-dependency metrics primitives behind serving telemetry."""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .rng import ensure_rng, seeded_children, spawn
from .timing import (
    ManualClock,
    Stopwatch,
    histogram_percentile,
    latency_percentiles,
    log_buckets,
    timed,
)
from .topk import rank_of_items, top_k_indices, top_k_indices_rows

__all__ = [
    "ensure_rng",
    "spawn",
    "seeded_children",
    "top_k_indices",
    "top_k_indices_rows",
    "rank_of_items",
    "ManualClock",
    "Stopwatch",
    "timed",
    "latency_percentiles",
    "log_buckets",
    "histogram_percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
