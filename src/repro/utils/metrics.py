"""Zero-dependency, thread-safe metrics primitives.

The serving stack's visibility used to be a pile of differently-shaped
``stats()`` dicts, each guarding (or forgetting to guard) its own plain
integers.  This module is the one set of primitives they all move onto:

* :class:`Counter` — monotonically increasing float total;
* :class:`Gauge` — a settable point-in-time value with the
  ``set_max`` convenience the schedulers' high-water marks need;
* :class:`Histogram` — log-bucketed latency distribution sharing its
  bucket/percentile math with :func:`repro.utils.timing.log_buckets` /
  :func:`repro.utils.timing.histogram_percentile`, so a benchmark's
  offline percentiles and a live histogram's agree on convention;
* :class:`MetricsRegistry` — get-or-create-by-name registry with a
  point-in-time :meth:`~MetricsRegistry.snapshot` and a Prometheus-style
  :meth:`~MetricsRegistry.to_text` exposition.

Every primitive supports **labeled children** (``metric.labels(...)``)
in the Prometheus mold: the parent owns the label *names*, children own
one series per label-value tuple, and all series share the parent's
lock (contention on these is trivial next to an ``eigh``).

Deliberately not imported by :mod:`repro.serving` directly —
``repro.serving.observability`` re-exports everything here.  Living
under ``repro.utils`` lets :mod:`repro.retrieval` adopt the primitives
without creating the retrieval→serving import cycle the layering
forbids.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Iterator, Sequence

from .timing import histogram_percentile, log_buckets

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared parent/child plumbing for the three primitive kinds.

    A metric built with ``labelnames`` is a *family*: it holds no value
    itself, only children keyed by label-value tuples (created lazily by
    :meth:`labels`).  A metric without labelnames is its own single
    series.  One lock per family covers every child.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], "_Metric"] = {}
        self._labelvalues: tuple[str, ...] = ()

    def labels(self, **labelvalues) -> "_Metric":
        """The child series for one label-value assignment (created on
        first use; later calls return the same object)."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} takes no labels")
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                child._labelvalues = key
                self._children[key] = child
            return child

    def _make_child(self) -> "_Metric":
        raise NotImplementedError

    def _series(self) -> Iterator[tuple[tuple[str, ...], "_Metric"]]:
        """(labelvalues, series) pairs, the family's or its own."""
        if self.labelnames:
            with self._lock:
                items = sorted(self._children.items())
            yield from items
        else:
            yield (), self

    def _render_labels(self, labelvalues: tuple[str, ...]) -> str:
        if not labelvalues:
            return ""
        parts = ", ".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, labelvalues)
        )
        return "{" + parts + "}"

    def snapshot(self) -> dict:
        """JSON-friendly point-in-time view of every series."""
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                dict(
                    labels=dict(zip(self.labelnames, labelvalues)),
                    **series._snapshot_values(),
                )
                for labelvalues, series in self._series()
            ],
        }

    def _snapshot_values(self) -> dict:
        raise NotImplementedError

    def to_text(self) -> str:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for labelvalues, series in self._series():
            lines.extend(series._text_samples(self._render_labels(labelvalues)))
        return "\n".join(lines)

    def _text_samples(self, rendered_labels: str) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total (float increments allowed)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        child = Counter.__new__(Counter)
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._lock = self._lock
        child._children = {}
        child._labelvalues = ()
        child._value = 0.0
        return child

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the series (and every child) — ``reset_stats()`` support."""
        with self._lock:
            self._value = 0.0
            for child in self._children.values():
                child._value = 0.0

    def _snapshot_values(self) -> dict:
        with self._lock:
            return {"value": self._value}

    def _text_samples(self, rendered_labels: str) -> list[str]:
        with self._lock:
            value = self._value
        return [f"{self.name}{rendered_labels} {_format_value(value)}"]


class Gauge(_Metric):
    """A point-in-time value: set, inc/dec, or ratchet with set_max."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        child = Gauge.__new__(Gauge)
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._lock = self._lock
        child._children = {}
        child._labelvalues = ()
        child._value = 0.0
        return child

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: float) -> None:
        """Ratchet: keep the larger of the current and the new value
        (high-water marks like peak queue depth)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            for child in self._children.values():
                child._value = 0.0

    def _snapshot_values(self) -> dict:
        with self._lock:
            return {"value": self._value}

    def _text_samples(self, rendered_labels: str) -> list[str]:
        with self._lock:
            value = self._value
        return [f"{self.name}{rendered_labels} {_format_value(value)}"]


class Histogram(_Metric):
    """Log-bucketed distribution (latency-shaped by default).

    ``buckets`` are finite upper bounds (seconds); an implicit +Inf
    bucket catches the overflow.  The default geometric ladder spans
    10µs–10s at 4 buckets per decade — see
    :func:`repro.utils.timing.log_buckets`.  :meth:`percentile` reads
    the same linear-interpolation convention as the benches'
    :func:`~repro.utils.timing.latency_percentiles`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = list(log_buckets() if buckets is None else buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds:
            raise ValueError("histogram bucket bounds must be sorted ascending")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self._bounds = [float(b) for b in bounds]
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        child = Histogram.__new__(Histogram)
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._lock = self._lock
        child._children = {}
        child._labelvalues = ()
        child._bounds = self._bounds
        child._counts = [0] * (len(self._bounds) + 1)
        child._sum = 0.0
        child._count = 0
        return child

    def observe(self, value: float) -> None:
        position = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of observed values (the ``_sum`` exposition sample)."""
        with self._lock:
            return self._sum

    def percentile(self, percentile: float) -> float:
        """Estimated percentile in [0, 100] via shared bucket math
        (0.0 when the histogram is empty)."""
        with self._lock:
            counts = list(self._counts)
        return histogram_percentile(self._bounds, counts, percentile)

    def reset(self) -> None:
        with self._lock:
            for series in (self, *self._children.values()):
                series._counts = [0] * (len(series._bounds) + 1)
                series._sum = 0.0
                series._count = 0

    def _snapshot_values(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total = self._sum
            count = self._count
        cumulative = []
        running = 0
        for bound, bucket_count in zip(self._bounds + [math.inf], counts):
            running += bucket_count
            cumulative.append([bound, running])
        return {
            "count": count,
            "sum": total,
            "buckets": cumulative,
            "p50": histogram_percentile(self._bounds, counts, 50.0),
            "p95": histogram_percentile(self._bounds, counts, 95.0),
            "p99": histogram_percentile(self._bounds, counts, 99.0),
        }

    def _text_samples(self, rendered_labels: str) -> list[str]:
        with self._lock:
            counts = list(self._counts)
            total = self._sum
            count = self._count
        if rendered_labels:
            bucket_prefix = rendered_labels[:-1] + ", "
        else:
            bucket_prefix = "{"
        lines = []
        running = 0
        for bound, bucket_count in zip(self._bounds + [math.inf], counts):
            running += bucket_count
            lines.append(
                f'{self.name}_bucket{bucket_prefix}le="{_format_value(bound)}"}} '
                f"{running}"
            )
        lines.append(f"{self.name}_sum{rendered_labels} {_format_value(total)}")
        lines.append(f"{self.name}_count{rendered_labels} {count}")
        return lines


class MetricsRegistry:
    """Get-or-create-by-name home for the stack's metric families.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: the second
    caller asking for an existing name gets the same object back (the
    scheduler, the resilient server and the runtime all register into
    one registry without coordinating), and a kind or label mismatch on
    an existing name is a hard error, not a silent second family.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                wanted = tuple(kwargs.get("labelnames", ()))
                if existing.labelnames != wanted:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {wanted}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """``{name: metric.snapshot()}`` for every registered family."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def to_text(self) -> str:
        """Prometheus text exposition of every registered family."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        blocks = [metric.to_text() for _, metric in metrics]
        return "\n".join(blocks) + ("\n" if blocks else "")
