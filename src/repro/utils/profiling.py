"""Zero-dependency sampling-profiler primitives.

Three building blocks, stdlib-only so any layer (retrieval, serving,
benchmarks) can adopt them without importing the serving package:

* :class:`StageRegistry` — a thread → current-stage stack, updated by
  the serving layer's ``StageRecorder``/``stage_span`` machinery on
  stage entry/exit.  The profiler reads it to attribute each sampled
  stack to the stage the thread was inside at sample time (innermost
  wins, so ``source`` inside ``funnel`` inside ``engine`` attributes to
  ``source``).
* :class:`StackProfile` — a bounded flame-style aggregation of folded
  stacks: each sample collapses a thread's frame chain into one
  ``stage;module.func;module.func`` key.  Export as collapsed-stack
  text (``flamegraph.pl`` / speedscope input) or a per-stage self-time
  table.
* :class:`SamplingProfiler` — the background thread driving
  ``sys._current_frames()`` at a configurable hz.  Purely passive: it
  never touches serving state, consumes no RNG, and holds no serving
  lock, so ``hz=0`` (never constructed) is bit-identical and ``hz>0``
  costs only the GIL slices the sampler takes.

Plus the RSS helpers (``/proc``/``resource``-based, no psutil) the
footprint report samples.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Callable

__all__ = [
    "StageRegistry",
    "StackProfile",
    "SamplingProfiler",
    "frame_stack",
    "current_rss_bytes",
    "peak_rss_bytes",
]

#: StackProfile's overflow bucket: samples whose folded stack was new
#: after the unique-stack bound was hit land here (counted, not lost)
OVERFLOW_STACK = ("(overflow)",)


class StageRegistry:
    """Thread-id → stack of active stage names (thread-safe).

    The serving layer pushes on stage entry and pops on exit (see
    ``StageRecorder.stage`` / ``ResilientServer``); the sampling
    profiler snapshots :meth:`active` to attribute stacks.  Push/pop is
    one dict access under a lock — cheap enough for per-stage (not
    per-request) granularity.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stacks: dict[int, list[str]] = {}

    def push(self, name: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._stacks.setdefault(ident, []).append(name)

    def pop(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            stack = self._stacks.get(ident)
            if stack:
                stack.pop()
                if not stack:
                    del self._stacks[ident]

    @contextmanager
    def scope(self, name: str):
        """``with registry.scope("engine"): ...`` — push/pop bracket."""
        self.push(name)
        try:
            yield self
        finally:
            self.pop()

    def current(self) -> str | None:
        """The calling thread's innermost active stage (None outside)."""
        with self._lock:
            stack = self._stacks.get(threading.get_ident())
            return stack[-1] if stack else None

    def active(self) -> dict[int, tuple[str, ...]]:
        """Snapshot of every thread's stage stack (root first)."""
        with self._lock:
            return {
                ident: tuple(stack) for ident, stack in self._stacks.items()
            }


#: code object → "module.func" label, so repeat samples of the same
#: frames (the common case — the sampler hits the same hot loop over
#: and over) skip the string formatting.  Grows with the number of
#: distinct code objects sampled, i.e. bounded by program size.
_FRAME_LABELS: dict = {}


def frame_stack(frame, max_depth: int = 48) -> tuple[str, ...]:
    """Collapse a frame chain into a root-first ``module.func`` tuple.

    Walks ``f_back`` up to ``max_depth`` frames; deeper ancestry is
    dropped from the *root* end (the leaf — where time is actually
    spent — always survives truncation).  The walk runs on the sampler
    thread holding the GIL, so per-frame work is kept to two dict hits.
    """
    names: list[str] = []
    while frame is not None and len(names) < max_depth:
        code = frame.f_code
        label = _FRAME_LABELS.get(code)
        if label is None:
            module = frame.f_globals.get("__name__", "?")
            label = f"{module}.{code.co_name}"
            _FRAME_LABELS[code] = label
        names.append(label)
        frame = frame.f_back
    names.reverse()
    return tuple(names)


class StackProfile:
    """Bounded flame-style aggregation of folded stack samples.

    Keys are ``(stage, frame, frame, ...)`` tuples; values are sample
    counts.  The unique-stack bound keeps worst-case memory O(bound):
    once hit, unseen stacks fold into one ``(overflow)`` bucket — the
    count is preserved, only the distinction is lost.  Thread-safe (the
    sampler records while readers export).
    """

    def __init__(self, max_stacks: int = 4096) -> None:
        if max_stacks < 1:
            raise ValueError(f"max_stacks must be positive, got {max_stacks}")
        self.max_stacks = int(max_stacks)
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._overflowed = 0

    def record(
        self, frames: tuple[str, ...], stage: str | None = None, count: int = 1
    ) -> None:
        key = (stage if stage is not None else "(unattributed)",) + tuple(frames)
        with self._lock:
            self._samples += count
            if key not in self._counts and len(self._counts) >= self.max_stacks:
                key = OVERFLOW_STACK
                self._overflowed += count
            self._counts[key] = self._counts.get(key, 0) + count

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c count`` line per unique
        stack (flamegraph.pl / speedscope "collapsed" input; the stage
        name is the root frame, so the flame graph groups by stage)."""
        with self._lock:
            items = sorted(self._counts.items())
        return "\n".join(f"{';'.join(key)} {count}" for key, count in items)

    def stage_samples(self) -> dict[str, int]:
        """Sample counts aggregated by stage (the key's root)."""
        out: dict[str, int] = {}
        with self._lock:
            for key, count in self._counts.items():
                out[key[0]] = out.get(key[0], 0) + count
        return out

    def self_samples(self, stage: str | None = None) -> dict[str, int]:
        """Sample counts per *leaf* frame — self time, optionally
        restricted to one stage (how "selection is 76 ms" decomposes
        into its actual numpy callees)."""
        out: dict[str, int] = {}
        with self._lock:
            for key, count in self._counts.items():
                if stage is not None and key[0] != stage:
                    continue
                out[key[-1]] = out.get(key[-1], 0) + count
        return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "samples": self._samples,
                "unique_stacks": len(self._counts),
                "max_stacks": self.max_stacks,
                "overflowed": self._overflowed,
            }


class SamplingProfiler:
    """Continuous ``sys._current_frames()`` sampler with stage attribution.

    Every ``1/hz`` wall seconds the sampler snapshots the stage registry
    and the interpreter's live frames, and folds — for each thread that
    is currently *inside a stage* — that thread's stack into the
    :class:`StackProfile` under the thread's innermost stage.  Threads
    outside any stage (idle workers, the submit thread, unrelated
    machinery) are skipped: the profile answers "where does engine time
    go", not "what is every thread doing".

    Attribution accounting: a sample whose innermost stage is the
    coarse ``engine`` window marker (pushed by the resilient layer
    around the whole serve call) is *engine work without a finer
    stage*; samples inside ``resolve`` / ``eigh`` / ``selection`` / ...
    are *attributed*.  ``attribution_coverage`` is their ratio — the
    CI guard pins it ≥ 0.8 under load.

    ``start()`` spawns the daemon thread; :meth:`sample_once` drives
    one tick inline (deterministic tests).  The sampler is passive —
    no serving lock is held while it walks frames, so the only cost to
    the serving path is the GIL time the walk takes.
    """

    def __init__(
        self,
        hz: float,
        registry: StageRegistry,
        max_stacks: int = 4096,
        max_depth: int = 48,
        engine_marker: str = "engine",
        frames_provider: Callable[[], dict] = sys._current_frames,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = float(hz)
        self.registry = registry
        self.max_depth = int(max_depth)
        self.engine_marker = engine_marker
        self.profile = StackProfile(max_stacks=max_stacks)
        self._frames_provider = frames_provider
        self._lock = threading.Lock()
        self._ticks = 0
        self._stage_samples = 0
        self._attributed = 0
        self._overhead_s = 0.0
        self._closed = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is None:
            self._closed.clear()
            self._thread = threading.Thread(
                target=self._loop, name="sampling-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._closed.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        # A plain sleep/flag loop, not Event.wait: Condition.wait costs
        # a waiter-lock allocation and several lock round-trips per tick
        # — pure-Python work that, on a single-core host, all comes out
        # of the serving thread's budget.  stop() tolerates the ≤1
        # interval of staleness the flag check leaves.
        interval = 1.0 / self.hz
        sleep = time.sleep
        while not self._closed.is_set():
            sleep(interval)
            if self._closed.is_set():
                break
            self.sample_once()

    # ------------------------------------------------------------------
    def sample_once(self) -> int:
        """One sampling tick; returns how many thread-samples landed."""
        active = self.registry.active()
        if not active:
            # Idle tick: nothing in-stage, so skip the frame snapshot
            # and the timing bookkeeping — this is the fast path
            # whenever the serving threads are between batches.
            with self._lock:
                self._ticks += 1
            return 0
        started = time.perf_counter()
        own = threading.get_ident()
        landed = 0
        attributed = 0
        frames = self._frames_provider()
        for ident, stack in active.items():
            if ident == own:
                continue
            frame = frames.get(ident)
            if frame is None:
                continue
            stage = stack[-1]
            self.profile.record(
                frame_stack(frame, self.max_depth), stage=stage
            )
            landed += 1
            if stage != self.engine_marker:
                attributed += 1
        with self._lock:
            self._ticks += 1
            self._stage_samples += landed
            self._attributed += attributed
            self._overhead_s += time.perf_counter() - started
        return landed

    # ------------------------------------------------------------------
    def attribution_coverage(self) -> float:
        """Fraction of in-stage samples carrying a stage finer than the
        bare ``engine`` window (1.0 before any sample landed)."""
        with self._lock:
            if self._stage_samples == 0:
                return 1.0
            return self._attributed / self._stage_samples

    def stage_self_seconds(self) -> dict[str, float]:
        """Per-stage self time, samples × sampling period."""
        period = 1.0 / self.hz
        return {
            stage: count * period
            for stage, count in self.profile.stage_samples().items()
        }

    def collapsed(self) -> str:
        return self.profile.collapsed()

    def stats(self) -> dict:
        with self._lock:
            ticks = self._ticks
            stage_samples = self._stage_samples
            attributed = self._attributed
            overhead = self._overhead_s
        return {
            "hz": self.hz,
            "ticks": ticks,
            "stage_samples": stage_samples,
            "attributed_samples": attributed,
            "attribution_coverage": (
                attributed / stage_samples if stage_samples else 1.0
            ),
            "stage_self_seconds": self.stage_self_seconds(),
            "sampler_overhead_s": overhead,
            "profile": self.profile.stats(),
        }

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# RSS sampling (stdlib only — no psutil)
# ----------------------------------------------------------------------
def current_rss_bytes() -> int | None:
    """Resident set size right now, via ``/proc/self/statm`` (None on
    platforms without procfs)."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_bytes() -> int | None:
    """Lifetime peak RSS via ``resource.getrusage`` (``ru_maxrss`` is
    kilobytes on Linux, bytes on macOS; None where unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024
