"""Deterministic random-number management.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator`.  These helpers spawn independent,
reproducible child generators for the different subsystems of an
experiment (data generation, sampling, model init, training shuffles) so
that changing one subsystem's consumption pattern does not perturb the
others.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn", "seeded_children"]


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce None / seed / Generator into a Generator."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators."""
    return [np.random.default_rng(seed) for seed in rng.integers(0, 2**63 - 1, size=count)]


def seeded_children(seed: int, names: list[str]) -> dict[str, np.random.Generator]:
    """Named child generators from a single experiment seed."""
    root = np.random.default_rng(seed)
    return dict(zip(names, spawn(root, len(names))))
