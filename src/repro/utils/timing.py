"""Tiny wall-clock timing utilities for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Sequence

__all__ = ["ManualClock", "Stopwatch", "timed", "latency_percentiles"]


class ManualClock:
    """A callable monotonic clock advanced by hand.

    Drop-in for ``time.monotonic`` wherever a component takes an
    injectable ``clock`` (the micro-batch scheduler does), so tests and
    deterministic replays control time explicitly instead of sleeping.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time, got {seconds}")
        self._now += seconds
        return self._now


class Stopwatch:
    """Accumulates elapsed time across start/stop cycles."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed


@contextmanager
def timed():
    """``with timed() as t: ...`` — ``t.elapsed`` holds the duration after."""
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        if watch._started is not None:
            watch.stop()


def latency_percentiles(
    samples: Iterable[float], percentiles: Sequence[float] = (50.0, 99.0)
) -> dict[str, float]:
    """Latency percentiles of a sample list, keyed like ``"p50"``.

    Linear interpolation between order statistics (the common
    load-testing convention), without a numpy dependency so the helper
    stays usable from any harness script.  Fractional percentile labels
    keep their digits (``p99.9``).
    """
    values = sorted(float(s) for s in samples)
    if not values:
        raise ValueError("need at least one latency sample")
    out: dict[str, float] = {}
    for percentile in percentiles:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        position = (len(values) - 1) * percentile / 100.0
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        value = values[low] * (1.0 - fraction) + values[high] * fraction
        label = f"{percentile:g}"
        out[f"p{label}"] = value
    return out
