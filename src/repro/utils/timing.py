"""Tiny wall-clock timing utilities for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Stopwatch", "timed"]


class Stopwatch:
    """Accumulates elapsed time across start/stop cycles."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed


@contextmanager
def timed():
    """``with timed() as t: ...`` — ``t.elapsed`` holds the duration after."""
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        if watch._started is not None:
            watch.stop()
