"""Tiny wall-clock timing utilities for the experiment harness.

Besides the clocks and stopwatches, this module owns the *shared* bucket
math behind latency reporting: :func:`latency_percentiles` (exact, from
raw samples — the benchmarks' convention) and the
:func:`log_buckets` / :func:`histogram_percentile` pair that
:class:`repro.utils.metrics.Histogram` aggregates live traffic with —
one interpolation convention, derived in one place.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

__all__ = [
    "ManualClock",
    "Stopwatch",
    "timed",
    "latency_percentiles",
    "log_buckets",
    "histogram_percentile",
]


class ManualClock:
    """A callable monotonic clock advanced by hand.

    Drop-in for ``time.monotonic`` wherever a component takes an
    injectable ``clock`` (the micro-batch scheduler does), so tests and
    deterministic replays control time explicitly instead of sleeping.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time, got {seconds}")
        self._now += seconds
        return self._now


class Stopwatch:
    """Accumulates elapsed time across start/stop cycles.

    The clock is injectable (default ``time.perf_counter``) so span
    timing in deterministic tests runs off a :class:`ManualClock`.
    Besides explicit ``start()``/``stop()``, a stopwatch is a context
    manager — ``with Stopwatch() as watch: ...`` — and :meth:`span`
    times one labelled block and returns ``(label, start, end)``
    afterwards, the tuple shape stage recorders collect.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = self._clock()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += self._clock() - self._started
        self._started = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self._started is not None:
            self.stop()

    @contextmanager
    def span(self, label: str):
        """Time one labelled block: ``with watch.span("eigh"): ...``.

        Yields the stopwatch; the completed ``(label, start, end)``
        tuple is appended to ``watch.spans`` (created on first use) and
        the duration accumulates into ``elapsed`` as usual.
        """
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        if not hasattr(self, "spans"):
            self.spans: list[tuple[str, float, float]] = []
        start = self._clock()
        try:
            yield self
        finally:
            end = self._clock()
            self.elapsed += end - start
            self.spans.append((label, start, end))


@contextmanager
def timed():
    """``with timed() as t: ...`` — ``t.elapsed`` holds the duration after."""
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        if watch._started is not None:
            watch.stop()


def latency_percentiles(
    samples: Iterable[float], percentiles: Sequence[float] = (50.0, 99.0)
) -> dict[str, float]:
    """Latency percentiles of a sample list, keyed like ``"p50"``.

    Linear interpolation between order statistics (the common
    load-testing convention), without a numpy dependency so the helper
    stays usable from any harness script.  Fractional percentile labels
    keep their digits (``p99.9``).
    """
    values = sorted(float(s) for s in samples)
    if not values:
        raise ValueError("need at least one latency sample")
    out: dict[str, float] = {}
    for percentile in percentiles:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        position = (len(values) - 1) * percentile / 100.0
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        value = values[low] * (1.0 - fraction) + values[high] * fraction
        label = f"{percentile:g}"
        out[f"p{label}"] = value
    return out


def log_buckets(
    low: float = 1e-5, high: float = 10.0, per_decade: int = 4
) -> list[float]:
    """Geometric histogram bucket bounds from ``low`` to ``high``.

    The default ladder — 10µs to 10s at 4 buckets per decade — is the
    one :class:`repro.utils.metrics.Histogram` aggregates serving
    latencies with: fine enough that a p99 read off the buckets stays
    within one geometric step (~78%) of the exact sample percentile,
    coarse enough that a histogram is 25 integers.
    """
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be positive, got {per_decade}")
    decades = math.log10(high / low)
    steps = math.ceil(decades * per_decade)
    bounds = [low * 10 ** (i / per_decade) for i in range(steps + 1)]
    if bounds[-1] > high:
        bounds[-1] = float(high)
    return bounds


def histogram_percentile(
    bounds: Sequence[float], counts: Sequence[int], percentile: float
) -> float:
    """Estimated percentile from cumulative-free bucket counts.

    ``bounds`` are the finite upper bucket bounds; ``counts`` has one
    extra trailing entry for the implicit +Inf overflow bucket.  Linear
    interpolation inside the winning bucket (its lower bound is the
    previous bound, 0.0 for the first) mirrors
    :func:`latency_percentiles`'s convention on raw samples; the
    overflow bucket reports its lower bound (the largest finite bound —
    there is no upper edge to interpolate toward).  Empty histograms
    report 0.0.
    """
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"counts must have {len(bounds) + 1} entries "
            f"(finite buckets + overflow), got {len(counts)}"
        )
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = percentile / 100.0 * total
    running = 0.0
    for position, count in enumerate(counts):
        if count == 0:
            continue
        if running + count >= rank:
            if position == len(bounds):
                return float(bounds[-1])
            lower = 0.0 if position == 0 else float(bounds[position - 1])
            upper = float(bounds[position])
            fraction = (rank - running) / count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        running += count
    return float(bounds[-1]) if bounds else 0.0
