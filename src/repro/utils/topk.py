"""Top-k selection helpers for ranking evaluation."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "rank_of_items"]


def top_k_indices(scores: np.ndarray, k: int, exclude: np.ndarray | None = None) -> np.ndarray:
    """Indices of the k highest scores, in descending score order.

    Parameters
    ----------
    scores:
        1-D score vector over the catalog.
    k:
        List length; truncated to the number of rankable items.
    exclude:
        Item ids never to recommend (the user's training/validation
        interactions, per standard leave-out evaluation).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if exclude is not None and len(exclude) > 0:
        scores = scores.copy()
        scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
    k = min(k, int(np.isfinite(scores).sum()))
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    candidates = np.argpartition(-scores, k - 1)[:k]
    return candidates[np.argsort(-scores[candidates], kind="stable")]


def rank_of_items(scores: np.ndarray, items: np.ndarray) -> np.ndarray:
    """0-based rank of each item under descending ``scores``."""
    order = np.argsort(-scores, kind="stable")
    positions = np.empty_like(order)
    positions[order] = np.arange(order.shape[0])
    return positions[np.asarray(items, dtype=np.int64)]
