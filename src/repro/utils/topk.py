"""Top-k selection helpers for ranking evaluation."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "top_k_indices_rows", "rank_of_items"]


def top_k_indices(scores: np.ndarray, k: int, exclude: np.ndarray | None = None) -> np.ndarray:
    """Indices of the k highest scores, in descending score order.

    Parameters
    ----------
    scores:
        1-D score vector over the catalog.
    k:
        List length; truncated to the number of rankable items.
    exclude:
        Item ids never to recommend (the user's training/validation
        interactions, per standard leave-out evaluation).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if exclude is not None and len(exclude) > 0:
        scores = scores.copy()
        scores[np.asarray(exclude, dtype=np.int64)] = -np.inf
    k = min(k, int(np.isfinite(scores).sum()))
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    candidates = np.argpartition(-scores, k - 1)[:k]
    return candidates[np.argsort(-scores[candidates], kind="stable")]


def top_k_indices_rows(scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`top_k_indices` for a ``(B, M)`` score stack.

    One ``argpartition`` + one ``argsort`` over the whole stack instead
    of B python-level calls — :class:`~repro.retrieval.exact.ExactTopK`
    runs this per shard to build every request's candidate pool in two
    vectorized passes (and the approximate sources fall back to it row
    by row).  Rows are assumed finite (serving quality vectors are);
    ``k`` must not exceed the row length.  Returns ``(B, k)`` indices in
    descending score order per row.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected a (B, M) score stack, got {scores.shape}")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}], got {k}")
    if k == scores.shape[1]:
        candidates = np.broadcast_to(
            np.arange(k), (scores.shape[0], k)
        )
    else:
        candidates = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    picked = np.take_along_axis(-scores, candidates, axis=1)
    order = np.argsort(picked, axis=1, kind="stable")
    return np.take_along_axis(candidates, order, axis=1)


def rank_of_items(scores: np.ndarray, items: np.ndarray) -> np.ndarray:
    """0-based rank of each item under descending ``scores``."""
    order = np.argsort(-scores, kind="stable")
    positions = np.empty_like(order)
    positions[order] = np.arange(order.shape[0])
    return positions[np.asarray(items, dtype=np.int64)]
