"""Unit tests for the composite / linear-algebra autodiff ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, check_gradient, functional as F


def _psd(rng, n, ridge=0.3):
    x = rng.normal(size=(n, n))
    return x @ x.T + ridge * np.eye(n)


def test_concat_forward_and_backward():
    a = Tensor(np.ones((2, 3)), requires_grad=True)
    b = Tensor(2 * np.ones((4, 3)), requires_grad=True)
    out = F.concat([a, b], axis=0)
    assert out.shape == (6, 3)
    (out * Tensor(np.arange(18.0).reshape(6, 3))).sum().backward()
    assert a.grad.shape == (2, 3)
    assert b.grad.shape == (4, 3)
    assert np.allclose(a.grad, np.arange(6.0).reshape(2, 3))


def test_concat_axis1():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    b = Tensor(np.ones((2, 5)), requires_grad=True)
    out = F.concat([a, b], axis=1)
    assert out.shape == (2, 7)
    out.sum().backward()
    assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)


def test_stack_forward_backward():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(2 * np.ones(3), requires_grad=True)
    out = F.stack([a, b], axis=0)
    assert out.shape == (2, 3)
    (out[1] * 5.0).sum().backward()
    assert np.allclose(a.grad, 0.0)
    assert np.allclose(b.grad, 5.0)


def test_gather_rows_repeated_indices_accumulate():
    table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
    rows = F.gather_rows(table, np.array([1, 1, 2]))
    assert rows.shape == (3, 3)
    rows.sum().backward()
    assert np.allclose(table.grad[1], 2.0)
    assert np.allclose(table.grad[2], 1.0)
    assert np.allclose(table.grad[0], 0.0)


def test_diag_embed():
    v = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    m = F.diag_embed(v)
    assert np.allclose(m.data, np.diag([1.0, 2.0, 3.0]))
    (m * Tensor(np.ones((3, 3)) * 2)).sum().backward()
    assert np.allclose(v.grad, 2.0)


def test_diag_embed_stacks_leading_axes():
    v = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
    m = F.diag_embed(v)
    assert m.shape == (2, 3, 3)
    for b in range(2):
        assert np.allclose(m.data[b], np.diag(v.data[b]))
    m.sum().backward()
    assert np.allclose(v.grad, 1.0)


def test_diag_embed_rejects_scalar():
    with pytest.raises(ValueError):
        F.diag_embed(Tensor(np.float64(3.0)))


def test_trace_value_and_gradient():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(4, 4))
    assert np.isclose(F.trace(Tensor(a)).item(), np.trace(a))
    check_gradient(lambda x: F.trace(x @ x), a)


def test_matrix_inverse_gradient():
    rng = np.random.default_rng(1)
    a = _psd(rng, 3)
    assert np.allclose(F.matrix_inverse(Tensor(a)).data, np.linalg.inv(a))
    check_gradient(
        lambda x: F.matrix_inverse(x @ x.transpose() + Tensor(0.5 * np.eye(3))).sum(),
        rng.normal(size=(3, 3)),
        rtol=1e-3,
    )


def test_slogdet_matches_numpy():
    rng = np.random.default_rng(2)
    a = _psd(rng, 4)
    sign, logdet = F.slogdet(Tensor(a))
    ref_sign, ref_logdet = np.linalg.slogdet(a)
    assert sign == ref_sign
    assert np.isclose(logdet.item(), ref_logdet)


def test_logdet_psd_value_and_gradient():
    rng = np.random.default_rng(3)
    a = _psd(rng, 5)
    assert np.isclose(F.logdet_psd(Tensor(a)).item(), np.linalg.slogdet(a)[1], rtol=1e-8)
    check_gradient(
        lambda x: F.logdet_psd(x @ x.transpose() + Tensor(0.5 * np.eye(4))),
        rng.normal(size=(4, 4)),
        rtol=1e-3,
    )


def test_logdet_psd_rejects_indefinite():
    bad = np.diag([1.0, -1.0])
    with pytest.raises(np.linalg.LinAlgError):
        F.logdet_psd(Tensor(bad))


def test_power_sum_traces():
    rng = np.random.default_rng(4)
    a = _psd(rng, 4)
    traces = F.power_sum_traces(Tensor(a), 3)
    eig = np.linalg.eigvalsh(a)
    for i, t in enumerate(traces, start=1):
        assert np.isclose(t.item(), (eig**i).sum(), rtol=1e-9)


def test_logsumexp_matches_scipy_convention():
    x = np.array([[1.0, 2.0, 3.0], [-1.0, 0.0, 1.0]])
    out = F.logsumexp(Tensor(x), axis=1)
    ref = np.log(np.exp(x).sum(axis=1))
    assert np.allclose(out.data, ref)


def test_logsumexp_extreme_values_stable():
    x = np.array([1000.0, 1000.0])
    out = F.logsumexp(Tensor(x), axis=0)
    assert np.isclose(out.item(), 1000.0 + np.log(2.0))


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(5)
    x = rng.normal(size=(4, 7)) * 5
    probs = F.softmax(Tensor(x), axis=1)
    assert np.allclose(probs.data.sum(axis=1), 1.0)
    assert (probs.data >= 0).all()


def test_log_softmax_gradient():
    rng = np.random.default_rng(6)
    check_gradient(
        lambda x: F.log_softmax(x, axis=1)[np.arange(3), np.zeros(3, dtype=np.int64)].sum(),
        rng.normal(size=(3, 5)),
    )


def test_softplus_and_log_sigmoid():
    x = np.array([-30.0, -1.0, 0.0, 1.0, 30.0])
    sp = F.softplus(Tensor(x)).data
    assert np.allclose(sp, np.logaddexp(0, x), atol=1e-9)
    ls = F.log_sigmoid(Tensor(x)).data
    assert np.allclose(ls, -np.logaddexp(0, -x), atol=1e-9)
    check_gradient(lambda t: F.log_sigmoid(t).sum(), np.array([-2.0, 0.3, 4.0]))


def test_bce_with_logits_matches_manual():
    logits = np.array([0.5, -1.0, 2.0])
    targets = np.array([1.0, 0.0, 1.0])
    loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
    p = 1 / (1 + np.exp(-logits))
    manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
    assert np.isclose(loss.item(), manual)
    check_gradient(
        lambda t: F.binary_cross_entropy_with_logits(t, targets), logits
    )


def test_dropout_train_and_eval():
    rng = np.random.default_rng(7)
    x = Tensor(np.ones(1000))
    dropped = F.dropout(x, 0.5, rng, training=True)
    # Inverted dropout preserves the mean.
    assert abs(dropped.data.mean() - 1.0) < 0.15
    assert set(np.unique(dropped.data)) <= {0.0, 2.0}
    same = F.dropout(x, 0.5, rng, training=False)
    assert np.allclose(same.data, 1.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2**32 - 1))
def test_logdet_gradient_is_inverse(n, seed):
    rng = np.random.default_rng(seed)
    a = _psd(rng, n)
    t = Tensor(a, requires_grad=True)
    F.logdet_psd(t).backward()
    assert np.allclose(t.grad, np.linalg.inv(a + 1e-10 * np.eye(n)), rtol=1e-6, atol=1e-8)
