"""Unit tests for the layer library and optimizers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, functional as F, nn, optim


def test_module_discovers_parameters_recursively():
    rng = np.random.default_rng(0)

    class Net(nn.Module):
        def __init__(self):
            super().__init__()
            self.linear = nn.Linear(3, 4, rng)
            self.towers = [nn.Linear(4, 2, rng), nn.Linear(2, 1, rng)]
            self.free = nn.Parameter(np.zeros(5))

    net = Net()
    params = list(net.parameters())
    # linear(W+b) + 2 towers (W+b each) + free = 7
    assert len(params) == 7
    names = dict(net.named_parameters())
    assert "linear.weight" in names
    assert "towers.0.bias" in names
    assert "free" in names


def test_parameters_deduplicated_when_shared():
    rng = np.random.default_rng(0)

    class Tied(nn.Module):
        def __init__(self):
            super().__init__()
            self.a = nn.Linear(2, 2, rng)
            self.b = self.a  # shared module

    assert len(list(Tied().parameters())) == 2


def test_linear_forward_shape_and_bias():
    rng = np.random.default_rng(1)
    layer = nn.Linear(4, 3, rng)
    out = layer(Tensor(np.ones((5, 4))))
    assert out.shape == (5, 3)
    no_bias = nn.Linear(4, 3, rng, bias=False)
    assert no_bias.bias is None


def test_embedding_lookup_and_bounds():
    rng = np.random.default_rng(2)
    emb = nn.Embedding(10, 4, rng)
    rows = emb(np.array([0, 3, 3]))
    assert rows.shape == (3, 4)
    assert np.allclose(rows.data[1], rows.data[2])
    with pytest.raises(IndexError):
        emb(np.array([10]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_embedding_gradient_flows_to_rows():
    rng = np.random.default_rng(3)
    emb = nn.Embedding(6, 3, rng)
    out = emb(np.array([2, 2, 4])).sum()
    out.backward()
    grad = emb.weight.grad
    assert np.allclose(grad[2], 2.0)
    assert np.allclose(grad[4], 1.0)
    assert np.allclose(grad[0], 0.0)


def test_mlp_shapes_and_depth():
    rng = np.random.default_rng(4)
    mlp = nn.MLP([8, 4, 2], rng)
    out = mlp(Tensor(np.ones((3, 8))))
    assert out.shape == (3, 2)
    with pytest.raises(ValueError):
        nn.MLP([8], rng)


def test_dropout_mode_switch():
    rng = np.random.default_rng(5)
    layer = nn.Dropout(0.5, rng)
    x = Tensor(np.ones(200))
    layer.train()
    assert (layer(x).data == 0).any()
    layer.eval()
    assert np.allclose(layer(x).data, 1.0)
    with pytest.raises(ValueError):
        nn.Dropout(1.0, rng)


def test_sequential_composition():
    rng = np.random.default_rng(6)
    seq = nn.Sequential(nn.Linear(3, 3, rng), F.relu, nn.Linear(3, 1, rng))
    out = seq(Tensor(np.ones((2, 3))))
    assert out.shape == (2, 1)


def test_train_eval_propagates_to_children():
    rng = np.random.default_rng(7)

    class Net(nn.Module):
        def __init__(self):
            super().__init__()
            self.drop = nn.Dropout(0.3, rng)
            self.stack = [nn.Dropout(0.3, rng)]

    net = Net()
    net.eval()
    assert not net.drop.training
    assert not net.stack[0].training
    net.train()
    assert net.drop.training


def test_state_dict_roundtrip_and_validation():
    rng = np.random.default_rng(8)
    layer = nn.Linear(3, 2, rng)
    state = layer.state_dict()
    layer.weight.data[:] = 0.0
    layer.load_state_dict(state)
    assert not np.allclose(layer.weight.data, 0.0)
    with pytest.raises(KeyError):
        layer.load_state_dict({"weight": state["weight"]})  # missing bias
    bad = dict(state)
    bad["weight"] = np.zeros((5, 5))
    with pytest.raises(ValueError):
        layer.load_state_dict(bad)


def _quadratic_problem():
    target = np.array([3.0, -2.0])
    p = nn.Parameter(np.zeros(2))

    def loss_fn():
        diff = p - Tensor(target)
        return (diff * diff).sum()

    return p, loss_fn, target


@pytest.mark.parametrize(
    "factory",
    [
        lambda params: optim.SGD(params, lr=0.1),
        lambda params: optim.SGD(params, lr=0.05, momentum=0.9),
        lambda params: optim.Adam(params, lr=0.2),
        lambda params: optim.AdaGrad(params, lr=0.9),
    ],
)
def test_optimizers_minimize_quadratic(factory):
    p, loss_fn, target = _quadratic_problem()
    opt = factory([p])
    for _ in range(200):
        loss = loss_fn()
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert np.allclose(p.data, target, atol=0.05)


def test_weight_decay_shrinks_solution():
    p1, loss1, target = _quadratic_problem()
    p2, loss2, _ = _quadratic_problem()
    for p, loss_fn, wd in ((p1, loss1, 0.0), (p2, loss2, 1.0)):
        opt = optim.Adam([p], lr=0.2, weight_decay=wd)
        for _ in range(300):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
    assert np.linalg.norm(p2.data) < np.linalg.norm(p1.data)


def test_optimizer_validation():
    p = nn.Parameter(np.zeros(2))
    with pytest.raises(ValueError):
        optim.SGD([], lr=0.1)
    with pytest.raises(ValueError):
        optim.SGD([p], lr=-1.0)
    with pytest.raises(ValueError):
        optim.SGD([p], lr=0.1, momentum=1.5)
    with pytest.raises(ValueError):
        optim.Adam([p], lr=0.1, betas=(1.0, 0.9))
    with pytest.raises(ValueError):
        optim.Adam([p], lr=0.1, weight_decay=-0.1)


def test_step_skips_parameters_without_grad():
    p = nn.Parameter(np.ones(2))
    q = nn.Parameter(np.ones(2))
    opt = optim.Adam([p, q], lr=0.5)
    (p.sum() * 2.0).backward()
    opt.step()
    assert not np.allclose(p.data, 1.0)
    assert np.allclose(q.data, 1.0)
