"""Unit tests for sparse graph operations."""

import numpy as np
import scipy.sparse as sp

from repro.autodiff import Tensor
from repro.autodiff.sparse import (
    bipartite_adjacency,
    normalize_adjacency,
    sparse_matmul,
)


def test_sparse_matmul_matches_dense():
    rng = np.random.default_rng(0)
    dense = rng.random((5, 4))
    adjacency = sp.random(6, 5, density=0.4, random_state=0, format="csr")
    out = sparse_matmul(adjacency, Tensor(dense))
    assert np.allclose(out.data, adjacency @ dense)


def test_sparse_matmul_backward_is_transpose():
    rng = np.random.default_rng(1)
    adjacency = sp.random(6, 5, density=0.5, random_state=1, format="csr")
    x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    weights = rng.normal(size=(6, 3))
    (sparse_matmul(adjacency, x) * Tensor(weights)).sum().backward()
    assert np.allclose(x.grad, adjacency.T @ weights)


def test_bipartite_adjacency_structure():
    users = np.array([0, 1, 2])
    items = np.array([0, 0, 1])
    a = bipartite_adjacency(3, 2, users, items).toarray()
    assert a.shape == (5, 5)
    # Symmetric, zero diagonal blocks.
    assert np.allclose(a, a.T)
    assert np.allclose(a[:3, :3], 0)
    assert np.allclose(a[3:, 3:], 0)
    assert a[0, 3] == 1 and a[1, 3] == 1 and a[2, 4] == 1


def test_normalize_adjacency_rows():
    users = np.array([0, 0, 1])
    items = np.array([0, 1, 0])
    a = bipartite_adjacency(2, 2, users, items)
    normalized = normalize_adjacency(a).toarray()
    # D^{-1/2} A D^{-1/2}: entry (u0, i0) = 1/sqrt(deg(u0) * deg(i0)).
    assert np.isclose(normalized[0, 2], 1 / np.sqrt(2 * 2))
    assert np.isclose(normalized[0, 3], 1 / np.sqrt(2 * 1))


def test_normalize_handles_isolated_nodes():
    a = sp.csr_matrix((4, 4))
    normalized = normalize_adjacency(a)
    assert np.allclose(normalized.toarray(), 0.0)


def test_normalize_with_self_loops():
    a = sp.csr_matrix((2, 2))
    normalized = normalize_adjacency(a, add_self_loops=True).toarray()
    assert np.allclose(normalized, np.eye(2))
