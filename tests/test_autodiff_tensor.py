"""Unit tests for the reverse-mode Tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, check_gradient, no_grad
from repro.autodiff.tensor import _unbroadcast


def test_tensor_wraps_data_as_float64():
    t = Tensor([[1, 2], [3, 4]])
    assert t.data.dtype == np.float64
    assert t.shape == (2, 2)
    assert t.ndim == 2
    assert t.size == 4


def test_item_requires_scalar():
    assert Tensor(3.5).item() == 3.5
    assert Tensor([2.5]).item() == 2.5  # size-1 vectors convert too
    with pytest.raises(ValueError):
        Tensor([1.0, 2.0]).item()  # ndarray.item() rejects size > 1


def test_backward_requires_scalar_without_grad():
    t = Tensor([1.0, 2.0], requires_grad=True)
    with pytest.raises(ValueError, match="scalar"):
        (t * 2).backward()


def test_add_backward_accumulates_both_parents():
    a = Tensor(2.0, requires_grad=True)
    b = Tensor(3.0, requires_grad=True)
    (a + b).backward()
    assert a.grad == 1.0 and b.grad == 1.0


def test_fanout_gradients_sum():
    a = Tensor(3.0, requires_grad=True)
    out = a * a + a * 2.0  # d/da = 2a + 2 = 8
    out.backward()
    assert np.isclose(a.grad, 8.0)


def test_mul_gradient():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    (a * b).sum().backward()
    assert np.allclose(a.grad, [3.0, 4.0])
    assert np.allclose(b.grad, [1.0, 2.0])


def test_division_gradients():
    check_gradient(lambda x: (x / 3.0).sum(), np.array([1.0, -2.0, 0.5]))
    check_gradient(lambda x: (6.0 / (x + 5.0)).sum(), np.array([1.0, -2.0, 0.5]))


def test_pow_gradient():
    check_gradient(lambda x: (x**3).sum(), np.array([1.0, 2.0, -1.5]))


def test_pow_rejects_tensor_exponent():
    with pytest.raises(TypeError):
        Tensor(2.0) ** Tensor(3.0)


def test_neg_and_sub():
    a = Tensor(5.0, requires_grad=True)
    b = Tensor(2.0, requires_grad=True)
    (a - b).backward()
    assert a.grad == 1.0 and b.grad == -1.0
    a.zero_grad()
    (-a).backward()
    assert a.grad == -1.0


def test_rsub_and_radd():
    a = Tensor(2.0, requires_grad=True)
    (10.0 - a).backward()
    assert a.grad == -1.0
    a.zero_grad()
    (1.0 + a).backward()
    assert a.grad == 1.0


def test_broadcasting_add_unbroadcasts_gradient():
    a = Tensor(np.ones((3, 4)), requires_grad=True)
    b = Tensor(np.ones(4), requires_grad=True)
    (a + b).sum().backward()
    assert a.grad.shape == (3, 4)
    assert b.grad.shape == (4,)
    assert np.allclose(b.grad, 3.0)


def test_broadcasting_keepdim_axis():
    a = Tensor(np.ones((3, 1)), requires_grad=True)
    b = Tensor(np.ones((3, 5)), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad.shape == (3, 1)
    assert np.allclose(a.grad, 5.0)


def test_unbroadcast_helper():
    grad = np.ones((2, 3, 4))
    assert _unbroadcast(grad, (3, 4)).shape == (3, 4)
    assert _unbroadcast(grad, (1, 4)).shape == (1, 4)
    assert np.allclose(_unbroadcast(grad, (1, 4)), 6.0)


def test_matmul_matrix_matrix_gradient():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))
    check_gradient(lambda x: (x @ Tensor(b)).sum(), a)
    check_gradient(lambda x: (Tensor(a) @ x).sum(), b)


def test_matmul_vector_cases():
    rng = np.random.default_rng(1)
    m = rng.normal(size=(3, 3))
    v = rng.normal(size=3)
    w = rng.normal(size=3)  # independent constant (avoid aliasing with v)
    check_gradient(lambda x: (x @ Tensor(m)).sum(), v)
    check_gradient(lambda x: (Tensor(m) @ x).sum(), v)
    check_gradient(lambda x: x @ Tensor(w.copy()), v)  # inner product


def test_sum_axis_and_keepdims():
    a = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
    out = a.sum(axis=0)
    assert out.shape == (4,)
    out.sum().backward()
    assert np.allclose(a.grad, 1.0)
    b = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
    kept = b.sum(axis=1, keepdims=True)
    assert kept.shape == (3, 1)


def test_mean_gradient_scaling():
    a = Tensor(np.ones((2, 5)), requires_grad=True)
    a.mean().backward()
    assert np.allclose(a.grad, 0.1)


def test_mean_axis():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    m = a.mean(axis=1)
    assert np.allclose(m.data, [1.0, 4.0])
    m.sum().backward()
    assert np.allclose(a.grad, 1.0 / 3.0)


@pytest.mark.parametrize(
    "fn",
    [
        lambda x: x.exp().sum(),
        lambda x: (x + 5.0).log().sum(),
        lambda x: x.sigmoid().sum(),
        lambda x: x.tanh().sum(),
        lambda x: x.sqrt().__add__(0.0).sum() if False else ((x + 5.0).sqrt()).sum(),
    ],
)
def test_elementwise_gradients(fn):
    check_gradient(fn, np.array([0.5, -0.3, 1.2, 2.0]))


def test_relu_and_leaky_relu():
    x = np.array([-2.0, -0.5, 0.5, 2.0])
    t = Tensor(x, requires_grad=True)
    t.relu().sum().backward()
    assert np.allclose(t.grad, [0, 0, 1, 1])
    t2 = Tensor(x, requires_grad=True)
    t2.leaky_relu(0.1).sum().backward()
    assert np.allclose(t2.grad, [0.1, 0.1, 1, 1])


def test_clip_gradient_mask():
    t = Tensor(np.array([-5.0, 0.0, 5.0]), requires_grad=True)
    t.clip(-1.0, 1.0).sum().backward()
    assert np.allclose(t.grad, [0.0, 1.0, 0.0])
    assert np.allclose(t.clip(-1, 1).data, [-1, 0, 1])


def test_abs_gradient():
    t = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
    t.abs().sum().backward()
    assert np.allclose(t.grad, [-1.0, 1.0])


def test_reshape_roundtrip_gradient():
    a = Tensor(np.arange(6.0), requires_grad=True)
    a.reshape(2, 3).sum().backward()
    assert a.grad.shape == (6,)
    assert np.allclose(a.grad, 1.0)


def test_reshape_accepts_tuple():
    a = Tensor(np.arange(6.0))
    assert a.reshape((3, 2)).shape == (3, 2)


def test_transpose_gradient():
    rng = np.random.default_rng(2)
    constant = Tensor(rng.normal(size=(4, 3)))
    check_gradient(lambda x: (x.transpose() * constant).sum(), rng.normal(size=(3, 4)))


def test_transpose_with_axes():
    a = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
    out = a.transpose((2, 0, 1))
    assert out.shape == (4, 2, 3)
    out.sum().backward()
    assert a.grad.shape == (2, 3, 4)


def test_getitem_scatter_add_with_repeats():
    a = Tensor(np.arange(5.0), requires_grad=True)
    idx = np.array([0, 0, 3])
    a[idx].sum().backward()
    assert np.allclose(a.grad, [2, 0, 0, 1, 0])


def test_getitem_slice():
    a = Tensor(np.arange(6.0), requires_grad=True)
    a[2:5].sum().backward()
    assert np.allclose(a.grad, [0, 0, 1, 1, 1, 0])


def test_no_grad_blocks_graph():
    a = Tensor(2.0, requires_grad=True)
    with no_grad():
        out = a * 3.0
    assert not out.requires_grad
    assert out._parents == ()


def test_detach_cuts_graph():
    a = Tensor(2.0, requires_grad=True)
    b = a.detach() * 3.0
    assert not b.requires_grad


def test_deep_graph_no_recursion_error():
    # The iterative topological sort must handle graphs deeper than the
    # Python recursion limit.
    t = Tensor(1.0, requires_grad=True)
    out = t
    for _ in range(3000):
        out = out + 1.0
    out.backward()
    assert t.grad == 1.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(-3, 3), min_size=2, max_size=6),
    st.lists(st.floats(-3, 3), min_size=2, max_size=6),
)
def test_add_mul_match_numpy(xs, ys):
    n = min(len(xs), len(ys))
    a, b = np.array(xs[:n]), np.array(ys[:n])
    assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)
    assert np.allclose((Tensor(a) * Tensor(b)).data, a * b)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(0, 2**32 - 1))
def test_matmul_gradient_property(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, cols))
    w = rng.normal(size=(cols, rows))
    check_gradient(lambda x: ((x @ Tensor(w)) * (x @ Tensor(w))).sum(), a, rtol=1e-3, atol=1e-5)
